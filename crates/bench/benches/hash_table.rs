//! Criterion benchmarks of the shared hash tables: tagged-pointer join
//! table build/probe (with and without the Bloom tag — the §3.2
//! ablation) and the two-phase aggregation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::join_ht::{JoinHt, JoinHtShard};
use dbep_runtime::{murmur2, GroupByShard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_join_build(c: &mut Criterion) {
    let n = 100_000usize;
    let rows: Vec<(u64, (i32, i64))> =
        (0..n as u64).map(|k| (murmur2(k), (k as i32, k as i64))).collect();
    let mut group = c.benchmark_group("join_ht_build_100k");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut shard = JoinHtShard::with_capacity(n);
            for &(h, r) in &rows {
                shard.push(h, r);
            }
            JoinHt::from_shards(vec![shard], 1)
        });
    });
    group.finish();
}

fn bench_join_probe(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let n = 100_000usize;
    let probes: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..n as u64 * 2)).collect();
    for tags in [true, false] {
        let mut shard = JoinHtShard::with_capacity(n);
        for k in 0..n as u64 {
            shard.push(murmur2(k), (k as i32, k as i64));
        }
        let ht = JoinHt::from_shards_cfg(vec![shard], 1, tags);
        let mut group = c.benchmark_group("join_ht_probe_50pct_miss");
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(if tags { "tagged" } else { "untagged" }),
            &ht,
            |b, ht| {
                b.iter(|| {
                    let mut hits = 0u64;
                    for &k in &probes {
                        if ht.probe(murmur2(k)).any(|e| e.row.0 == k as i32) {
                            hits += 1;
                        }
                    }
                    hits
                });
            },
        );
        group.finish();
    }
}

fn bench_aggregation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    for groups in [4u64, 1 << 16] {
        let keys: Vec<u64> = (0..200_000).map(|_| rng.gen_range(0..groups)).collect();
        let mut g = c.benchmark_group(format!("group_by_{groups}_groups"));
        g.throughput(Throughput::Elements(keys.len() as u64));
        g.bench_function("shard_update_merge", |b| {
            b.iter(|| {
                let mut shard: GroupByShard<u64, i64> = GroupByShard::new(1 << 14);
                for &k in &keys {
                    shard.update(murmur2(k), k, || 0, |a| *a += 1);
                }
                merge_partitions(vec![shard.finish()], 1, |a, b| *a += b).len()
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_join_build, bench_join_probe, bench_aggregation);
criterion_main!(benches);
