//! Micro-benchmarks of the shared hash tables: tagged-pointer join
//! table build/probe (with and without the Bloom tag — the §3.2
//! ablation) and the two-phase aggregation table.

use dbep_bench::harness::Bench;
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::join_ht::{JoinHt, JoinHtShard};
use dbep_runtime::rng::SmallRng;
use dbep_runtime::{murmur2, GroupByShard};

fn bench_join_build(b: &Bench) {
    let n = 100_000usize;
    let rows: Vec<(u64, (i32, i64))> = (0..n as u64)
        .map(|k| (murmur2(k), (k as i32, k as i64)))
        .collect();
    b.run("join_ht_build_100k/serial", n as u64, || {
        let mut shard = JoinHtShard::with_capacity(n);
        for &(h, r) in &rows {
            shard.push(h, r);
        }
        JoinHt::from_shards(vec![shard], &dbep_runtime::ExecCtx::inline())
    });
}

fn bench_join_probe(b: &Bench) {
    let mut rng = SmallRng::seed_from_u64(5);
    let n = 100_000usize;
    let probes: Vec<u64> = (0..100_000).map(|_| rng.gen_range(0..n as u64 * 2)).collect();
    for tags in [true, false] {
        let mut shard = JoinHtShard::with_capacity(n);
        for k in 0..n as u64 {
            shard.push(murmur2(k), (k as i32, k as i64));
        }
        let ht = JoinHt::from_shards_cfg(vec![shard], &dbep_runtime::ExecCtx::inline(), tags);
        let label = if tags { "tagged" } else { "untagged" };
        b.run(
            &format!("join_ht_probe_50pct_miss/{label}"),
            probes.len() as u64,
            || {
                let mut hits = 0u64;
                for &k in &probes {
                    if ht.probe(murmur2(k)).any(|e| e.row.0 == k as i32) {
                        hits += 1;
                    }
                }
                hits
            },
        );
    }
}

fn bench_aggregation(b: &Bench) {
    let mut rng = SmallRng::seed_from_u64(6);
    for groups in [4u64, 1 << 16] {
        let keys: Vec<u64> = (0..200_000).map(|_| rng.gen_range(0..groups)).collect();
        b.run(
            &format!("group_by_{groups}_groups/shard_update_merge"),
            keys.len() as u64,
            || {
                let mut shard: GroupByShard<u64, i64> = GroupByShard::new(1 << 14);
                for &k in &keys {
                    shard.update(murmur2(k), k, || 0, |a| *a += 1);
                }
                merge_partitions(vec![shard.finish()], &dbep_runtime::ExecCtx::inline(), |a, b| {
                    *a += b
                })
                .len()
            },
        );
    }
}

fn main() {
    let b = Bench::from_env();
    bench_join_build(&b);
    bench_join_probe(&b);
    bench_aggregation(&b);
}
