//! Criterion micro-benchmarks of the Tectorwise primitives — the §5
//! kernels (selection, hashing, gather) in their scalar, hand-SIMD and
//! auto-vectorized variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbep_runtime::hash::HashFn;
use dbep_vectorized::{gather, hashp, sel, SimdPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 8192;

fn policies() -> [(&'static str, SimdPolicy); 3] {
    [("scalar", SimdPolicy::Scalar), ("simd", SimdPolicy::Simd), ("auto", SimdPolicy::Auto)]
}

fn bench_selection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let col: Vec<i32> = (0..N).map(|_| rng.gen_range(0..100)).collect();
    let mut group = c.benchmark_group("sel_dense_i32_40pct");
    group.throughput(Throughput::Elements(N as u64));
    for (name, policy) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut out = Vec::new();
            b.iter(|| sel::sel_lt_i32_dense(&col, 40, 0, &mut out, p));
        });
    }
    group.finish();

    let in_sel: Vec<u32> = (0..N).step_by(2).map(|i| i as u32).collect();
    let mut group = c.benchmark_group("sel_sparse_i32_40pct");
    group.throughput(Throughput::Elements(in_sel.len() as u64));
    for (name, policy) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut out = Vec::new();
            b.iter(|| sel::sel_lt_i32_sparse(&col, 40, &in_sel, &mut out, p));
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let keys: Vec<u64> = (0..N as u64).map(|_| rng.gen()).collect();
    let mut group = c.benchmark_group("murmur2_dense");
    group.throughput(Throughput::Elements(N as u64));
    for (name, policy) in [("scalar", SimdPolicy::Scalar), ("simd", SimdPolicy::Simd)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut out = Vec::new();
            b.iter(|| hashp::murmur2_u64_vec(&keys, p, &mut out));
        });
    }
    group.finish();

    let col: Vec<i32> = (0..N as i32).collect();
    let sel_v: Vec<u32> = (0..N as u32).collect();
    let mut group = c.benchmark_group("hash_i32_gathered");
    group.throughput(Throughput::Elements(N as u64));
    for (name, hf) in [("murmur2", HashFn::Murmur2), ("crc", HashFn::Crc)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &hf, |b, &hf| {
            let mut out = Vec::new();
            b.iter(|| hashp::hash_i32(&col, &sel_v, hf, &mut out));
        });
    }
    group.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let table: Vec<i64> = (0..1 << 16).map(|i| i as i64).collect();
    let sel_v: Vec<u32> = (0..N).map(|_| rng.gen_range(0..1u32 << 16)).collect();
    let mut group = c.benchmark_group("gather_i64_l2");
    group.throughput(Throughput::Elements(N as u64));
    for (name, policy) in [("scalar", SimdPolicy::Scalar), ("simd", SimdPolicy::Simd)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            let mut out = Vec::new();
            b.iter(|| gather::gather_i64(&table, &sel_v, p, &mut out));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_hashing, bench_gather);
criterion_main!(benches);
