//! Micro-benchmarks of the Tectorwise primitives — the §5 kernels
//! (selection, hashing, gather) in their scalar, hand-SIMD and
//! auto-vectorized variants.

use dbep_bench::harness::Bench;
use dbep_runtime::hash::HashFn;
use dbep_runtime::rng::SmallRng;
use dbep_vectorized::{gather, hashp, sel, SimdPolicy};

const N: usize = 8192;

fn policies() -> [(&'static str, SimdPolicy); 3] {
    [
        ("scalar", SimdPolicy::Scalar),
        ("simd", SimdPolicy::Simd),
        ("auto", SimdPolicy::Auto),
    ]
}

fn bench_selection(b: &Bench) {
    let mut rng = SmallRng::seed_from_u64(1);
    let col: Vec<i32> = (0..N).map(|_| rng.gen_range(0..100)).collect();
    for (name, policy) in policies() {
        let mut out = Vec::new();
        b.run(&format!("sel_dense_i32_40pct/{name}"), N as u64, || {
            sel::sel_lt_i32_dense(&col, 40, 0, &mut out, policy)
        });
    }
    let in_sel: Vec<u32> = (0..N).step_by(2).map(|i| i as u32).collect();
    for (name, policy) in policies() {
        let mut out = Vec::new();
        b.run(
            &format!("sel_sparse_i32_40pct/{name}"),
            in_sel.len() as u64,
            || sel::sel_lt_i32_sparse(&col, 40, &in_sel, &mut out, policy),
        );
    }
}

fn bench_hashing(b: &Bench) {
    let mut rng = SmallRng::seed_from_u64(2);
    let keys: Vec<u64> = (0..N as u64).map(|_| rng.next_u64()).collect();
    for (name, policy) in [("scalar", SimdPolicy::Scalar), ("simd", SimdPolicy::Simd)] {
        let mut out = Vec::new();
        b.run(&format!("murmur2_dense/{name}"), N as u64, || {
            hashp::murmur2_u64_vec(&keys, policy, &mut out)
        });
    }
    let col: Vec<i32> = (0..N as i32).collect();
    let sel_v: Vec<u32> = (0..N as u32).collect();
    for (name, hf) in [("murmur2", HashFn::Murmur2), ("crc", HashFn::Crc)] {
        let mut out = Vec::new();
        b.run(&format!("hash_i32_gathered/{name}"), N as u64, || {
            hashp::hash_i32(&col, &sel_v, hf, &mut out)
        });
    }
}

fn bench_gather(b: &Bench) {
    let mut rng = SmallRng::seed_from_u64(3);
    let table: Vec<i64> = (0..1 << 16).map(|i| i as i64).collect();
    let sel_v: Vec<u32> = (0..N).map(|_| rng.gen_range(0..1u32 << 16)).collect();
    for (name, policy) in [("scalar", SimdPolicy::Scalar), ("simd", SimdPolicy::Simd)] {
        let mut out = Vec::new();
        b.run(&format!("gather_i64_l2/{name}"), N as u64, || {
            gather::gather_i64(&table, &sel_v, policy, &mut out)
        });
    }
}

fn main() {
    let b = Bench::from_env();
    bench_selection(&b);
    bench_hashing(&b);
    bench_gather(&b);
}
