//! Criterion end-to-end benchmarks: every query of the study on Typer
//! and Tectorwise at SF 0.1 (kept small so `cargo bench` finishes
//! quickly; the `experiments` binary runs the paper-scale versions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbep_queries::{run, Engine, ExecCfg, QueryId};

fn bench_queries(c: &mut Criterion) {
    let tpch = dbep_datagen::tpch::generate_par(0.1, 42, 8);
    let ssb = dbep_datagen::ssb::generate_par(0.1, 42, 8);
    let cfg = ExecCfg::default();
    let all = QueryId::TPCH.iter().chain(QueryId::SSB.iter());
    for &q in all {
        let db = if QueryId::TPCH.contains(&q) { &tpch } else { &ssb };
        let mut group = c.benchmark_group(q.name());
        group.sample_size(10);
        for (name, engine) in [("typer", Engine::Typer), ("tectorwise", Engine::Tectorwise)] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &e| {
                b.iter(|| run(e, q, db, &cfg));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
