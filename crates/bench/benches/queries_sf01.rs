//! End-to-end benchmarks: every query of the study on Typer and
//! Tectorwise at SF 0.1 (kept small so `cargo bench` finishes quickly;
//! the `experiments` binary runs the paper-scale versions).

use dbep_bench::harness::Bench;
use dbep_queries::{run, Engine, ExecCfg, QueryId};

fn main() {
    let b = Bench::from_env();
    let tpch = dbep_datagen::tpch::generate_par(0.1, 42, 8);
    let ssb = dbep_datagen::ssb::generate_par(0.1, 42, 8);
    let cfg = ExecCfg::default();
    let all = QueryId::TPCH.iter().chain(QueryId::SSB.iter());
    for &q in all {
        let db = if QueryId::TPCH.contains(&q) { &tpch } else { &ssb };
        let tuples = q.tuples_scanned(db) as u64;
        for (name, engine) in [("typer", Engine::Typer), ("tectorwise", Engine::Tectorwise)] {
            b.run(&format!("{}/{name}", q.name()), tuples, || {
                run(engine, q, db, &cfg)
            });
        }
    }
}
