//! Experiment harness: one subcommand per table/figure of the paper.
//!
//! ```text
//! cargo run --release -p dbep-bench --bin experiments -- <id> [--sf N]
//!     [--threads N] [--reps N] [--no-tag] [--json]
//!     [--query <name>] [--engine <name>]
//! ```
//!
//! Ids: `fig3 table1 fig4 fig5 ssb table2 fig6 fig7 fig8 fig9 fig10
//! table3 table4 table5 fig11 oltp table6 query serve metrics
//! compression all`, plus the standalone network experiments
//! `serve-net` and `load` (excluded from `all`). Each prints the
//! same rows/series the paper reports (EXPERIMENTS.md records paper-
//! versus-measured). Scale-factor defaults are sized for a ~20 GB host;
//! pass `--sf` to reproduce the paper's exact scales on bigger machines.
//!
//! `--query`/`--engine` take the canonical names (`q3`, `ssb-q4.1`,
//! `typer`, …) via the registry's `FromStr` impls and narrow `fig3`,
//! `table1` and the `query` subcommand — `query` runs one prepared
//! query through the `Session` API and prints its result table, e.g.
//! `experiments -- query --query q6 --engine tectorwise --sf 0.1`.
//!
//! `fig3` and `table1` run the full TPC-H workload (the paper's five
//! plus Q4/Q12/Q14); the remaining paper-artifact subcommands stick to
//! the §3.3 subset so their rows line up with the paper's figures.
//!
//! `--json` (supported by `fig3`, `table1` and `serve`) switches stdout
//! to one machine-readable JSON document — per-query runtimes (`fig3`,
//! over **every** registered query, TPC-H and SSB, on all three
//! engines), per-query CPU counters (`table1`), or serving throughput
//! (`serve`) — so perf trajectories can be recorded as `BENCH_*.json`
//! files across PRs.
//!
//! `serve` is the **inter-query** scenario: `--clients N[,N...]`
//! closed-loop clients fire the mixed 12-query workload (TPC-H + SSB,
//! two `Session`s over one shared scheduler in pool mode) with one
//! engine per scenario — `typer`, `tectorwise`, `volcano` or
//! `adaptive` (per-stage engine selection backed by the Session plan
//! cache); the default sweep runs all four. It compares the shared
//! morsel scheduler (worker count fixed at `--threads`) against the
//! old spawn-per-query behavior (`--mode pool|spawn|both`), and
//! reports deadline-clamped QPS (post-deadline drain counted
//! separately), interpolated p50/p95/p99 latency, plan-cache hit
//! rates with a re-prepare sweep, learned adaptive stage assignments,
//! and per-query scheduler stats (admission wait, queue wait,
//! morsels, steals, bytes scanned). Example:
//! `experiments -- serve --sf 0.1 --clients 1,4,16 --duration-ms 2000`.
//!
//! `serve-net` stands the TCP front-end (`dbep-net`) up for external
//! clients: it binds `--addr`/`--port` (default `127.0.0.1:7878`),
//! serves the mixed TPC-H + SSB workload over the length-prefixed wire
//! protocol (pooled unless `--mode spawn`), and drains when a client
//! sends the SHUTDOWN frame. `load` is the **open-loop** companion: it
//! sweeps `--rate R[,R...]` offered rates (requests/second), scheduling
//! arrivals by a seeded Poisson process *decoupled from completions* —
//! latency is measured from the scheduled arrival, so queueing delay
//! under overload is charged to the tail percentiles instead of
//! silently throttling the offered rate the way closed-loop clients
//! do. Each (mode, engine) curve reports goodput vs offered rate,
//! interpolated p50/p95/p99, RETRY counts (admission-gate pushback on
//! the wire), and the **knee** — the last swept rate with goodput ≥
//! 95 % of offered. Without `--port` it self-hosts an in-process server
//! per scenario on an ephemeral loopback port; with `--addr`/`--port`
//! it drives an external `serve-net`. `--conns` sizes the connection
//! pool carrying the schedule; `--duration-ms` is the window per sweep
//! point. Example:
//! `experiments -- load --sf 0.1 --rate 16,64,256 --duration-ms 2000 --json`.
//!
//! Observability surfaces: `query --trace out.json` attaches the span
//! sink and exports the run as Chrome `trace_event` JSON (load in
//! Perfetto / `chrome://tracing`); `metrics` drives the mixed workload
//! through a metrics-attached `Session` and dumps the registry as JSON
//! (default) or Prometheus text (`--prom`); `table1 --per-stage` reads
//! grouped hardware counters around every pipeline stage and prints
//! Table-1-style per-stage rows with a whole-run cross-check;
//! `serve --obs` runs every scenario with the span sink and metrics
//! bundle attached (the tracing-overhead benchmark) and embeds each
//! scenario's metric snapshot in the JSON document.
//!
//! `--encoded` (supported by `fig3`, `query` and `serve`) builds the
//! compressed companion columns after generation, so bandwidth-bound
//! plans run their fused decompress-and-select scans. `compression`
//! compares flat versus encoded directly: runtime and bytes-scanned for
//! Q1/Q6/Q14/SSB Q1.1 on both block-at-a-time engines, recorded as
//! `BENCH_compression.json` with `--json`.

use dbep_bench::{counters_note, fmt_ms, measure_counters, per_tuple_header, per_tuple_row, time_median};
use dbep_core::Session;
use dbep_queries::{run, Engine, ExecCfg, QueryId};
use dbep_runtime::hash::HashFn;
use dbep_runtime::rng::SmallRng;
use dbep_storage::Database;
use dbep_vectorized::SimdPolicy;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    id: String,
    sf: Option<f64>,
    threads: Option<usize>,
    reps: usize,
    no_tag: bool,
    json: bool,
    /// `--query q3` narrows query loops to one registered query.
    query: Option<QueryId>,
    /// `--engine typer` narrows engine loops to one paradigm.
    engine: Option<Engine>,
    /// `serve`: closed-loop client counts (`--clients 1,4,16`).
    clients: Vec<usize>,
    /// `serve`/`load`: measured duration per scenario in milliseconds.
    duration_ms: u64,
    /// `serve`/`load`: `pool`, `spawn`, or `both`; `serve-net`: `spawn`
    /// picks the pool-less baseline, anything else serves pooled.
    mode: String,
    /// `load`: open-loop offered rates in requests/second
    /// (`--rate 16,64,256`).
    rate: Vec<u32>,
    /// `serve-net`: bind address; `load`: server address to drive.
    addr: Option<String>,
    /// `serve-net`: listen port (default 7878); `load`: remote server
    /// port — absent means self-host in-process on an ephemeral port.
    port: Option<u16>,
    /// `load`: connection workers carrying the open-loop schedule.
    conns: usize,
    /// Build compressed companions after generation (`--encoded`).
    encoded: bool,
    /// `query`: export a Chrome `trace_event` JSON file (`--trace out.json`).
    trace: Option<String>,
    /// `table1`: per-stage hardware-counter rows (`--per-stage`).
    per_stage: bool,
    /// `metrics`: Prometheus text exposition instead of JSON (`--prom`).
    prom: bool,
    /// `serve`: attach the observability layer — span sink, metrics
    /// bundle, per-scenario metric snapshots (`--obs`).
    obs: bool,
}

impl Args {
    /// `base` filtered by `--query` (names resolve through
    /// `QueryId::from_str`, never ad-hoc string matching). Exits with
    /// an error when the selected query is not in this experiment's
    /// set — a silently empty report would read as "ran fine".
    fn queries(&self, base: &[QueryId]) -> Vec<QueryId> {
        let selected: Vec<QueryId> = base
            .iter()
            .copied()
            .filter(|q| self.query.is_none_or(|sel| sel == *q))
            .collect();
        if selected.is_empty() {
            if let Some(q) = self.query {
                let known: Vec<&str> = base.iter().map(|b| b.name()).collect();
                eprintln!(
                    "query {} is not part of this experiment's set ({})",
                    q.name(),
                    known.join(" ")
                );
                std::process::exit(2);
            }
        }
        selected
    }

    /// `Engine::ALL` filtered by `--engine`.
    fn engines(&self) -> Vec<Engine> {
        match self.engine {
            Some(e) => vec![e],
            None => Engine::ALL.to_vec(),
        }
    }
}

/// Exit with a usage error (status 2, no panic backtrace). Every
/// malformed flag reports its name and the accepted form.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The value following `flag`, or a usage error naming the flag and
/// its accepted form.
fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str, form: &str) -> String {
    it.next()
        .unwrap_or_else(|| usage_error(&format!("{flag} needs a value (usage: {flag} {form})")))
}

/// Parse a flag's value, or a usage error quoting the offending input
/// and the accepted form.
fn parse_value<T: std::str::FromStr>(value: &str, flag: &str, form: &str) -> T
where
    T::Err: std::fmt::Display,
{
    value
        .parse()
        .unwrap_or_else(|e| usage_error(&format!("{flag} got {value:?}: {e} (usage: {flag} {form})")))
}

/// Parse a comma-separated list of positive integers — the shared
/// shape of `--clients` and `--rate`. Empty lists, zeros and garbage
/// all exit 2 naming the flag and its accepted form.
fn parse_u32_list(value: &str, flag: &str, form: &str) -> Vec<u32> {
    if value.trim().is_empty() {
        usage_error(&format!("{flag} got an empty list (usage: {flag} {form})"));
    }
    value
        .split(',')
        .map(|item| {
            let n: u32 = parse_value(item.trim(), flag, form);
            if n == 0 {
                usage_error(&format!(
                    "{flag} values must be at least 1 (usage: {flag} {form})"
                ));
            }
            n
        })
        .collect()
}

fn parse_args() -> Args {
    let mut args = Args {
        id: String::new(),
        sf: None,
        threads: None,
        reps: 3,
        no_tag: false,
        json: false,
        query: None,
        engine: None,
        clients: vec![4],
        duration_ms: 2000,
        mode: "both".to_string(),
        rate: vec![16, 32, 64, 128, 256],
        addr: None,
        port: None,
        conns: 32,
        encoded: false,
        trace: None,
        per_stage: false,
        prom: false,
        obs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sf" => {
                let v = flag_value(&mut it, "--sf", "<scale-factor>");
                args.sf = Some(parse_value(&v, "--sf", "<scale-factor>, e.g. --sf 0.1"));
            }
            "--threads" => {
                let v = flag_value(&mut it, "--threads", "<count>");
                args.threads = Some(parse_value(&v, "--threads", "<count>, e.g. --threads 4"));
            }
            "--reps" => {
                let v = flag_value(&mut it, "--reps", "<count>");
                args.reps = parse_value(&v, "--reps", "<count>, e.g. --reps 3");
            }
            "--no-tag" => args.no_tag = true,
            "--json" => args.json = true,
            "--encoded" => args.encoded = true,
            "--per-stage" => args.per_stage = true,
            "--prom" => args.prom = true,
            "--obs" => args.obs = true,
            "--trace" => {
                args.trace = Some(flag_value(&mut it, "--trace", "<path>, e.g. --trace trace.json"));
            }
            "--query" => {
                let v = flag_value(&mut it, "--query", "<name>");
                args.query = Some(parse_value(&v, "--query", "<name>, e.g. --query q3"));
            }
            "--engine" => {
                let v = flag_value(&mut it, "--engine", "<name>");
                args.engine = Some(parse_value(&v, "--engine", "typer|tectorwise|volcano|adaptive"));
            }
            "--clients" => {
                let v = flag_value(&mut it, "--clients", "N[,N...]");
                args.clients = parse_u32_list(&v, "--clients", "N[,N...], e.g. --clients 1,4,16")
                    .into_iter()
                    .map(|n| n as usize)
                    .collect();
            }
            "--rate" => {
                let v = flag_value(&mut it, "--rate", "R[,R...]");
                args.rate = parse_u32_list(&v, "--rate", "R[,R...] requests/second, e.g. --rate 16,64,256");
            }
            "--addr" => {
                let v = flag_value(&mut it, "--addr", "<ip>");
                if v.parse::<std::net::IpAddr>().is_err() {
                    usage_error(&format!(
                        "--addr got {v:?}: not an IP address (usage: --addr <ip>, e.g. --addr 127.0.0.1)"
                    ));
                }
                args.addr = Some(v);
            }
            "--port" => {
                let v = flag_value(&mut it, "--port", "<1-65535>");
                let p: u16 = parse_value(&v, "--port", "<1-65535>, e.g. --port 7878");
                if p == 0 {
                    usage_error(
                        "--port 0 would pick an ephemeral port; pass an explicit one (usage: --port <1-65535>)",
                    );
                }
                args.port = Some(p);
            }
            "--conns" => {
                let v = flag_value(&mut it, "--conns", "<count>");
                args.conns = parse_value(&v, "--conns", "<count>, e.g. --conns 32");
                if args.conns == 0 {
                    usage_error("--conns must be at least 1 (usage: --conns <count>)");
                }
            }
            "--duration-ms" => {
                let v = flag_value(&mut it, "--duration-ms", "<milliseconds>");
                args.duration_ms =
                    parse_value(&v, "--duration-ms", "<milliseconds>, e.g. --duration-ms 2000");
                if args.duration_ms == 0 {
                    usage_error(
                        "--duration-ms must be greater than 0 (a zero-length window measures nothing)",
                    );
                }
            }
            "--mode" => {
                let m = flag_value(&mut it, "--mode", "pool|spawn|both");
                if !matches!(m.as_str(), "pool" | "spawn" | "both") {
                    usage_error(&format!("--mode got {m:?} (usage: --mode pool|spawn|both)"));
                }
                args.mode = m;
            }
            other if args.id.is_empty() && !other.starts_with('-') => args.id = other.to_string(),
            other => usage_error(&format!(
                "unknown argument {other:?} (see the module docs for the experiment list and flags)"
            )),
        }
    }
    if args.id.is_empty() {
        args.id = "all".to_string();
    }
    args
}

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn gen_tpch(sf: f64) -> Database {
    let t = Instant::now();
    let db = dbep_datagen::tpch::generate_par(sf, 42, cores());
    eprintln!(
        "[gen] TPC-H SF={sf} in {:.1}s ({} lineitem rows)",
        t.elapsed().as_secs_f64(),
        db.table("lineitem").len()
    );
    db
}

fn gen_ssb(sf: f64) -> Database {
    let t = Instant::now();
    let db = dbep_datagen::ssb::generate_par(sf, 42, cores());
    eprintln!(
        "[gen] SSB SF={sf} in {:.1}s ({} lineorder rows)",
        t.elapsed().as_secs_f64(),
        db.table("lineorder").len()
    );
    db
}

/// Build compressed companions (the `--encoded` switch, and the encoded
/// side of `compression`).
fn encode(mut db: Database) -> Database {
    let t = Instant::now();
    db.encode_all();
    eprintln!(
        "[gen] encoded companions in {:.1}s ({:.1} MB packed payload)",
        t.elapsed().as_secs_f64(),
        db.encoded_byte_size() as f64 / 1e6
    );
    db
}

/// `db`, encoded when `--encoded` was passed.
fn maybe_encode(db: Database, a: &Args) -> Database {
    if a.encoded {
        encode(db)
    } else {
        db
    }
}

// ---------------------------------------------------------------------
// Fig. 3: single-threaded runtimes, Typer vs Tectorwise, TPC-H SF=1.
// With --json: machine-readable runtimes over *every* registered query
// (TPC-H and SSB) on all three engines.
// ---------------------------------------------------------------------
fn fig3(a: &Args) {
    if a.json {
        return fig3_json(a);
    }
    let db = maybe_encode(gen_tpch(a.sf.unwrap_or(1.0)), a);
    let cfg = ExecCfg::default();
    println!(
        "# Fig. 3 — TPC-H SF={}, 1 thread{}, runtime [ms]",
        a.sf.unwrap_or(1.0),
        if a.encoded { ", encoded storage" } else { "" }
    );
    println!("{:<6} {:>10} {:>10} {:>9}", "query", "Typer", "TW", "TW/Typer");
    for q in a.queries(&QueryId::TPCH) {
        let t = time_median(a.reps, || std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
        let w = time_median(a.reps, || std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
        println!(
            "{:<6} {:>10} {:>10} {:>9.2}",
            q.name(),
            fmt_ms(t),
            fmt_ms(w),
            w.as_secs_f64() / t.as_secs_f64()
        );
    }
}

fn fig3_json(a: &Args) {
    use dbep_bench::json;
    let sf = a.sf.unwrap_or(1.0);
    let tpch = maybe_encode(gen_tpch(sf), a);
    let ssb_db = maybe_encode(gen_ssb(sf), a);
    let cfg = ExecCfg::default();
    let queries = a.queries(&QueryId::ALL).into_iter().map(|q| {
        let db = if QueryId::SSB.contains(&q) { &ssb_db } else { &tpch };
        let ms = |engine| {
            let t = time_median(a.reps, || std::mem::drop(run(engine, q, db, &cfg)));
            json::number(t.as_secs_f64() * 1e3)
        };
        json::Object::new()
            .field("query", json::string(q.name()))
            .field(
                "benchmark",
                json::string(if QueryId::SSB.contains(&q) { "ssb" } else { "tpch" }),
            )
            .field("tuples_scanned", format!("{}", q.tuples_scanned(db)))
            .field("typer_ms", ms(Engine::Typer))
            .field("tectorwise_ms", ms(Engine::Tectorwise))
            .field("volcano_ms", ms(Engine::Volcano))
            .build()
    });
    let doc = json::Object::new()
        .field("experiment", json::string("fig3"))
        .field("sf", json::number(sf))
        .field("reps", format!("{}", a.reps))
        .field("threads", "1".to_string())
        .field("encoded", format!("{}", a.encoded))
        .field("queries", json::array(queries))
        .build();
    println!("{doc}");
}

// ---------------------------------------------------------------------
// Table 1: CPU counters per tuple, TPC-H SF=1, 1 thread.
// With --json: machine-readable per-query counters.
// ---------------------------------------------------------------------
fn table1(a: &Args) {
    if a.per_stage {
        return table1_per_stage(a);
    }
    if a.json {
        return table1_json(a);
    }
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    let cfg = ExecCfg::default();
    println!(
        "# Table 1 — TPC-H SF={}, 1 thread, counters normalized per tuple scanned",
        a.sf.unwrap_or(1.0)
    );
    println!("# ({})", counters_note());
    println!("{}", per_tuple_header());
    for q in a.queries(&QueryId::TPCH) {
        let tuples = q.tuples_scanned(&db);
        let v = measure_counters(|| std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
        println!("{}", per_tuple_row(&format!("{} Typer", q.name()), &v, tuples));
        let v = measure_counters(|| std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
        println!("{}", per_tuple_row(&format!("{} TW", q.name()), &v, tuples));
    }
    // §4.1 hash-function ablation on the join-heaviest query.
    println!("\n## hash-function ablation (cycles/tuple, Q9)");
    for (label, hash) in [
        ("default", None),
        ("murmur2", Some(HashFn::Murmur2)),
        ("crc", Some(HashFn::Crc)),
    ] {
        let cfg = ExecCfg {
            hash,
            ..Default::default()
        };
        let tuples = QueryId::Q9.tuples_scanned(&db) as f64;
        let t = measure_counters(|| std::mem::drop(run(Engine::Typer, QueryId::Q9, &db, &cfg)));
        let w = measure_counters(|| std::mem::drop(run(Engine::Tectorwise, QueryId::Q9, &db, &cfg)));
        println!(
            "{label:<8} Typer {:>7.1} c/t   TW {:>7.1} c/t",
            t.cycles_estimate() as f64 / tuples,
            w.cycles_estimate() as f64 / tuples
        );
    }
}

fn table1_json(a: &Args) {
    use dbep_bench::json;
    let sf = a.sf.unwrap_or(1.0);
    let db = gen_tpch(sf);
    let cfg = ExecCfg::default();
    let mut rows = Vec::new();
    for q in QueryId::TPCH {
        let tuples = q.tuples_scanned(&db);
        for (engine, name) in [(Engine::Typer, "typer"), (Engine::Tectorwise, "tectorwise")] {
            let v = measure_counters(|| std::mem::drop(run(engine, q, &db, &cfg)));
            rows.push(
                json::Object::new()
                    .field("query", json::string(q.name()))
                    .field("engine", json::string(name))
                    .field("tuples_scanned", format!("{tuples}"))
                    .field("cycles", format!("{}", v.cycles_estimate()))
                    .field("instructions", json::opt_u64(v.instructions))
                    .field("l1d_miss", json::opt_u64(v.l1d_miss))
                    .field("llc_miss", json::opt_u64(v.llc_miss))
                    .field("branch_miss", json::opt_u64(v.branch_miss))
                    .field("stalled_backend", json::opt_u64(v.stalled_backend))
                    .build(),
            );
        }
    }
    let doc = json::Object::new()
        .field("experiment", json::string("table1"))
        .field("sf", json::number(sf))
        .field(
            "hardware_counters",
            if dbep_runtime::CounterSet::available() {
                "true"
            } else {
                "false"
            }
            .to_string(),
        )
        .field("rows", json::array(rows))
        .build();
    println!("{doc}");
}

/// `table1 --per-stage`: grouped hardware counters (cycles,
/// instructions, LLC misses, branch misses) read around every pipeline
/// stage of every registered query — Table-1 attribution sliced by
/// stage instead of whole query. Single-threaded runs so the whole-run
/// group delta on the calling thread is an independent cross-check of
/// the per-stage sum (the gap is glue outside stage brackets). Falls
/// back to wall-time-only rows when perf is unavailable.
fn table1_per_stage(a: &Args) {
    use dbep_bench::json;
    use dbep_core::scheduler::StageTrace;
    use dbep_runtime::counters::{with_thread_group, GroupReading, StageCounters};
    let sf = a.sf.unwrap_or(1.0);
    let queries = a.queries(&QueryId::ALL);
    let engines = match a.engine {
        Some(e) => vec![e],
        None => vec![Engine::Typer, Engine::Tectorwise],
    };
    let tpch = queries
        .iter()
        .any(|q| !QueryId::SSB.contains(q))
        .then(|| gen_tpch(sf));
    let ssb_db = queries
        .iter()
        .any(|q| QueryId::SSB.contains(q))
        .then(|| gen_ssb(sf));
    let hw = with_thread_group(|g| g.len()).is_some();
    struct StageRow {
        name: &'static str,
        kind: &'static str,
        wall_ns: u64,
        counters: dbep_runtime::counters::StageCounterValues,
    }
    struct QueryRows {
        query: QueryId,
        engine: Engine,
        wall_ns: u64,
        whole: Option<GroupReading>,
        stages: Vec<StageRow>,
    }
    let mut reports = Vec::new();
    for &q in &queries {
        let db = if QueryId::SSB.contains(&q) {
            ssb_db.as_ref().expect("SSB database")
        } else {
            tpch.as_ref().expect("TPC-H database")
        };
        let stages = dbep_queries::plan(q).stages();
        for &engine in &engines {
            let counters = StageCounters::new(stages.len());
            let trace = StageTrace::new(stages.len());
            let cfg = ExecCfg {
                stage_trace: Some(&trace),
                stage_counters: Some(&counters),
                ..ExecCfg::default()
            };
            // Warm once (first-touch effects), then measure one run
            // bracketed by whole-group reads on this thread.
            std::mem::drop(run(engine, q, db, &cfg));
            let counters = StageCounters::new(stages.len());
            let trace = StageTrace::new(stages.len());
            let cfg = ExecCfg {
                stage_trace: Some(&trace),
                stage_counters: Some(&counters),
                ..ExecCfg::default()
            };
            let before = with_thread_group(|g| g.read()).flatten();
            let t0 = Instant::now();
            std::mem::drop(run(engine, q, db, &cfg));
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let whole = with_thread_group(|g| g.read())
                .flatten()
                .zip(before)
                .map(|(end, start)| end.delta_since(&start));
            let wall = trace.snapshot();
            let per = counters.snapshot();
            reports.push(QueryRows {
                query: q,
                engine,
                wall_ns,
                whole,
                stages: stages
                    .iter()
                    .zip(wall)
                    .zip(per)
                    .map(|((desc, wall_ns), counters)| StageRow {
                        name: desc.name,
                        kind: desc.kind.name(),
                        wall_ns,
                        counters,
                    })
                    .collect(),
            });
        }
    }
    if a.json {
        let rendered = reports.iter().map(|r| {
            let sum = r
                .stages
                .iter()
                .fold(GroupReading::default(), |acc, s| GroupReading {
                    cycles: acc.cycles + s.counters.cycles,
                    instructions: acc.instructions + s.counters.instructions,
                    llc_miss: acc.llc_miss + s.counters.llc_miss,
                    branch_miss: acc.branch_miss + s.counters.branch_miss,
                });
            let group = |g: &GroupReading| {
                json::Object::new()
                    .field("cycles", format!("{}", g.cycles))
                    .field("instructions", format!("{}", g.instructions))
                    .field("llc_miss", format!("{}", g.llc_miss))
                    .field("branch_miss", format!("{}", g.branch_miss))
                    .build()
            };
            let stages = r.stages.iter().map(|s| {
                json::Object::new()
                    .field("stage", json::string(s.name))
                    .field("kind", json::string(s.kind))
                    .field("wall_ns", format!("{}", s.wall_ns))
                    .field("cycles", format!("{}", s.counters.cycles))
                    .field("instructions", format!("{}", s.counters.instructions))
                    .field("llc_miss", format!("{}", s.counters.llc_miss))
                    .field("branch_miss", format!("{}", s.counters.branch_miss))
                    .field("ipc", s.counters.ipc().map_or("null".to_string(), json::number))
                    .field("samples", format!("{}", s.counters.samples))
                    .build()
            });
            json::Object::new()
                .field("query", json::string(r.query.name()))
                .field("engine", json::string(r.engine.name()))
                .field("wall_ms", json::number(r.wall_ns as f64 / 1e6))
                .field("stage_sum", group(&sum))
                .field("whole_run", r.whole.as_ref().map_or("null".to_string(), group))
                .field(
                    "stage_coverage",
                    r.whole.filter(|w| w.cycles > 0).map_or("null".to_string(), |w| {
                        json::number(sum.cycles as f64 / w.cycles as f64)
                    }),
                )
                .field("stages", json::array(stages))
                .build()
        });
        let doc = json::Object::new()
            .field("experiment", json::string("table1-per-stage"))
            .field("sf", json::number(sf))
            .field("hardware_counters", format!("{hw}"))
            .field("queries", json::array(rendered))
            .build();
        println!("{doc}");
        return;
    }
    println!("# Table 1 (per stage) — SF={sf}, 1 thread, grouped counters per pipeline stage");
    if !hw {
        println!("# hardware counters unavailable (perf_event_open failed); wall time only");
    }
    for r in &reports {
        println!(
            "\n## {} {} — {}",
            r.query.name(),
            r.engine.name(),
            fmt_ms(Duration::from_nanos(r.wall_ns))
        );
        println!(
            "{:<22} {:<11} {:>9} {:>10} {:>10} {:>6} {:>9} {:>9}",
            "stage", "kind", "wall", "Mcycles", "Minstr", "IPC", "LLC-miss", "br-miss"
        );
        let fmt_m = |v: u64| {
            if v == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", v as f64 / 1e6)
            }
        };
        let fmt_c = |v: u64| if v == 0 { "-".to_string() } else { format!("{v}") };
        for s in &r.stages {
            println!(
                "{:<22} {:<11} {:>9} {:>10} {:>10} {:>6} {:>9} {:>9}",
                s.name,
                s.kind,
                fmt_ms(Duration::from_nanos(s.wall_ns)),
                fmt_m(s.counters.cycles),
                fmt_m(s.counters.instructions),
                s.counters.ipc().map_or("-".to_string(), |i| format!("{i:.2}")),
                fmt_c(s.counters.llc_miss),
                fmt_c(s.counters.branch_miss),
            );
        }
        // Cross-check: stage sums against the whole-run group delta
        // (hardware) or end-to-end wall time (fallback).
        let sum_wall: u64 = r.stages.iter().map(|s| s.wall_ns).sum();
        match &r.whole {
            Some(w) if w.cycles > 0 => {
                let sum_cycles: u64 = r.stages.iter().map(|s| s.counters.cycles).sum();
                println!(
                    "{:<22} {:<11} {:>9} {:>10}   ({:.1}% of whole-run cycles in stages)",
                    "= stages / whole-run",
                    "",
                    fmt_ms(Duration::from_nanos(sum_wall)),
                    fmt_m(w.cycles),
                    100.0 * sum_cycles as f64 / w.cycles as f64,
                );
            }
            _ => println!(
                "{:<22} {:<11} {:>9}   ({:.1}% of wall time in stages)",
                "= stages / whole-run",
                "",
                fmt_ms(Duration::from_nanos(sum_wall)),
                100.0 * sum_wall as f64 / r.wall_ns.max(1) as f64,
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 4: memory-stall vs other cycles across data sizes.
// ---------------------------------------------------------------------
fn fig4(a: &Args) {
    let max_sf = a.sf.unwrap_or(10.0);
    let sfs: Vec<f64> = [1.0, 3.0, 10.0, 30.0, 100.0]
        .into_iter()
        .filter(|&s| s <= max_sf)
        .collect();
    println!("# Fig. 4 — cycles/tuple vs scale factor (paper sweeps 1..100), 1 thread");
    println!("# ({})", counters_note());
    println!(
        "{:<6} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "query", "SF", "Typer c/t", "TW c/t", "Typer stall", "TW stall"
    );
    for &sf in &sfs {
        let db = gen_tpch(sf);
        let cfg = ExecCfg::default();
        for q in QueryId::TPCH_PAPER {
            let tuples = q.tuples_scanned(&db) as f64;
            let t = measure_counters(|| std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
            let w = measure_counters(|| std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
            let stall = |v: &dbep_runtime::CounterValues| match v.stalled_backend {
                Some(s) => format!("{:.1}", s as f64 / tuples),
                None => "-".to_string(),
            };
            println!(
                "{:<6} {:>5} {:>12.1} {:>12.1} {:>12} {:>12}",
                q.name(),
                sf,
                t.cycles_estimate() as f64 / tuples,
                w.cycles_estimate() as f64 / tuples,
                stall(&t),
                stall(&w)
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 5: Tectorwise vector-size sweep, normalized to 1K.
// ---------------------------------------------------------------------
fn fig5(a: &Args) {
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    let sizes: [(usize, &str); 9] = [
        (1, "1"),
        (16, "16"),
        (256, "256"),
        (1024, "1K"),
        (4096, "4K"),
        (65536, "64K"),
        (1 << 20, "1M"),
        (1 << 24, "16M"),
        (usize::MAX >> 1, "Max"),
    ];
    println!("# Fig. 5 — TW vector-size sweep, time relative to 1K vectors");
    print!("{:<6}", "query");
    for (_, label) in sizes {
        print!(" {label:>7}");
    }
    println!();
    for q in QueryId::TPCH_PAPER {
        let base_cfg = ExecCfg {
            vector_size: 1024,
            ..Default::default()
        };
        let base = time_median(a.reps, || {
            std::mem::drop(run(Engine::Tectorwise, q, &db, &base_cfg))
        });
        print!("{:<6}", q.name());
        for (vs, _) in sizes {
            let cfg = ExecCfg {
                vector_size: vs,
                ..Default::default()
            };
            let t = time_median(a.reps.min(2), || {
                std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg))
            });
            print!(" {:>7.2}", t.as_secs_f64() / base.as_secs_f64());
        }
        println!();
    }
}

// ---------------------------------------------------------------------
// §4.4: SSB counter table (paper: SF=30; default here SF=5).
// ---------------------------------------------------------------------
fn ssb(a: &Args) {
    let sf = a.sf.unwrap_or(5.0);
    let db = gen_ssb(sf);
    let cfg = ExecCfg::default();
    println!("# §4.4 — SSB SF={sf} (paper: 30), 1 thread, counters per tuple scanned");
    println!("# ({})", counters_note());
    println!("{}", per_tuple_header());
    for q in QueryId::SSB {
        let tuples = q.tuples_scanned(&db);
        let v = measure_counters(|| std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
        println!("{}", per_tuple_row(&format!("{} Typer", q.name()), &v, tuples));
        let v = measure_counters(|| std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
        println!("{}", per_tuple_row(&format!("{} TW", q.name()), &v, tuples));
    }
}

// ---------------------------------------------------------------------
// Table 2: prototypes vs the interpretation baseline (substitution 5).
// ---------------------------------------------------------------------
fn table2(a: &Args) {
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    let cfg = ExecCfg::default();
    println!(
        "# Table 2 — TPC-H SF={}, 1 thread, runtime [ms]",
        a.sf.unwrap_or(1.0)
    );
    println!("# (production systems HyPer/VectorWise are quoted in EXPERIMENTS.md; the");
    println!("#  Volcano interpreter stands in for the traditional-engine gap)");
    println!("{:<6} {:>10} {:>10} {:>10}", "query", "Volcano", "Typer", "TW");
    for q in QueryId::TPCH_PAPER {
        let v = time_median(1, || std::mem::drop(run(Engine::Volcano, q, &db, &cfg)));
        let t = time_median(a.reps, || std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
        let w = time_median(a.reps, || std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
        println!(
            "{:<6} {:>10} {:>10} {:>10}",
            q.name(),
            fmt_ms(v),
            fmt_ms(t),
            fmt_ms(w)
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 6: scalar vs SIMD selection (dense, sparse, Q6).
// ---------------------------------------------------------------------
fn fig6(a: &Args) {
    use dbep_vectorized::sel;
    let n = 8192usize;
    let mut rng = SmallRng::seed_from_u64(7);
    let col: Vec<i32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let cutoff = 40; // 40% selectivity
    let reps = 20_000;
    let cycles_per_elem = |policy: SimdPolicy| {
        let mut out = Vec::new();
        let v = measure_counters(|| {
            for _ in 0..reps {
                sel::sel_lt_i32_dense(&col, cutoff, 0, &mut out, policy);
                std::hint::black_box(&out);
            }
        });
        v.cycles_estimate() as f64 / (n * reps) as f64
    };
    println!("# Fig. 6a — dense selection, 8192 ints in L1, 40% selectivity [cycles/elem]");
    let s = cycles_per_elem(SimdPolicy::Scalar);
    let v = cycles_per_elem(SimdPolicy::Simd);
    println!("scalar {s:.3}   simd {v:.3}   speedup {:.1}x", s / v);

    // 6b: sparse input (selection vector selects 40%), selection selects 40%.
    let mut in_sel = Vec::new();
    sel::sel_lt_i32_dense(&col, cutoff, 0, &mut in_sel, SimdPolicy::Scalar);
    let col2: Vec<i32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
    let sparse_cycles = |policy: SimdPolicy| {
        let mut out = Vec::new();
        let v = measure_counters(|| {
            for _ in 0..reps {
                sel::sel_lt_i32_sparse(&col2, cutoff, &in_sel, &mut out, policy);
                std::hint::black_box(&out);
            }
        });
        v.cycles_estimate() as f64 / (in_sel.len() * reps) as f64
    };
    println!("# Fig. 6b — sparse selection (40% input sel., 40% output) [cycles/elem]");
    let s = sparse_cycles(SimdPolicy::Scalar);
    let v = sparse_cycles(SimdPolicy::Simd);
    println!("scalar {s:.3}   simd {v:.3}   speedup {:.1}x", s / v);

    println!("# Fig. 6c — TPC-H Q6 (TW), SF={} [ms]", a.sf.unwrap_or(1.0));
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    let sc = time_median(a.reps, || {
        std::mem::drop(run(Engine::Tectorwise, QueryId::Q6, &db, &ExecCfg::default()))
    });
    let si = time_median(a.reps, || {
        let cfg = ExecCfg {
            policy: SimdPolicy::Simd,
            ..Default::default()
        };
        std::mem::drop(run(Engine::Tectorwise, QueryId::Q6, &db, &cfg))
    });
    println!(
        "scalar {}   simd {}   speedup {:.1}x",
        fmt_ms(sc),
        fmt_ms(si),
        sc.as_secs_f64() / si.as_secs_f64()
    );
}

// ---------------------------------------------------------------------
// Fig. 7: sparse selection vs input selectivity on out-of-cache data.
// ---------------------------------------------------------------------
fn fig7(a: &Args) {
    use dbep_vectorized::sel;
    // Paper: 4 GB. Default 1 GiB so modest hosts can run it; --sf = GiB.
    let gib = a.sf.unwrap_or(1.0);
    let n = (gib * 1024.0 * 1024.0 * 1024.0 / 4.0) as usize;
    let mut rng = SmallRng::seed_from_u64(9);
    eprintln!("[gen] {n} i32s ({gib} GiB)");
    let col: Vec<i32> = (0..n).map(|_| rng.gen_range(0..1000)).collect();
    println!("# Fig. 7 — sparse selection on {gib} GiB of i32, output selectivity 40%");
    println!("# cycles per input-selected element; ({})", counters_note());
    println!("{:<10} {:>10} {:>10}", "input sel", "scalar", "simd");
    for pct in [10usize, 20, 40, 60, 80, 100] {
        let in_sel: Vec<u32> = (0..n).filter(|i| i % 100 < pct).map(|i| i as u32).collect();
        let cutoff = 400; // 40% of values < 400
        let mut out = Vec::new();
        let cycles = |policy: SimdPolicy, out: &mut Vec<u32>| {
            let v = measure_counters(|| {
                sel::sel_lt_i32_sparse(&col, cutoff, &in_sel, out, policy);
                std::hint::black_box(&out);
            });
            v.cycles_estimate() as f64 / in_sel.len().max(1) as f64
        };
        println!(
            "{:<10} {:>10.2} {:>10.2}",
            format!("{pct}%"),
            cycles(SimdPolicy::Scalar, &mut out),
            cycles(SimdPolicy::Simd, &mut out)
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 8: scalar vs SIMD join probing components + full queries.
// ---------------------------------------------------------------------
fn fig8(a: &Args) {
    use dbep_runtime::JoinHt;
    use dbep_vectorized::{gather, hashp, probe};
    let mut rng = SmallRng::seed_from_u64(11);
    let reps = 20_000;
    // (a) hashing.
    let keys: Vec<u64> = (0..8192u64).map(|_| rng.next_u64()).collect();
    let mut out = Vec::new();
    let hash_cycles = |policy: SimdPolicy, out: &mut Vec<u64>| {
        let v = measure_counters(|| {
            for _ in 0..reps {
                hashp::murmur2_u64_vec(&keys, policy, out);
                std::hint::black_box(&out);
            }
        });
        v.cycles_estimate() as f64 / (keys.len() * reps) as f64
    };
    let s = hash_cycles(SimdPolicy::Scalar, &mut out);
    let v = hash_cycles(SimdPolicy::Simd, &mut out);
    println!("# Fig. 8a — Murmur2 hashing, dense, L1-resident [cycles/elem]");
    println!("scalar {s:.3}   simd {v:.3}   speedup {:.1}x", s / v);

    // (b) gather from an L1-resident array.
    let table: Vec<i64> = (0..4096).map(|i| i as i64).collect();
    let sel: Vec<u32> = (0..8192).map(|_| rng.gen_range(0..4096u32)).collect();
    let mut outs = Vec::new();
    let gather_cycles = |policy: SimdPolicy, outs: &mut Vec<i64>| {
        let v = measure_counters(|| {
            for _ in 0..reps {
                gather::gather_i64(&table, &sel, policy, outs);
                std::hint::black_box(&outs);
            }
        });
        v.cycles_estimate() as f64 / (sel.len() * reps) as f64
    };
    let s = gather_cycles(SimdPolicy::Scalar, &mut outs);
    let v = gather_cycles(SimdPolicy::Simd, &mut outs);
    println!("# Fig. 8b — gather, L1-resident [cycles/elem]");
    println!("scalar {s:.3}   simd {v:.3}   speedup {:.1}x", s / v);

    // (c) TW probe primitive on a cache-resident hash table.
    let build_n = 2048usize;
    let ht = JoinHt::build((0..build_n as u64).map(|k| (dbep_runtime::murmur2(k), (k as i32, k as i64))));
    let probe_keys: Vec<i32> = (0..8192).map(|_| rng.gen_range(0..build_n as i32 * 2)).collect();
    let tuples: Vec<u32> = (0..probe_keys.len() as u32).collect();
    let mut hashes = Vec::new();
    hashp::hash_i32(&probe_keys, &tuples, HashFn::Murmur2, &mut hashes);
    let mut bufs = probe::ProbeBuffers::new();
    let probe_reps = reps / 4;
    let mut probe_cycles = |policy: SimdPolicy| {
        let v = measure_counters(|| {
            for _ in 0..probe_reps {
                probe::probe_join(
                    &ht,
                    &hashes,
                    &tuples,
                    |r, t| r.0 == probe_keys[t as usize],
                    policy,
                    &mut bufs,
                );
                std::hint::black_box(&bufs.match_tuple);
            }
        });
        v.cycles_estimate() as f64 / (probe_keys.len() * probe_reps) as f64
    };
    let s = probe_cycles(SimdPolicy::Scalar);
    let v = probe_cycles(SimdPolicy::Simd);
    println!("# Fig. 8c — TW join-probe primitive, cache-resident HT [cycles/lookup]");
    println!("scalar {s:.3}   simd {v:.3}   speedup {:.1}x", s / v);

    // (d) full TPC-H join queries.
    println!("# Fig. 8d — TPC-H Q3/Q9 (TW), SF={} [ms]", a.sf.unwrap_or(1.0));
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    for q in [QueryId::Q3, QueryId::Q9] {
        let sc = time_median(a.reps, || {
            std::mem::drop(run(Engine::Tectorwise, q, &db, &ExecCfg::default()))
        });
        let si = time_median(a.reps, || {
            let cfg = ExecCfg {
                policy: SimdPolicy::Simd,
                ..Default::default()
            };
            std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg))
        });
        println!(
            "{:<4} scalar {}   simd {}   speedup {:.2}x",
            q.name(),
            fmt_ms(sc),
            fmt_ms(si),
            sc.as_secs_f64() / si.as_secs_f64()
        );
    }
}

// ---------------------------------------------------------------------
// Fig. 9: probe cost vs working-set size (+ Bloom-tag ablation).
// ---------------------------------------------------------------------
fn fig9(a: &Args) {
    use dbep_runtime::join_ht::{JoinHt, JoinHtShard};
    use dbep_vectorized::{hashp, probe};
    println!("# Fig. 9 — TW hash-table lookup: cycles/lookup vs working-set size");
    println!(
        "# tag filter {}; 50% probe-miss rate",
        if a.no_tag { "OFF (ablation)" } else { "ON" }
    );
    println!("{:<12} {:>10} {:>10}", "working set", "scalar", "simd");
    let mut rng = SmallRng::seed_from_u64(13);
    let probes = 4_000_000usize;
    for shift in [12usize, 14, 16, 18, 20, 22, 24, 25] {
        let n = 1usize << shift;
        let mut shard = JoinHtShard::with_capacity(n);
        for k in 0..n as u64 {
            shard.push(dbep_runtime::murmur2(k), (k as i32, k as i64));
        }
        let ht = JoinHt::from_shards_cfg(vec![shard], &dbep_runtime::ExecCtx::inline(), !a.no_tag);
        let ws = ht.memory_bytes();
        // 50% hit rate: keys drawn from twice the build domain.
        let keys: Vec<i32> = (0..probes)
            .map(|_| rng.gen_range(0..(n as i32).saturating_mul(2)))
            .collect();
        let tuples: Vec<u32> = (0..keys.len() as u32).collect();
        let mut hashes = Vec::new();
        hashp::hash_i32(&keys, &tuples, HashFn::Murmur2, &mut hashes);
        let mut bufs = probe::ProbeBuffers::new();
        let mut cyc = [0f64; 2];
        for (slot, policy) in [(0usize, SimdPolicy::Scalar), (1, SimdPolicy::Simd)] {
            // Probe in vector-sized batches like the engine does.
            let v = measure_counters(|| {
                for c in hashes.chunks(1024).zip(tuples.chunks(1024)) {
                    probe::probe_join(&ht, c.0, c.1, |r, t| r.0 == keys[t as usize], policy, &mut bufs);
                    std::hint::black_box(&bufs.match_tuple);
                }
            });
            cyc[slot] = v.cycles_estimate() as f64 / probes as f64;
        }
        let label = if ws >= 1 << 20 {
            format!("{:.0} MiB", ws as f64 / (1 << 20) as f64)
        } else {
            format!("{:.0} KiB", ws as f64 / 1024.0)
        };
        println!("{label:<12} {:>10.2} {:>10.2}", cyc[0], cyc[1]);
    }
}

// ---------------------------------------------------------------------
// Fig. 10: auto-vectorization vs scalar vs manual SIMD (substitution 2).
// ---------------------------------------------------------------------
fn fig10(a: &Args) {
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    println!("# Fig. 10 — rustc/LLVM auto-vectorization (paper: ICC 18)");
    println!("# time reduction vs scalar TW, per query [%] (positive = faster)");
    println!("{:<6} {:>8} {:>8}", "query", "auto", "manual");
    for q in QueryId::TPCH_PAPER {
        let base = time_median(a.reps, || {
            std::mem::drop(run(Engine::Tectorwise, q, &db, &ExecCfg::default()))
        });
        let reduction = |policy: SimdPolicy| {
            let cfg = ExecCfg {
                policy,
                ..Default::default()
            };
            let t = time_median(a.reps, || std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
            (1.0 - t.as_secs_f64() / base.as_secs_f64()) * 100.0
        };
        println!(
            "{:<6} {:>8.1} {:>8.1}",
            q.name(),
            reduction(SimdPolicy::Auto),
            reduction(SimdPolicy::Simd)
        );
    }
    if dbep_runtime::CounterSet::available() {
        println!("\n## instruction reduction vs scalar [%] (per tuple)");
        println!("{:<6} {:>8} {:>8}", "query", "auto", "manual");
        for q in QueryId::TPCH_PAPER {
            let instr = |policy: SimdPolicy| {
                let cfg = ExecCfg {
                    policy,
                    ..Default::default()
                };
                let v = measure_counters(|| std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg)));
                v.instructions.unwrap_or(0) as f64
            };
            let base = instr(SimdPolicy::Scalar);
            println!(
                "{:<6} {:>8.1} {:>8.1}",
                q.name(),
                (1.0 - instr(SimdPolicy::Auto) / base) * 100.0,
                (1.0 - instr(SimdPolicy::Simd) / base) * 100.0
            );
        }
    } else {
        println!("# (instruction-count panel skipped: {})", counters_note());
    }
}

// ---------------------------------------------------------------------
// Table 3: multi-threaded execution (paper: SF=100; default SF=10).
// ---------------------------------------------------------------------
fn table3(a: &Args) {
    let sf = a.sf.unwrap_or(10.0);
    let db = gen_tpch(sf);
    let max_t = a.threads.unwrap_or_else(cores);
    let thread_points = [1, (max_t / 2).max(2), max_t];
    println!("# Table 3 — TPC-H SF={sf} (paper: 100), {max_t}-core host, runtime [ms]");
    println!(
        "{:<6} {:>4} {:>10} {:>8} {:>10} {:>8} {:>7}",
        "query", "thr", "Typer", "spdup", "TW", "spdup", "ratio"
    );
    for q in QueryId::TPCH_PAPER {
        let mut base = (0f64, 0f64);
        for &t in &thread_points {
            let cfg = ExecCfg::with_threads(t);
            let ty = time_median(a.reps.min(2), || std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
            let tw = time_median(a.reps.min(2), || {
                std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg))
            });
            if t == 1 {
                base = (ty.as_secs_f64(), tw.as_secs_f64());
            }
            println!(
                "{:<6} {:>4} {:>10} {:>8.1} {:>10} {:>8.1} {:>7.2}",
                q.name(),
                t,
                fmt_ms(ty),
                base.0 / ty.as_secs_f64(),
                fmt_ms(tw),
                base.1 / tw.as_secs_f64(),
                ty.as_secs_f64() / tw.as_secs_f64()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Table 4: hardware inventory.
// ---------------------------------------------------------------------
fn table4(_a: &Args) {
    println!("# Table 4 — host hardware (paper compares Skylake-X / Threadripper / KNL)");
    println!("{}", dbep_bench::hwinfo::report());
}

// ---------------------------------------------------------------------
// Table 5: out-of-memory via bandwidth throttle (substitution 4).
// ---------------------------------------------------------------------
fn table5(a: &Args) {
    let sf = a.sf.unwrap_or(10.0);
    let db = gen_tpch(sf);
    let threads = a.threads.unwrap_or_else(cores);
    println!("# Table 5 — TPC-H SF={sf}, {threads} threads: memory vs emulated 1.4 GB/s SSD [ms]");
    println!(
        "{:<6} {:>10} {:>10} {:>7} {:>12} {:>12} {:>7}",
        "query", "Typer", "TW", "ratio", "Typer(ssd)", "TW(ssd)", "ratio"
    );
    for q in QueryId::TPCH_PAPER {
        let cfg = ExecCfg::with_threads(threads);
        let tm = time_median(a.reps.min(2), || std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
        let wm = time_median(a.reps.min(2), || {
            std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg))
        });
        let ssd_run = |engine| {
            let throttle = dbep_storage::throttle::Throttle::paper_ssd();
            let cfg = ExecCfg {
                threads,
                throttle: Some(&throttle),
                ..Default::default()
            };
            let t = Instant::now();
            std::mem::drop(run(engine, q, &db, &cfg));
            t.elapsed()
        };
        let ts = ssd_run(Engine::Typer);
        let ws = ssd_run(Engine::Tectorwise);
        println!(
            "{:<6} {:>10} {:>10} {:>7.2} {:>12} {:>12} {:>7.2}",
            q.name(),
            fmt_ms(tm),
            fmt_ms(wm),
            tm.as_secs_f64() / wm.as_secs_f64(),
            fmt_ms(ts),
            fmt_ms(ws),
            ts.as_secs_f64() / ws.as_secs_f64()
        );
    }
}

// ---------------------------------------------------------------------
// Figs. 11/12: queries/second vs % cores used.
// ---------------------------------------------------------------------
fn fig11(a: &Args) {
    let sf = a.sf.unwrap_or(10.0);
    let db = gen_tpch(sf);
    let max_t = a.threads.unwrap_or_else(cores);
    let points: Vec<usize> = [1, 2, 4, 8, 12, 16, 24, 32, 48]
        .into_iter()
        .filter(|&t| t <= max_t)
        .collect();
    println!("# Figs. 11/12 — queries/second vs cores used, TPC-H SF={sf}");
    println!("{:<6} {:>5} {:>12} {:>12}", "query", "thr", "Typer q/s", "TW q/s");
    for q in QueryId::TPCH_PAPER {
        for &t in &points {
            let cfg = ExecCfg::with_threads(t);
            let ty = time_median(a.reps.min(2), || std::mem::drop(run(Engine::Typer, q, &db, &cfg)));
            let tw = time_median(a.reps.min(2), || {
                std::mem::drop(run(Engine::Tectorwise, q, &db, &cfg))
            });
            println!(
                "{:<6} {:>5} {:>12.2} {:>12.2}",
                q.name(),
                t,
                1.0 / ty.as_secs_f64(),
                1.0 / tw.as_secs_f64()
            );
        }
    }
}

// ---------------------------------------------------------------------
// §8.1: OLTP point lookups.
// ---------------------------------------------------------------------
fn oltp(a: &Args) {
    use dbep_queries::oltp;
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    let idx = oltp::OltpIndex::build(&db, HashFn::Crc);
    let n_orders = db.table("orders").len() as i32;
    let mut rng = SmallRng::seed_from_u64(17);
    let keys: Vec<i32> = (0..100_000).map(|_| rng.gen_range(1..=n_orders)).collect();
    println!("# §8.1 — OLTP stored-procedure lookups (order + lineitem aggregate)");
    let t = time_median(a.reps, || {
        for &k in &keys {
            std::hint::black_box(oltp::lookup_typer(&db, &idx, k));
        }
    });
    println!(
        "Typer (compiled procedure):       {:>12.0} lookups/s",
        keys.len() as f64 / t.as_secs_f64()
    );
    let mut scratch = oltp::TwLookupScratch::new();
    let t = time_median(a.reps, || {
        for &k in &keys {
            std::hint::black_box(oltp::lookup_tectorwise(&db, &idx, k, &mut scratch));
        }
    });
    println!(
        "Tectorwise (vector-of-one):       {:>12.0} lookups/s",
        keys.len() as f64 / t.as_secs_f64()
    );
    let few = &keys[..8];
    let t = time_median(1, || {
        for &k in few {
            std::hint::black_box(oltp::lookup_volcano(&db, k));
        }
    });
    println!(
        "Volcano (interpreted, no index):  {:>12.0} lookups/s",
        few.len() as f64 / t.as_secs_f64()
    );
}

// ---------------------------------------------------------------------
// Table 6 / Fig. 13: the processing-model taxonomy, demonstrated live.
// ---------------------------------------------------------------------
fn table6(a: &Args) {
    let db = gen_tpch(a.sf.unwrap_or(1.0));
    println!(
        "# Table 6 — processing models on TPC-H Q1/Q6, SF={}, 1 thread [ms]",
        a.sf.unwrap_or(1.0)
    );
    println!("{:<42} {:>9} {:>9}", "model (pipelining + execution)", "q1", "q6");
    let q = |engine, query: QueryId, cfg: &ExecCfg| {
        fmt_ms(time_median(a.reps.min(2), || {
            std::mem::drop(run(engine, query, &db, cfg))
        }))
    };
    let d = ExecCfg::default();
    println!(
        "{:<42} {:>9} {:>9}",
        "pull + interpretation (System R / Volcano)",
        q(Engine::Volcano, QueryId::Q1, &d),
        q(Engine::Volcano, QueryId::Q6, &d)
    );
    let vs1 = ExecCfg {
        vector_size: 1,
        ..Default::default()
    };
    println!(
        "{:<42} {:>9} {:>9}",
        "pull + vectorization, vectors of 1",
        q(Engine::Tectorwise, QueryId::Q1, &vs1),
        q(Engine::Tectorwise, QueryId::Q6, &vs1)
    );
    println!(
        "{:<42} {:>9} {:>9}",
        "pull + vectorization (VectorWise, 1K)",
        q(Engine::Tectorwise, QueryId::Q1, &d),
        q(Engine::Tectorwise, QueryId::Q6, &d)
    );
    let vsmax = ExecCfg {
        vector_size: usize::MAX >> 1,
        ..Default::default()
    };
    println!(
        "{:<42} {:>9} {:>9}",
        "full materialization (MonetDB)",
        q(Engine::Tectorwise, QueryId::Q1, &vsmax),
        q(Engine::Tectorwise, QueryId::Q6, &vsmax)
    );
    println!(
        "{:<42} {:>9} {:>9}",
        "push + compilation (HyPer / Typer)",
        q(Engine::Typer, QueryId::Q1, &d),
        q(Engine::Typer, QueryId::Q6, &d)
    );
}

// ---------------------------------------------------------------------
// `query`: run one prepared query through the Session API and print it.
// ---------------------------------------------------------------------
fn query(a: &Args) {
    let q = a.query.unwrap_or(QueryId::Q6);
    let sf = a.sf.unwrap_or(0.1);
    let threads = a.threads.unwrap_or(1);
    let db = maybe_encode(
        if QueryId::SSB.contains(&q) {
            gen_ssb(sf)
        } else {
            gen_tpch(sf)
        },
        a,
    );
    // `--trace`: attach the span sink so every run below records
    // query → stage → morsel spans; exported as one Chrome
    // `trace_event` document after the engines finish.
    let sink = a
        .trace
        .as_ref()
        .map(|_| Arc::new(dbep_obs::TraceSink::new(1 << 16)));
    let mut session = Session::with_cfg(db, ExecCfg::with_threads(threads));
    if let Some(sink) = &sink {
        session = session.with_trace(Arc::clone(sink));
    }
    let prepared = session.prepare(q);
    println!(
        "# {} — SF={sf}, {threads} thread(s), default (paper) parameters{}",
        q.name(),
        if a.encoded { ", encoded storage" } else { "" }
    );
    let mut reference = None;
    for engine in a.engines() {
        let t = time_median(a.reps, || std::mem::drop(prepared.run(engine)));
        let result = prepared.run(engine);
        println!("{:<10} {:>10}  {} rows", engine.name(), fmt_ms(t), result.len());
        if let Some(r) = &reference {
            assert_eq!(r, &result, "{engine:?} disagrees");
        }
        reference.get_or_insert(result);
    }
    println!("\n{}", reference.expect("at least one engine").to_table());
    if let (Some(path), Some(sink)) = (&a.trace, &sink) {
        let events = sink.snapshot();
        let doc = dbep_obs::chrome_trace(&events, &dbep_queries::trace_names());
        std::fs::write(path, doc).unwrap_or_else(|e| usage_error(&format!("--trace {path}: {e}")));
        eprintln!(
            "[trace] wrote {} span(s) to {path} ({} dropped by the ring); open in Perfetto or chrome://tracing",
            events.len(),
            sink.dropped()
        );
    }
}

// ---------------------------------------------------------------------
// `serve`: the inter-query benchmark — N closed-loop clients fire the
// mixed 12-query workload (TPC-H + SSB, two Sessions over one shared
// morsel scheduler in pool mode) with one engine per scenario:
// typer, tectorwise, volcano, or adaptive (per-stage selection backed
// by the Session plan cache). Reports deadline-clamped QPS,
// interpolated p50/p95/p99 latency, plan-cache hit rates, learned
// adaptive assignments and per-query scheduler stats; one JSON
// document with --json.
// ---------------------------------------------------------------------

/// Completed-request record of one closed-loop client.
struct ServeSample {
    /// Index into the scenario's query list.
    pair: usize,
    latency: Duration,
    /// Completion offset from the scenario start (the deadline clamp
    /// uses this; in-flight requests finishing after the window still
    /// contribute latency samples but not QPS).
    done_at: Duration,
    stats: dbep_core::scheduler::RunStats,
}

struct ServeScenario {
    mode: &'static str,
    engine: Engine,
    clients: usize,
    /// The configured measurement window (QPS denominator).
    window: Duration,
    /// Wall time including the post-deadline drain (reported, never a
    /// QPS denominator).
    elapsed: Duration,
    samples: Vec<ServeSample>,
    /// Combined plan-cache counters of the scenario's sessions, taken
    /// after the run plus one re-prepare sweep of the whole mix.
    plan_cache: dbep_core::PlanCacheStats,
    /// Re-prepare sweep: `(hits, total)` and mean planning time — the
    /// "second prepare skips planning" demonstration.
    reprepare_hits: usize,
    reprepare_total: usize,
    reprepare_avg_ns: f64,
    /// Learned per-stage assignments (`Engine::Adaptive` scenarios
    /// only): `(query index, "stage=engine ..." rendering, pure
    /// fallback)`.
    adaptive: Vec<(usize, String, Engine)>,
    /// `--obs`: the scenario ran with the span sink and metrics bundle
    /// attached; snapshot taken after the drain.
    obs: Option<ObsReport>,
}

/// End-of-scenario observability snapshot (`serve --obs`).
struct ObsReport {
    /// The registry's JSON snapshot, pre-rendered (embedded verbatim
    /// in the serve JSON document).
    metrics_json: String,
    /// Spans still in the ring at the end of the run.
    spans: usize,
    /// Spans overwritten by the ring (recorded minus retained).
    spans_dropped: u64,
}

#[allow(clippy::too_many_arguments)] // one call site; a struct would just rename the labels
fn serve_scenario(
    tpch: Option<&Arc<Database>>,
    ssb: Option<&Arc<Database>>,
    mode: &'static str,
    threads: usize,
    clients: usize,
    engine: Engine,
    window: Duration,
    queries: &[QueryId],
    obs: bool,
) -> ServeScenario {
    let cfg = ExecCfg::with_threads(threads);
    // Pool mode: one fixed worker pool shared by both databases'
    // sessions (the scheduler is per-pool, not per-database). Spawn
    // mode: scoped threads per query, the pre-scheduler baseline.
    let shared = matches!(mode, "pool").then(|| Arc::new(dbep_core::scheduler::Scheduler::new(threads)));
    // `--obs`: one span sink + one metrics bundle shared by both
    // sessions, so the scenario pays the full instrumented cost (the
    // tracing-overhead comparison runs serve with and without this).
    let sink = obs.then(|| Arc::new(dbep_obs::TraceSink::new(1 << 16)));
    let metrics = obs.then(dbep_core::EngineMetrics::new);
    let mk_session = |db: &Arc<Database>| {
        let mut s = match &shared {
            Some(pool) => Session::with_scheduler(Arc::clone(db), cfg, Arc::clone(pool)),
            None => Session::without_pool(Arc::clone(db), cfg),
        };
        if let Some(sink) = &sink {
            s = s.with_trace(Arc::clone(sink));
        }
        if let Some(m) = &metrics {
            s = s.with_metrics(Arc::clone(m));
        }
        s
    };
    let tpch_session = tpch.map(mk_session);
    let ssb_session = ssb.map(mk_session);
    let session_for = |q: &QueryId| -> &Session {
        if QueryId::SSB.contains(q) {
            ssb_session.as_ref().expect("SSB query without SSB database")
        } else {
            tpch_session.as_ref().expect("TPC-H query without TPC-H database")
        }
    };
    let prepared: Vec<_> = queries.iter().map(|q| session_for(q).prepare(*q)).collect();
    // Warm up before the clock: once per query for first-touch
    // effects; twice for Adaptive so both exploration runs (pure Typer
    // and pure Tectorwise under a stage trace) finish and the measured
    // window runs the learned assignment.
    let warmups = if engine == Engine::Adaptive { 2 } else { 1 };
    for p in &prepared {
        for _ in 0..warmups {
            std::mem::drop(p.run(engine));
        }
    }
    let start = Instant::now();
    let deadline = start + window;
    let samples = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in 0..clients {
            let (prepared, samples) = (&prepared, &samples);
            s.spawn(move || {
                let mut local = Vec::new();
                let mut k = client; // stagger each client's walk of the mix
                while Instant::now() < deadline {
                    let pair = k % prepared.len();
                    let t0 = Instant::now();
                    let (result, stats) = prepared[pair].run_with_stats(engine);
                    std::hint::black_box(&result);
                    local.push(ServeSample {
                        pair,
                        latency: t0.elapsed(),
                        done_at: start.elapsed(),
                        stats,
                    });
                    k += 1;
                }
                samples.lock().expect("serve samples").extend(local);
            });
        }
    });
    let elapsed = start.elapsed();
    // Re-prepare the whole mix: every prepare must now hit the plan
    // cache with ~zero planning time (and, for Adaptive, inherit the
    // learned stage assignment instead of re-exploring).
    let reprepared: Vec<_> = queries.iter().map(|q| session_for(q).prepare(*q)).collect();
    let reprepare_hits = reprepared.iter().filter(|p| p.cache_hit()).count();
    let reprepare_avg_ns =
        reprepared.iter().map(|p| p.planning_ns() as f64).sum::<f64>() / reprepared.len().max(1) as f64;
    let adaptive = if engine == Engine::Adaptive {
        prepared
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let (choices, pure) = p.adaptive_choices()?;
                let stages = dbep_queries::plan(queries[i]).stages();
                let rendered = stages
                    .iter()
                    .zip(&choices)
                    .map(|(s, e)| format!("{}={}", s.name, e.name()))
                    .collect::<Vec<_>>()
                    .join(" ");
                Some((i, rendered, pure))
            })
            .collect()
    } else {
        Vec::new()
    };
    let plan_cache = [&tpch_session, &ssb_session]
        .into_iter()
        .flatten()
        .map(Session::plan_cache_stats)
        .fold(dbep_core::PlanCacheStats::default(), |a, b| {
            dbep_core::PlanCacheStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                entries: a.entries + b.entries,
            }
        });
    ServeScenario {
        mode,
        engine,
        clients,
        window,
        elapsed,
        samples: samples.into_inner().expect("serve samples"),
        plan_cache,
        reprepare_hits,
        reprepare_total: reprepared.len(),
        reprepare_avg_ns,
        adaptive,
        obs: metrics.as_ref().map(|m| ObsReport {
            metrics_json: m.registry().snapshot_json(),
            spans: sink.as_ref().map_or(0, |s| s.snapshot().len()),
            spans_dropped: sink.as_ref().map_or(0, |s| s.dropped()),
        }),
    }
}

fn serve(a: &Args) {
    let sf = a.sf.unwrap_or(0.1);
    let threads = a.threads.unwrap_or_else(cores);
    let window = std::time::Duration::from_millis(a.duration_ms);
    // The mixed workload: all 12 queries over both databases, narrowed
    // by --query. Databases are generated only if the mix needs them.
    let queries = a.queries(&QueryId::ALL);
    let tpch = queries
        .iter()
        .any(|q| !QueryId::SSB.contains(q))
        .then(|| Arc::new(maybe_encode(gen_tpch(sf), a)));
    let ssb = queries
        .iter()
        .any(|q| QueryId::SSB.contains(q))
        .then(|| Arc::new(maybe_encode(gen_ssb(sf), a)));
    // One engine per scenario; the default sweep compares Adaptive
    // against every single-engine run of the same mix.
    let engines = match a.engine {
        Some(e) => vec![e],
        None => Engine::SELECTABLE.to_vec(),
    };
    let modes: Vec<&'static str> = match a.mode.as_str() {
        "pool" => vec!["pool"],
        "spawn" => vec!["spawn"],
        _ => vec!["spawn", "pool"],
    };
    let mut scenarios = Vec::new();
    for &clients in &a.clients {
        for mode in &modes {
            for &engine in &engines {
                eprintln!(
                    "[serve] mode={mode} engine={} clients={clients} threads={threads} window={window:?}",
                    engine.name()
                );
                scenarios.push(serve_scenario(
                    tpch.as_ref(),
                    ssb.as_ref(),
                    mode,
                    threads,
                    clients,
                    engine,
                    window,
                    &queries,
                    a.obs,
                ));
            }
        }
    }
    if a.json {
        serve_json(a, sf, threads, &queries, &scenarios);
    } else {
        serve_text(sf, threads, &queries, &scenarios);
    }
}

fn serve_text(sf: f64, threads: usize, queries: &[QueryId], scenarios: &[ServeScenario]) {
    use dbep_bench::serve_stats::{percentile, throughput};
    println!("# serve — closed-loop query serving, SF={sf}, {threads} worker threads");
    println!(
        "# mix: {}",
        queries.iter().map(|q| q.name()).collect::<Vec<_>>().join(" ")
    );
    println!(
        "{:<6} {:<11} {:>8} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "mode", "engine", "clients", "queries", "drained", "QPS", "p50", "p95", "p99"
    );
    for sc in scenarios {
        let mut lat: Vec<Duration> = sc.samples.iter().map(|s| s.latency).collect();
        lat.sort_unstable();
        let done: Vec<Duration> = sc.samples.iter().map(|s| s.done_at).collect();
        let t = throughput(&done, sc.window);
        println!(
            "{:<6} {:<11} {:>8} {:>9} {:>8} {:>10.2} {:>10} {:>10} {:>10}",
            sc.mode,
            sc.engine.name(),
            sc.clients,
            t.completed,
            t.drained,
            t.qps,
            fmt_ms(percentile(&lat, 0.50)),
            fmt_ms(percentile(&lat, 0.95)),
            fmt_ms(percentile(&lat, 0.99)),
        );
    }
    // Plan-cache effectiveness and adaptive assignments, per scenario.
    println!("\n## plan cache");
    for sc in scenarios {
        println!(
            "{:<6} {:<11} {:>3} hits / {:>3} misses / {:>3} entries; re-prepare {}/{} hits, avg {:.1} µs planning",
            sc.mode,
            sc.engine.name(),
            sc.plan_cache.hits,
            sc.plan_cache.misses,
            sc.plan_cache.entries,
            sc.reprepare_hits,
            sc.reprepare_total,
            sc.reprepare_avg_ns / 1e3,
        );
        for (i, rendered, pure) in &sc.adaptive {
            println!(
                "       {}: {} (pure fallback {})",
                queries[*i].name(),
                rendered,
                pure.name()
            );
        }
    }
    if scenarios.iter().any(|s| s.obs.is_some()) {
        println!("\n## observability (--obs: span sink + metrics bundle attached)");
        for sc in scenarios {
            if let Some(o) = &sc.obs {
                println!(
                    "{:<6} {:<11} {:>8} span(s) retained, {:>8} overwritten by the ring (metrics snapshot: --json)",
                    sc.mode,
                    sc.engine.name(),
                    o.spans,
                    o.spans_dropped
                );
            }
        }
    }
    // Per-query scheduler stats of the most concurrent pooled scenario.
    if let Some(sc) = scenarios
        .iter()
        .filter(|s| s.mode == "pool")
        .max_by_key(|s| s.clients)
    {
        println!(
            "\n## per-query scheduler stats (pool, engine {}, {} clients)",
            sc.engine.name(),
            sc.clients
        );
        println!(
            "{:<18} {:>8} {:>12} {:>12} {:>10} {:>8} {:>12}",
            "query", "runs", "avg admit", "avg queue", "morsels", "steals", "MB scanned"
        );
        for (pair, q) in queries.iter().enumerate() {
            let runs: Vec<&ServeSample> = sc.samples.iter().filter(|s| s.pair == pair).collect();
            if runs.is_empty() {
                continue;
            }
            let n = runs.len() as u32;
            let admit: Duration = runs.iter().map(|s| s.stats.admission_wait).sum::<Duration>() / n;
            let queue: Duration = runs.iter().map(|s| s.stats.queue_wait).sum::<Duration>() / n;
            println!(
                "{:<18} {:>8} {:>12} {:>12} {:>10} {:>8} {:>12.1}",
                q.name(),
                n,
                format!("{:.2?}", admit),
                format!("{:.2?}", queue),
                runs.iter().map(|s| s.stats.morsels).sum::<u64>(),
                runs.iter().map(|s| s.stats.steals).sum::<u64>(),
                runs.iter().map(|s| s.stats.bytes_scanned).sum::<u64>() as f64 / 1e6,
            );
        }
    }
}

fn serve_json(a: &Args, sf: f64, threads: usize, queries: &[QueryId], scenarios: &[ServeScenario]) {
    use dbep_bench::json;
    use dbep_bench::serve_stats::{percentile, throughput};
    let rendered = scenarios.iter().map(|sc| {
        let mut lat: Vec<Duration> = sc.samples.iter().map(|s| s.latency).collect();
        lat.sort_unstable();
        let done: Vec<Duration> = sc.samples.iter().map(|s| s.done_at).collect();
        let t = throughput(&done, sc.window);
        let per_query = queries.iter().enumerate().filter_map(|(pair, q)| {
            let runs: Vec<&ServeSample> = sc.samples.iter().filter(|s| s.pair == pair).collect();
            if runs.is_empty() {
                return None;
            }
            let n = runs.len() as f64;
            let sum_ms = runs.iter().map(|s| s.latency.as_secs_f64() * 1e3).sum::<f64>();
            Some(
                json::Object::new()
                    .field("query", json::string(q.name()))
                    .field("runs", format!("{}", runs.len()))
                    .field("avg_ms", json::number(sum_ms / n))
                    .field(
                        "avg_admission_wait_ms",
                        json::number(
                            runs.iter()
                                .map(|s| s.stats.admission_wait.as_secs_f64() * 1e3)
                                .sum::<f64>()
                                / n,
                        ),
                    )
                    .field(
                        "avg_queue_wait_ms",
                        json::number(
                            runs.iter()
                                .map(|s| s.stats.queue_wait.as_secs_f64() * 1e3)
                                .sum::<f64>()
                                / n,
                        ),
                    )
                    .field(
                        "morsels",
                        format!("{}", runs.iter().map(|s| s.stats.morsels).sum::<u64>()),
                    )
                    .field(
                        "steals",
                        format!("{}", runs.iter().map(|s| s.stats.steals).sum::<u64>()),
                    )
                    .field(
                        "bytes_scanned",
                        format!("{}", runs.iter().map(|s| s.stats.bytes_scanned).sum::<u64>()),
                    )
                    .build(),
            )
        });
        let adaptive_choices = sc.adaptive.iter().map(|(i, rendered, pure)| {
            json::Object::new()
                .field("query", json::string(queries[*i].name()))
                .field("stages", json::string(rendered))
                .field("pure_fallback", json::string(pure.name()))
                .build()
        });
        json::Object::new()
            .field("mode", json::string(sc.mode))
            .field("engine", json::string(sc.engine.name()))
            .field("clients", format!("{}", sc.clients))
            .field("queries_completed", format!("{}", t.completed))
            .field("drained_after_deadline", format!("{}", t.drained))
            .field("qps", json::number(t.qps))
            .field("wall_elapsed_ms", json::number(sc.elapsed.as_secs_f64() * 1e3))
            .field("p50_ms", json::number(percentile(&lat, 0.50).as_secs_f64() * 1e3))
            .field("p95_ms", json::number(percentile(&lat, 0.95).as_secs_f64() * 1e3))
            .field("p99_ms", json::number(percentile(&lat, 0.99).as_secs_f64() * 1e3))
            .field("latency_histogram", {
                // Log-linear buckets over the same samples the exact
                // percentiles above summarize (the aggregatable form a
                // scrape endpoint would serve).
                let hist = dbep_obs::Histogram::default();
                for l in &lat {
                    hist.record(l.as_nanos() as u64);
                }
                let buckets = hist.buckets().into_iter().map(|(le, n)| {
                    json::Object::new()
                        .field("le_ns", format!("{le}"))
                        .field("count", format!("{n}"))
                        .build()
                });
                json::Object::new()
                    .field("count", format!("{}", hist.count()))
                    .field("sum_ns", format!("{}", hist.sum()))
                    .field("buckets", json::array(buckets))
                    .build()
            })
            .field(
                "plan_cache",
                json::Object::new()
                    .field("hits", format!("{}", sc.plan_cache.hits))
                    .field("misses", format!("{}", sc.plan_cache.misses))
                    .field("entries", format!("{}", sc.plan_cache.entries))
                    .field("reprepare_hits", format!("{}", sc.reprepare_hits))
                    .field("reprepare_total", format!("{}", sc.reprepare_total))
                    .field("reprepare_avg_planning_ns", json::number(sc.reprepare_avg_ns))
                    .build(),
            )
            .field("adaptive_choices", json::array(adaptive_choices))
            .field("per_query", json::array(per_query))
            .field(
                "observability",
                match &sc.obs {
                    // `metrics_json` is the registry's own rendering,
                    // embedded verbatim as a sub-document.
                    Some(o) => json::Object::new()
                        .field("spans_retained", format!("{}", o.spans))
                        .field("spans_overwritten", format!("{}", o.spans_dropped))
                        .field("metrics", o.metrics_json.clone())
                        .build(),
                    None => "null".to_string(),
                },
            )
            .build()
    });
    let doc = json::Object::new()
        .field("experiment", json::string("serve"))
        .field("sf", json::number(sf))
        .field("threads", format!("{threads}"))
        .field("duration_ms", format!("{}", a.duration_ms))
        .field("encoded", format!("{}", a.encoded))
        .field("obs", format!("{}", a.obs))
        .field("mix", json::array(queries.iter().map(|q| json::string(q.name()))))
        .field(
            "engines",
            json::array(scenarios.iter().map(|s| json::string(s.engine.name()))),
        )
        .field("scenarios", json::array(rendered))
        .build();
    println!("{doc}");
}

// ---------------------------------------------------------------------
// `metrics`: drive the mixed workload through a metrics-attached
// Session, then dump the registry — the JSON snapshot by default, the
// Prometheus text exposition with --prom. This is the exposition
// endpoint a scrape would hit; the CI smoke asserts both forms parse.
// ---------------------------------------------------------------------
fn metrics_cmd(a: &Args) {
    let sf = a.sf.unwrap_or(0.01);
    let threads = a.threads.unwrap_or(1);
    let queries = a.queries(&QueryId::ALL);
    let engines = match a.engine {
        Some(e) => vec![e],
        None => vec![Engine::Adaptive],
    };
    let metrics = dbep_core::EngineMetrics::new();
    let cfg = ExecCfg::with_threads(threads);
    let mk = |db: Database| Session::with_cfg(db, cfg).with_metrics(Arc::clone(&metrics));
    let tpch = queries
        .iter()
        .any(|q| !QueryId::SSB.contains(q))
        .then(|| mk(maybe_encode(gen_tpch(sf), a)));
    let ssb_db = queries
        .iter()
        .any(|q| QueryId::SSB.contains(q))
        .then(|| mk(maybe_encode(gen_ssb(sf), a)));
    for &q in &queries {
        let session = if QueryId::SSB.contains(&q) { &ssb_db } else { &tpch }
            .as_ref()
            .expect("database for query");
        let prepared = session.prepare(q);
        for &engine in &engines {
            for _ in 0..a.reps {
                std::mem::drop(prepared.run(engine));
            }
        }
    }
    if a.prom {
        print!("{}", metrics.registry().prometheus());
    } else {
        println!("{}", metrics.registry().snapshot_json());
    }
}

// ---------------------------------------------------------------------
// `compression`: flat versus encoded storage for the bandwidth-bound
// plans — runtime and scheduler-side bytes_scanned per (query, engine),
// with the reduction ratios. Results are asserted identical. Volcano is
// excluded by default (it always scans flat; pick it via --engine to
// see the unchanged baseline).
// ---------------------------------------------------------------------
fn compression(a: &Args) {
    use dbep_bench::json;
    let sf = a.sf.unwrap_or(0.1);
    let threads = a.threads.unwrap_or(1);
    let queries = a.queries(&[QueryId::Q1, QueryId::Q6, QueryId::Q14, QueryId::Ssb1_1]);
    let engines = match a.engine {
        Some(e) => vec![e],
        None => vec![Engine::Typer, Engine::Tectorwise],
    };
    let cfg = ExecCfg::with_threads(threads);
    let mut sessions: Vec<(bool, Session, Session)> = Vec::new(); // (is_ssb, flat, encoded)
    fn session_pair(
        sessions: &mut Vec<(bool, Session, Session)>,
        ssb: bool,
        sf: f64,
        cfg: ExecCfg<'static>,
    ) -> usize {
        if let Some(i) = sessions.iter().position(|(s, ..)| *s == ssb) {
            return i;
        }
        let flat = if ssb { gen_ssb(sf) } else { gen_tpch(sf) };
        let enc = encode(flat.clone());
        sessions.push((ssb, Session::with_cfg(flat, cfg), Session::with_cfg(enc, cfg)));
        sessions.len() - 1
    }
    struct Row {
        query: QueryId,
        engine: Engine,
        flat_ms: f64,
        enc_ms: f64,
        flat_bytes: u64,
        enc_bytes: u64,
    }
    let mut rows = Vec::new();
    for q in queries {
        let i = session_pair(&mut sessions, QueryId::SSB.contains(&q), sf, cfg);
        let (_, flat, enc) = &sessions[i];
        for &engine in &engines {
            let pf = flat.prepare(q);
            let pe = enc.prepare(q);
            let (r_flat, s_flat) = pf.run_with_stats(engine);
            let (r_enc, s_enc) = pe.run_with_stats(engine);
            assert_eq!(
                r_flat,
                r_enc,
                "{} on {engine:?}: encoded result differs",
                q.name()
            );
            let t_flat = time_median(a.reps, || std::mem::drop(pf.run(engine)));
            let t_enc = time_median(a.reps, || std::mem::drop(pe.run(engine)));
            rows.push(Row {
                query: q,
                engine,
                flat_ms: t_flat.as_secs_f64() * 1e3,
                enc_ms: t_enc.as_secs_f64() * 1e3,
                flat_bytes: s_flat.bytes_scanned,
                enc_bytes: s_enc.bytes_scanned,
            });
        }
    }
    if a.json {
        let rendered = rows.iter().map(|r| {
            json::Object::new()
                .field("query", json::string(r.query.name()))
                .field("engine", json::string(r.engine.name()))
                .field("flat_ms", json::number(r.flat_ms))
                .field("encoded_ms", json::number(r.enc_ms))
                .field("speedup", json::number(r.flat_ms / r.enc_ms))
                .field("flat_bytes_scanned", format!("{}", r.flat_bytes))
                .field("encoded_bytes_scanned", format!("{}", r.enc_bytes))
                .field(
                    "bytes_reduction",
                    json::number(r.flat_bytes as f64 / r.enc_bytes.max(1) as f64),
                )
                .build()
        });
        let doc = json::Object::new()
            .field("experiment", json::string("compression"))
            .field("sf", json::number(sf))
            .field("threads", format!("{threads}"))
            .field("reps", format!("{}", a.reps))
            .field("queries", json::array(rendered))
            .build();
        println!("{doc}");
    } else {
        println!("# compression — flat vs encoded storage, SF={sf}, {threads} thread(s), runtime [ms] / bytes scanned");
        println!(
            "{:<18} {:>9} {:>9} {:>7} {:>12} {:>12} {:>7}",
            "query/engine", "flat", "encoded", "spdup", "flat MB", "enc MB", "ratio"
        );
        for r in &rows {
            println!(
                "{:<18} {:>9.2} {:>9.2} {:>7.2} {:>12.1} {:>12.1} {:>7.2}",
                format!("{}/{}", r.query.name(), r.engine.name()),
                r.flat_ms,
                r.enc_ms,
                r.flat_ms / r.enc_ms,
                r.flat_bytes as f64 / 1e6,
                r.enc_bytes as f64 / 1e6,
                r.flat_bytes as f64 / r.enc_bytes.max(1) as f64,
            );
        }
    }
}

type Experiment = fn(&Args);

// ---------------------------------------------------------------------
// serve-net: stand the TCP front-end up for external clients.
// ---------------------------------------------------------------------
fn serve_net(a: &Args) {
    use dbep_net::{Server, ServerConfig};
    let sf = a.sf.unwrap_or(0.1);
    let threads = a.threads.unwrap_or_else(cores);
    let pool = a.mode != "spawn"; // `both` (the default) serves pooled
    let tpch = Arc::new(maybe_encode(gen_tpch(sf), a));
    let ssb = Arc::new(maybe_encode(gen_ssb(sf), a));
    let metrics = a.obs.then(dbep_core::EngineMetrics::new);
    let cfg = ServerConfig {
        threads,
        pool,
        metrics: metrics.clone(),
        ..ServerConfig::default()
    };
    let addr = format!(
        "{}:{}",
        a.addr.as_deref().unwrap_or("127.0.0.1"),
        a.port.unwrap_or(7878)
    );
    let server = Server::serve(&addr, Some(tpch), Some(ssb), cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "serving TPC-H + SSB (SF={sf}) on {} — mode={}, {threads} threads; a SHUTDOWN frame drains",
        server.local_addr(),
        if pool { "pool" } else { "spawn" },
    );
    server.join();
    if let Some(m) = &metrics {
        println!("{}", m.registry().snapshot_json());
    }
    eprintln!("[serve-net] drained");
}

// ---------------------------------------------------------------------
// load: open-loop latency-vs-offered-load sweep over TCP loopback.
// Arrivals follow a Poisson schedule decoupled from completions, so
// queueing delay is charged to latency (measured from the *scheduled*
// arrival) instead of silently throttling the offered rate the way the
// closed-loop `serve` experiment does.
// ---------------------------------------------------------------------

/// One open-loop request, timed against its schedule.
struct LoadSample {
    /// Scheduled arrival offset from the sweep-point start.
    scheduled: Duration,
    /// Completion offset from the sweep-point start.
    done_at: Duration,
    outcome: LoadOutcome,
}

#[derive(Clone, Copy, PartialEq)]
enum LoadOutcome {
    /// RESULT frame: counts toward goodput.
    Done,
    /// RETRY frame: the admission gate pushed back.
    Retried,
    /// Typed error, transport failure, or no connection.
    Failed,
}

/// One measured sweep point.
struct LoadReport {
    offered: u32,
    sent: usize,
    done: usize,
    retried: usize,
    failed: usize,
    /// RESULT completions inside the window, per second.
    goodput: f64,
    /// Schedule-relative latency percentiles over RESULT completions.
    p50: Duration,
    p95: Duration,
    p99: Duration,
}

/// One (mode, engine) curve over the swept rates.
struct LoadCurve {
    mode: &'static str,
    engine: Engine,
    points: Vec<LoadReport>,
    /// Largest swept rate the server kept up with (goodput ≥ 95 % of
    /// offered, monotone prefix); `None` = saturated below the sweep.
    knee: Option<f64>,
}

/// Drive one Poisson schedule through `conns` connections sharing an
/// atomic claim index. Lateness is never forgiven: a worker that falls
/// behind sends immediately and the delay lands in the sample.
fn open_loop(
    addr: std::net::SocketAddr,
    engine: Engine,
    queries: &[QueryId],
    arrivals: &[Duration],
    conns: usize,
    window: Duration,
) -> Vec<LoadSample> {
    use dbep_net::{Client, Response};
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let samples = std::sync::Mutex::new(Vec::with_capacity(arrivals.len()));
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..conns {
            let (next, samples) = (&next, &samples);
            s.spawn(move || {
                let mut client = Client::connect(addr).ok();
                let mut local = Vec::new();
                loop {
                    // ORDERING: a pure claim ticket — no data is
                    // published through this counter.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&scheduled) = arrivals.get(i) else {
                        break;
                    };
                    if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    // Drain bound: past 2× the window the point is
                    // already decided (nothing completing now lands
                    // inside it) — shed the rest of the schedule as
                    // failures instead of queueing on a saturated
                    // server for minutes. Only spawn mode hits this;
                    // pooled overload answers RETRY immediately.
                    if start.elapsed() > window * 2 {
                        local.push(LoadSample {
                            scheduled,
                            done_at: start.elapsed(),
                            outcome: LoadOutcome::Failed,
                        });
                        continue;
                    }
                    let q = queries[i % queries.len()];
                    if client.is_none() {
                        client = Client::connect(addr).ok();
                    }
                    let mut lost = false;
                    let outcome = match client.as_mut() {
                        None => LoadOutcome::Failed,
                        Some(c) => match c.run_params(q.name(), engine.name(), "") {
                            Ok(Response::Result(_)) => LoadOutcome::Done,
                            Ok(Response::Retry { .. }) => LoadOutcome::Retried,
                            Ok(_) => LoadOutcome::Failed,
                            Err(_) => {
                                lost = true;
                                LoadOutcome::Failed
                            }
                        },
                    };
                    if lost {
                        client = None;
                    }
                    local.push(LoadSample {
                        scheduled,
                        done_at: start.elapsed(),
                        outcome,
                    });
                }
                samples.lock().expect("load samples").extend(local);
            });
        }
    });
    samples.into_inner().expect("load samples")
}

fn load_cmd(a: &Args) {
    use dbep_bench::load::{find_knee, poisson_arrivals, LoadPoint};
    use dbep_bench::serve_stats::{percentile, throughput};
    use dbep_net::{Client, Server, ServerConfig};
    use std::net::ToSocketAddrs;

    let sf = a.sf.unwrap_or(0.1);
    let threads = a.threads.unwrap_or_else(cores);
    let window = Duration::from_millis(a.duration_ms);
    let queries = a.queries(&QueryId::ALL);
    let engines = match a.engine {
        Some(e) => vec![e],
        None => Engine::SELECTABLE.to_vec(),
    };
    // `--port` points the sweep at an externally started server (one
    // fixed mode, labeled `remote`); otherwise each (mode, engine)
    // scenario self-hosts a fresh in-process server on loopback.
    let remote: Option<std::net::SocketAddr> = a.port.map(|p| {
        let target = format!("{}:{p}", a.addr.as_deref().unwrap_or("127.0.0.1"));
        target
            .to_socket_addrs()
            .ok()
            .and_then(|mut i| i.next())
            .unwrap_or_else(|| usage_error(&format!("--addr/--port: cannot resolve {target:?}")))
    });
    let modes: Vec<&'static str> = match (&remote, a.mode.as_str()) {
        (Some(_), _) => vec!["remote"],
        (None, "pool") => vec!["pool"],
        (None, "spawn") => vec!["spawn"],
        _ => vec!["spawn", "pool"],
    };
    let (tpch, ssb) = if remote.is_none() {
        (
            queries
                .iter()
                .any(|q| !QueryId::SSB.contains(q))
                .then(|| Arc::new(maybe_encode(gen_tpch(sf), a))),
            queries
                .iter()
                .any(|q| QueryId::SSB.contains(q))
                .then(|| Arc::new(maybe_encode(gen_ssb(sf), a))),
        )
    } else {
        (None, None)
    };
    let mut curves = Vec::new();
    for mode in &modes {
        for &engine in &engines {
            let server = remote.is_none().then(|| {
                Server::serve(
                    "127.0.0.1:0",
                    tpch.clone(),
                    ssb.clone(),
                    ServerConfig {
                        threads,
                        pool: *mode == "pool",
                        ..ServerConfig::default()
                    },
                )
                .expect("bind loopback server")
            });
            let addr = server
                .as_ref()
                .map(|s| s.local_addr())
                .or(remote)
                .expect("a server to drive");
            // Warm-up outside the clock: first-touch effects, plan-cache
            // fills, and (for Adaptive) both exploration runs.
            let warmups = if engine == Engine::Adaptive { 2 } else { 1 };
            let mut warm = Client::connect(addr).expect("warm-up connection");
            for q in &queries {
                for _ in 0..warmups {
                    let _ = warm.run_params(q.name(), engine.name(), "");
                }
            }
            drop(warm);
            let mut points = Vec::new();
            for &rate in &a.rate {
                eprintln!(
                    "[load] mode={mode} engine={} rate={rate}/s conns={} window={window:?}",
                    engine.name(),
                    a.conns
                );
                // Deterministic per-point schedule: re-runs sweep the
                // same arrival offsets.
                let seed = dbep_obs::fingerprint64(format!("{mode}/{}/{rate}", engine.name()).as_bytes());
                let arrivals = poisson_arrivals(rate as f64, window, &mut SmallRng::seed_from_u64(seed));
                let samples = open_loop(addr, engine, &queries, &arrivals, a.conns, window);
                let mut lat: Vec<Duration> = samples
                    .iter()
                    .filter(|s| s.outcome == LoadOutcome::Done)
                    .map(|s| s.done_at.saturating_sub(s.scheduled))
                    .collect();
                lat.sort_unstable();
                let done_at: Vec<Duration> = samples
                    .iter()
                    .filter(|s| s.outcome == LoadOutcome::Done)
                    .map(|s| s.done_at)
                    .collect();
                let count = |o: LoadOutcome| samples.iter().filter(|s| s.outcome == o).count();
                points.push(LoadReport {
                    offered: rate,
                    sent: samples.len(),
                    done: count(LoadOutcome::Done),
                    retried: count(LoadOutcome::Retried),
                    failed: count(LoadOutcome::Failed),
                    goodput: throughput(&done_at, window).qps,
                    p50: percentile(&lat, 0.50),
                    p95: percentile(&lat, 0.95),
                    p99: percentile(&lat, 0.99),
                });
            }
            if let Some(server) = server {
                server.shutdown();
                server.join();
            }
            let knee = find_knee(
                &points
                    .iter()
                    .map(|p| LoadPoint {
                        offered: p.offered as f64,
                        sent: p.sent as f64 / window.as_secs_f64(),
                        goodput: p.goodput,
                    })
                    .collect::<Vec<_>>(),
                0.95,
            );
            curves.push(LoadCurve {
                mode,
                engine,
                points,
                knee,
            });
        }
    }
    if a.json {
        load_json(a, sf, threads, &queries, &curves);
    } else {
        load_text(sf, threads, a.conns, &queries, &curves);
    }
}

fn load_text(sf: f64, threads: usize, conns: usize, queries: &[QueryId], curves: &[LoadCurve]) {
    println!("# load — open-loop offered-rate sweep, SF={sf}, {threads} worker threads, {conns} connections");
    println!(
        "# mix: {}",
        queries.iter().map(|q| q.name()).collect::<Vec<_>>().join(" ")
    );
    println!(
        "{:<6} {:<11} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "mode", "engine", "offered", "sent", "done", "retry", "fail", "goodput", "p50", "p95", "p99"
    );
    for c in curves {
        for p in &c.points {
            println!(
                "{:<6} {:<11} {:>8} {:>7} {:>7} {:>7} {:>6} {:>10.2} {:>9} {:>9} {:>9}",
                c.mode,
                c.engine.name(),
                p.offered,
                p.sent,
                p.done,
                p.retried,
                p.failed,
                p.goodput,
                fmt_ms(p.p50),
                fmt_ms(p.p95),
                fmt_ms(p.p99),
            );
        }
        match c.knee {
            Some(k) => println!(
                "       {} {}: knee at {k:.0}/s (last offered rate with goodput ≥ 95 %)",
                c.mode,
                c.engine.name()
            ),
            None => println!(
                "       {} {}: saturated below the lowest swept rate",
                c.mode,
                c.engine.name()
            ),
        }
    }
}

fn load_json(a: &Args, sf: f64, threads: usize, queries: &[QueryId], curves: &[LoadCurve]) {
    use dbep_bench::json;
    let rendered = curves.iter().map(|c| {
        let points = c.points.iter().map(|p| {
            json::Object::new()
                .field("offered_per_s", format!("{}", p.offered))
                .field("sent", format!("{}", p.sent))
                .field("done", format!("{}", p.done))
                .field("retried", format!("{}", p.retried))
                .field("failed", format!("{}", p.failed))
                .field("goodput_per_s", json::number(p.goodput))
                .field("p50_ms", json::number(p.p50.as_secs_f64() * 1e3))
                .field("p95_ms", json::number(p.p95.as_secs_f64() * 1e3))
                .field("p99_ms", json::number(p.p99.as_secs_f64() * 1e3))
                .build()
        });
        json::Object::new()
            .field("mode", json::string(c.mode))
            .field("engine", json::string(c.engine.name()))
            .field("points", json::array(points))
            .field("knee_per_s", c.knee.map_or("null".to_string(), json::number))
            .build()
    });
    let doc = json::Object::new()
        .field("experiment", json::string("load"))
        .field("sf", json::number(sf))
        .field("threads", format!("{threads}"))
        .field("conns", format!("{}", a.conns))
        .field("window_ms", format!("{}", a.duration_ms))
        .field(
            "mix",
            json::array(queries.iter().map(|q| json::string(q.name()))),
        )
        .field(
            "knee_definition",
            json::string("largest swept offered rate whose goodput stays within 95% of offered, with every lower swept rate also keeping up"),
        )
        .field("curves", json::array(rendered))
        .build();
    println!("{doc}");
}

fn main() {
    let args = parse_args();
    let t = Instant::now();
    let all: Vec<(&str, Experiment)> = vec![
        ("fig3", fig3),
        ("table1", table1),
        ("fig4", fig4),
        ("fig5", fig5),
        ("ssb", ssb),
        ("table2", table2),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("table3", table3),
        ("table4", table4),
        ("table5", table5),
        ("fig11", fig11),
        ("oltp", oltp),
        ("table6", table6),
        ("query", query),
        ("serve", serve),
        ("metrics", metrics_cmd),
        ("compression", compression),
    ];
    // Standalone network experiments: excluded from `all` (serve-net
    // blocks on the wire until a SHUTDOWN frame, load sweeps minutes).
    let standalone: Vec<(&str, Experiment)> = vec![("serve-net", serve_net), ("load", load_cmd)];
    if args.id == "all" {
        for (name, f) in &all {
            println!("\n================ {name} ================");
            f(&args);
        }
    } else {
        match all.iter().chain(standalone.iter()).find(|(n, _)| *n == args.id) {
            Some((_, f)) => f(&args),
            None => {
                eprintln!(
                    "unknown experiment '{}'; known: {} all",
                    args.id,
                    all.iter()
                        .chain(standalone.iter())
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                std::process::exit(2);
            }
        }
    }
    eprintln!("[done] {} in {:.1}s", args.id, t.elapsed().as_secs_f64());
}
