//! Tiny self-contained benchmark harness (`harness = false` targets).
//!
//! The workspace is dependency-free, so the micro-benchmarks use this
//! instead of criterion: median-of-N wall timing after warm-up, with
//! per-element throughput reporting and a substring filter, mirroring
//! the `cargo bench <filter>` workflow.
//!
//! When the binary is executed without `--bench` (e.g. by `cargo test`,
//! which builds bench targets), it runs every benchmark once as a smoke
//! test and skips the timed repetitions.

use std::time::{Duration, Instant};

/// One benchmark run context, constructed from the process arguments.
pub struct Bench {
    filter: Option<String>,
    timed: bool,
    reps: usize,
}

impl Bench {
    /// Parse `[filter] [--bench] [--reps N]` from `std::env::args`.
    pub fn from_env() -> Self {
        let mut b = Bench {
            filter: None,
            timed: false,
            reps: 15,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => b.timed = true,
                "--reps" => {
                    b.reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(b.reps);
                }
                // libtest-style flags cargo may forward; ignore.
                other if other.starts_with('-') => {}
                other => b.filter = Some(other.to_string()),
            }
        }
        b
    }

    /// Run one benchmark: `elems` is the per-iteration element count used
    /// for throughput reporting (pass 1 for "per op").
    pub fn run<T>(&self, name: &str, elems: u64, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        std::hint::black_box(f()); // warm-up / smoke run
        if !self.timed {
            println!("{name:<44} ok (smoke)");
            return;
        }
        let mut times: Vec<Duration> = (0..self.reps)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        let ns = median.as_nanos() as f64;
        let per_elem = ns / elems.max(1) as f64;
        let meps = elems as f64 / median.as_secs_f64() / 1e6;
        println!(
            "{name:<44} {per_elem:>9.2} ns/elem {meps:>10.1} Melem/s   (median of {})",
            self.reps
        );
    }
}
