//! Host hardware inventory (the Table 4 report).
//!
//! The paper tabulates three platforms (Skylake-X, Threadripper, Knights
//! Landing). We run on whatever host executes the harness and print the
//! same attribute rows for it (DESIGN.md substitution 3).

use std::fs;

fn read(path: &str) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

fn cpuinfo_field(field: &str) -> Option<String> {
    let text = fs::read_to_string("/proc/cpuinfo").ok()?;
    text.lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split(':').nth(1))
        .map(|v| v.trim().to_string())
}

fn meminfo_gib(field: &str) -> Option<f64> {
    let text = fs::read_to_string("/proc/meminfo").ok()?;
    let line = text.lines().find(|l| l.starts_with(field))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0 / 1024.0)
}

fn cache(index: usize) -> Option<String> {
    let base = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
    let level = read(&format!("{base}/level"))?;
    let typ = read(&format!("{base}/type"))?;
    let size = read(&format!("{base}/size"))?;
    if typ == "Instruction" {
        return None;
    }
    Some(format!("L{level} cache: {size}"))
}

/// Multi-line host description in the spirit of the paper's Table 4.
pub fn report() -> String {
    let mut lines = Vec::new();
    lines.push(format!(
        "model: {}",
        cpuinfo_field("model name").unwrap_or_else(|| "unknown".into())
    ));
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    lines.push(format!("logical cores: {cores}"));
    if let Some(mhz) = cpuinfo_field("cpu MHz") {
        lines.push(format!("clock: {mhz} MHz (current)"));
    }
    lines.push(format!(
        "tsc rate: {:.2} GHz",
        dbep_runtime::counters::tsc_per_ns()
    ));
    for i in 0..4 {
        if let Some(c) = cache(i) {
            lines.push(c);
        }
    }
    if let Some(gib) = meminfo_gib("MemTotal") {
        lines.push(format!("memory: {gib:.1} GiB"));
    }
    lines.push(format!("simd: {}", dbep_runtime::simd::describe()));
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_has_core_fields() {
        let r = super::report();
        assert!(r.contains("logical cores:"));
        assert!(r.contains("simd:"));
    }
}
