//! Minimal JSON emission for the experiments harness' `--json` mode.
//!
//! The workspace is dependency-free, so machine-readable output is built
//! with a tiny writer instead of serde: objects and arrays accumulate
//! pre-rendered members, scalars render through the typed helpers. The
//! produced text is valid JSON (escaped strings, `null` for missing
//! counters, no trailing commas) so downstream tooling can record
//! `BENCH_*.json` perf trajectories across PRs.

/// Render a string as a JSON string literal (with escaping).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float (JSON has no NaN/Inf; those become `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render an optional integer counter as a number or `null`.
pub fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v}"),
        None => "null".to_string(),
    }
}

/// An object under construction: `field` values must already be
/// rendered JSON (use [`string`]/[`number`]/[`opt_u64`] or a nested
/// builder's `build()`).
#[derive(Default)]
pub struct Object {
    members: Vec<String>,
}

impl Object {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn field(mut self, key: &str, rendered_value: impl Into<String>) -> Self {
        self.members
            .push(format!("{}:{}", string(key), rendered_value.into()));
        self
    }

    pub fn build(self) -> String {
        format!("{{{}}}", self.members.join(","))
    }
}

/// Render a sequence of already-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_composition() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(opt_u64(None), "null");
        assert_eq!(opt_u64(Some(7)), "7");
        let obj = Object::new()
            .field("query", string("q1"))
            .field("ms", number(2.0))
            .build();
        assert_eq!(obj, r#"{"query":"q1","ms":2}"#);
        assert_eq!(array([obj.clone()]), format!("[{obj}]"));
    }

    #[test]
    fn output_parses_as_json_shaped_text() {
        // A structural sanity check without a parser dependency: balanced
        // braces/brackets and quote count parity on a nested document.
        let doc = Object::new()
            .field("experiment", string("fig3"))
            .field(
                "queries",
                array((0..3).map(|i| {
                    Object::new()
                        .field("query", string(&format!("q{i}")))
                        .field("typer_ms", number(i as f64))
                        .build()
                })),
            )
            .build();
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert_eq!(doc.matches('"').count() % 2, 0);
    }
}
