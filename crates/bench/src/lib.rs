//! Shared measurement utilities for the experiment harness and the
//! in-tree micro-benchmarks.

pub mod harness;
pub mod hwinfo;
pub mod json;
pub mod load;
pub mod serve_stats;

use dbep_runtime::counters::{self, CounterValues};
use std::time::{Duration, Instant};

/// Median wall time of `reps` runs after one warm-up run.
pub fn time_median(reps: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// One counter-instrumented run (after one warm-up run).
pub fn measure_counters(mut f: impl FnMut()) -> CounterValues {
    f(); // warm-up
    let (_, v) = counters::measure(f);
    v
}

/// Format a duration as milliseconds with sensible precision.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// Per-tuple counter row in the paper's Table 1 layout. Missing hardware
/// events print as `-`.
pub fn per_tuple_row(label: &str, v: &CounterValues, tuples: usize) -> String {
    let t = tuples.max(1) as f64;
    let per = |x: Option<u64>| match x {
        Some(x) => format!("{:>7.2}", x as f64 / t),
        None => format!("{:>7}", "-"),
    };
    let ipc = match v.ipc() {
        Some(i) => format!("{i:>5.1}"),
        None => format!("{:>5}", "-"),
    };
    format!(
        "{label:<14} {:>7.1} {ipc} {} {} {} {} {}",
        v.cycles_estimate() as f64 / t,
        per(v.instructions),
        per(v.l1d_miss),
        per(v.llc_miss),
        per(v.branch_miss),
        per(v.stalled_backend),
    )
}

/// Header matching [`per_tuple_row`].
pub fn per_tuple_header() -> String {
    format!(
        "{:<14} {:>7} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "", "cycles", "IPC", "instr", "L1miss", "LLCmiss", "brmiss", "stall"
    )
}

/// Whether real hardware counters are available (printed as a caveat
/// when they are not — the container fallback is TSC-only).
pub fn counters_note() -> &'static str {
    if dbep_runtime::CounterSet::available() {
        "hardware counters: perf_event_open"
    } else {
        "hardware counters UNAVAILABLE (perf_event_paranoid); cycles derived from TSC, other events print '-'"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_stable() {
        let mut n = 0u64;
        let d = time_median(3, || {
            n += 1;
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(n, 4); // warm-up + 3 reps
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ms(Duration::from_millis(250)), "250");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.5");
        assert!(per_tuple_header().contains("cycles"));
        let v = CounterValues {
            tsc_cycles: 1000,
            ..Default::default()
        };
        let row = per_tuple_row("q1 Typer", &v, 100);
        assert!(row.contains("q1 Typer"));
        assert!(row.contains("10.0"));
    }
}
