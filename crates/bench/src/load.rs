//! Open-loop load generation for the `load` experiment: Poisson
//! arrival schedules, coordinated-omission-safe latency accounting, and
//! knee detection on the offered-load sweep.
//!
//! The closed-loop `serve` benchmark cannot see queueing delay build
//! up: each client waits for its previous response before sending the
//! next request, so when the server slows down the *offered* load drops
//! with it and tail latencies stay flattering. The open-loop harness
//! decouples arrivals from completions — requests are scheduled by a
//! Poisson process at a fixed offered rate, latency is measured from
//! the *scheduled* arrival time (a late send is queueing delay, not a
//! free pass), and saturation shows up as the goodput curve peeling
//! away from the offered-rate diagonal. The **knee** is the last swept
//! rate the server still keeps up with; past it, p99 explodes and
//! goodput flatlines at capacity.

use dbep_runtime::SmallRng;
use std::time::Duration;

/// Uniform draw in `[0, 1)` from the top 53 bits (the standard
/// bit-perfect `u64 → f64` construction).
fn uniform(rng: &mut SmallRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Poisson arrival schedule: cumulative offsets (from the scenario
/// start) of every request scheduled in `[0, window)` at `rate`
/// requests/second. Inter-arrival gaps are exponential
/// (`-ln(1-U)/rate`), so the count is itself Poisson-distributed —
/// callers report *actual* sent counts, not `rate × window`.
pub fn poisson_arrivals(rate: f64, window: Duration, rng: &mut SmallRng) -> Vec<Duration> {
    assert!(rate > 0.0, "offered rate must be positive");
    let mut arrivals = Vec::with_capacity((rate * window.as_secs_f64() * 1.25) as usize + 4);
    let mut t = 0.0_f64;
    loop {
        // 1-U keeps the argument in (0, 1]: ln is finite.
        t += -(1.0 - uniform(rng)).ln() / rate;
        if t >= window.as_secs_f64() {
            return arrivals;
        }
        arrivals.push(Duration::from_secs_f64(t));
    }
}

/// One point of an offered-load sweep, as consumed by [`find_knee`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPoint {
    /// Nominal offered rate (requests/second) the schedule was
    /// generated at — the value a knee is reported as.
    pub offered: f64,
    /// Realized arrival rate of the Poisson schedule (sent / window).
    /// The keep-up test compares goodput against *this*, so the
    /// schedule's sampling noise (sd/mean = 1/√(rate·window)) cannot
    /// fake or hide a knee.
    pub sent: f64,
    /// Completed-with-result rate within the window (RETRY and errors
    /// excluded).
    pub goodput: f64,
}

/// Largest swept offered rate whose goodput keeps up — within
/// `tolerance` (e.g. `0.95`) of the realized arrival rate — with every
/// lower swept rate also keeping up. Demanding the whole prefix rules
/// out a lucky point past saturation. `None` means the server kept up
/// with no swept rate (the knee is below the sweep) — not that there
/// is no knee.
pub fn find_knee(curve: &[LoadPoint], tolerance: f64) -> Option<f64> {
    let mut sorted: Vec<LoadPoint> = curve.to_vec();
    sorted.sort_by(|a, b| a.offered.total_cmp(&b.offered));
    let mut knee = None;
    for p in &sorted {
        if p.goodput >= tolerance * p.sent {
            knee = Some(p.offered);
        } else {
            break;
        }
    }
    knee
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_poisson_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let window = Duration::from_secs(10);
        let arrivals = poisson_arrivals(100.0, window, &mut rng);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "monotone");
        assert!(arrivals.iter().all(|&a| a < window), "inside the window");
        // Count concentrates around rate × window = 1000 (sd ≈ 32).
        assert!(
            (800..1200).contains(&arrivals.len()),
            "got {} arrivals",
            arrivals.len()
        );
        // Mean inter-arrival gap ≈ 1/rate = 10 ms.
        let mean = arrivals.last().unwrap().as_secs_f64() / arrivals.len() as f64;
        assert!((0.008..0.012).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn arrivals_are_deterministic_under_a_seed() {
        let window = Duration::from_secs(1);
        let a = poisson_arrivals(50.0, window, &mut SmallRng::seed_from_u64(9));
        let b = poisson_arrivals(50.0, window, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = poisson_arrivals(50.0, window, &mut SmallRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn knee_is_the_last_rate_the_server_keeps_up_with() {
        let curve = [
            LoadPoint {
                offered: 16.0,
                sent: 16.2,
                goodput: 16.0,
            },
            LoadPoint {
                offered: 32.0,
                sent: 32.5,
                goodput: 31.5,
            },
            LoadPoint {
                offered: 64.0,
                sent: 63.0,
                goodput: 62.0,
            },
            LoadPoint {
                offered: 128.0,
                sent: 126.0,
                goodput: 90.0,
            },
            LoadPoint {
                offered: 256.0,
                sent: 250.0,
                goodput: 88.0,
            },
        ];
        assert_eq!(find_knee(&curve, 0.95), Some(64.0));
    }

    #[test]
    fn knee_ignores_lucky_points_past_saturation() {
        // 64 collapses but 128 happens to graze the tolerance — the
        // prefix rule keeps the knee at 32.
        let curve = [
            LoadPoint {
                offered: 128.0,
                sent: 128.0,
                goodput: 123.0,
            },
            LoadPoint {
                offered: 32.0,
                sent: 32.0,
                goodput: 32.0,
            },
            LoadPoint {
                offered: 64.0,
                sent: 64.0,
                goodput: 40.0,
            },
        ];
        assert_eq!(find_knee(&curve, 0.95), Some(32.0));
    }

    #[test]
    fn knee_uses_the_realized_rate_not_the_nominal_one() {
        // A short window drew only 37 arrivals at nominal 80/s; all 37
        // completed in time. Against the nominal rate this would read
        // as saturation — against the realized rate it keeps up.
        let curve = [
            LoadPoint {
                offered: 20.0,
                sent: 20.0,
                goodput: 20.0,
            },
            LoadPoint {
                offered: 80.0,
                sent: 74.0,
                goodput: 74.0,
            },
        ];
        assert_eq!(find_knee(&curve, 0.95), Some(80.0));
    }

    #[test]
    fn knee_edge_cases() {
        assert_eq!(find_knee(&[], 0.95), None);
        // Saturated below the lowest swept rate.
        let curve = [LoadPoint {
            offered: 16.0,
            sent: 15.8,
            goodput: 2.0,
        }];
        assert_eq!(find_knee(&curve, 0.95), None);
    }
}
