//! Statistics for the closed-loop `serve` benchmark: percentile
//! estimation and deadline-clamped throughput.
//!
//! Two past metric bugs live here as regression-proofed fixes:
//!
//! * **Percentile collapse** — nearest-rank with `.round()` maps p95
//!   and p99 of small samples to the same order statistic (for n=21,
//!   both round to index 20), making tail latencies indistinguishable.
//!   [`percentile`] uses linear interpolation between the two closest
//!   order statistics instead.
//! * **QPS drain inflation** — closed-loop clients check the deadline
//!   *before* firing, so requests in flight at the deadline still
//!   complete and land in the sample set, while the wall-clock
//!   denominator also grows by the drain. Counting those completions
//!   against the drained elapsed time conflates offered load with
//!   measured-window throughput. [`throughput`] clamps: only
//!   completions within the configured window count toward QPS, and
//!   the drain is reported separately.

use std::time::Duration;

/// Linear-interpolation percentile over an ascending-sorted slice
/// (the "exclusive" variant on ranks `0..=n-1`): rank `(n-1)·p` is
/// split into its integer neighbors and interpolated. `p` is clamped
/// to `[0, 1]`; an empty slice yields zero.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    let a = sorted[lo].as_secs_f64();
    let b = sorted[hi].as_secs_f64();
    Duration::from_secs_f64(a + (b - a) * frac)
}

/// Deadline-clamped throughput of one serve scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Requests completed within the measured window.
    pub completed: usize,
    /// Requests that finished after the deadline (the drain); they
    /// still contribute latency samples but not QPS.
    pub drained: usize,
    /// `completed / window` — the measured-window rate.
    pub qps: f64,
}

/// Compute [`Throughput`] from per-request completion offsets
/// (relative to the scenario start) and the configured window.
pub fn throughput(done_at: &[Duration], window: Duration) -> Throughput {
    let completed = done_at.iter().filter(|&&t| t <= window).count();
    Throughput {
        completed,
        drained: done_at.len() - completed,
        qps: completed as f64 / window.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentile_interpolates_known_distribution() {
        // 1..=100 ms: rank p·99 → p50 = 50.5 ms, p95 = 95.05 ms,
        // p99 = 99.01 ms (the textbook linear-interpolation values).
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.50), Duration::from_micros(50_500));
        assert_eq!(percentile(&sorted, 0.95), Duration::from_micros(95_050));
        assert_eq!(percentile(&sorted, 0.99), Duration::from_micros(99_010));
        assert_eq!(percentile(&sorted, 0.0), ms(1));
        assert_eq!(percentile(&sorted, 1.0), ms(100));
    }

    #[test]
    fn percentile_separates_tails_on_small_samples() {
        // The old nearest-rank `.round()` mapped p95 and p99 of n=21
        // to the same index (both → 20). Interpolation keeps them
        // distinct.
        let sorted: Vec<Duration> = (0..21).map(|i| ms(i * 10)).collect();
        let p95 = percentile(&sorted, 0.95);
        let p99 = percentile(&sorted, 0.99);
        assert!(p95 < p99, "p95 {p95:?} must stay below p99 {p99:?}");
        assert_eq!(p95, ms(190));
        assert_eq!(p99, ms(198));
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 0.99), ms(7));
        // Out-of-range p clamps instead of indexing out of bounds.
        assert_eq!(percentile(&[ms(1), ms(2)], 1.5), ms(2));
        assert_eq!(percentile(&[ms(1), ms(2)], -0.5), ms(1));
    }

    #[test]
    fn throughput_clamps_post_deadline_drain() {
        // 10 requests complete inside the 1 s window; 5 more drain in
        // afterwards. The drained completions must not raise QPS (the
        // old accounting divided 15 by ~1.4 s of wall clock, reporting
        // neither offered nor completed rate).
        let mut done: Vec<Duration> = (1..=10).map(|i| ms(i * 100)).collect();
        done.extend((1..=5).map(|i| ms(1000 + i * 80)));
        let t = throughput(&done, ms(1000));
        assert_eq!(t.completed, 10);
        assert_eq!(t.drained, 5);
        assert!((t.qps - 10.0).abs() < 1e-9, "qps {}", t.qps);
    }

    #[test]
    fn throughput_counts_exact_deadline_completions() {
        let done = [ms(500), ms(1000), ms(1001)];
        let t = throughput(&done, ms(1000));
        assert_eq!((t.completed, t.drained), (2, 1));
    }
}
