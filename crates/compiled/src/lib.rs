//! **Typer** — the data-centric compiled engine (§2, Fig. 2a).
//!
//! Data-centric code generation fuses all non-blocking operators of a
//! query pipeline into one tight loop that keeps attribute values in CPU
//! registers. The paper generates that code at query time (HyPer emits
//! LLVM IR, the paper's test system emits C++) and explicitly excludes
//! compilation time from every measurement; what is measured is the
//! *execution of the fused loops*. This crate therefore represents the
//! generator's **output** directly in Rust (see DESIGN.md substitution 1):
//!
//! * [`pipeline`] — a produce/consume operator framework whose generic
//!   composition monomorphizes into exactly the fused loops a
//!   produce/consume code generator would emit. It exists to demonstrate
//!   and test the codegen structure (push-based, consume called from
//!   inside the scan loop, no materialization between operators).
//! * The per-query Typer implementations in `dbep-queries::tpch`/`ssb`
//!   are the "generated code" for each physical plan — hand-written
//!   fused loops exactly in the shape of Fig. 2a, over the shared
//!   substrate (`dbep-runtime`'s hash tables, hash functions and
//!   morsel-driven scheduler).
//!
//! Pipeline breakers (hash-table build, pre-aggregation) end a fused
//! loop; the next pipeline starts after all workers finish the previous
//! one, mirroring HyPer's barrier-separated pipeline phases (§6.1).

pub mod packed;
pub mod pipeline;
pub mod stage;

pub use packed::PackedReader;
pub use pipeline::{Filter, Map, Pipeline, Sink};
