//! Unpack-in-register scan cursors for bit-packed columns.
//!
//! The compiled engine's fused loops keep attribute values in registers
//! (Fig. 2a); scanning a compressed column must not break that shape
//! with a decode-to-buffer pass. [`PackedReader`] is the generated-code
//! idiom for a sequential scan over a [`PackedInts`] column: each
//! `next()` reads the 8-byte window holding the value and shifts/masks
//! it out — branch-free, with no loop-carried state beyond one running
//! bit offset, so four interleaved cursors (a Q6 scan) pipeline freely.
//! Decompression is fused into the consuming loop, exactly parallel to
//! the vectorized engine's `sel_*_packed` primitives.

use dbep_storage::encoded::MAX_PACKED_WIDTH;
use dbep_storage::PackedInts;

/// Sequential register-resident decoder over a bit-packed FOR column.
///
/// Constructed once per morsel at the morsel's start row; `next()`
/// yields decoded values in row order. All-equal (width 0) and raw
/// (width 64) columns take dedicated branches predicted perfectly in
/// the hot loop; packed widths (1..=[`MAX_PACKED_WIDTH`]) decode
/// through an unaligned 8-byte window — the column's pad word keeps the
/// window of every in-bounds row inside the allocation, the same
/// invariant the AVX-512 gather kernels rely on.
pub struct PackedReader<'a> {
    words: &'a [u64],
    /// Bit position of the next value (packed widths only).
    bit: usize,
    width: u32,
    mask: u64,
    min: i64,
    /// Row the next `next()` call decodes (raw/width-0 fast paths).
    row: usize,
}

impl<'a> PackedReader<'a> {
    /// Cursor positioned at `start_row` (a morsel boundary).
    pub fn new(col: &'a PackedInts, start_row: usize) -> PackedReader<'a> {
        debug_assert!(start_row <= col.len());
        let width = col.width();
        debug_assert!(width == 0 || width == 64 || width <= MAX_PACKED_WIDTH);
        PackedReader {
            words: col.words(),
            bit: start_row * width as usize,
            width,
            mask: col.mask(),
            min: col.min(),
            row: start_row,
        }
    }

    /// Decode the next value. Caller stays within the column length
    /// (morsel ranges are in bounds by construction).
    // Not `Iterator`: an `Option<i64>` per row would put an end-check
    // back into the fused loop the cursor exists to avoid.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn next(&mut self) -> i64 {
        match self.width {
            0 => self.min,
            64 => {
                let v = self.words[self.row] as i64;
                self.row += 1;
                v
            }
            w => {
                let bit = self.bit;
                self.bit = bit + w as usize;
                debug_assert!((bit >> 3) + 8 <= self.words.len() * 8);
                // SAFETY: width <= MAX_PACKED_WIDTH and the payload's
                // pad word keep the 8-byte window of any in-bounds row
                // inside the allocation.
                let win = unsafe {
                    (self.words.as_ptr() as *const u8)
                        .add(bit >> 3)
                        .cast::<u64>()
                        .read_unaligned()
                };
                self.min.wrapping_add(((win >> (bit & 7)) & self.mask) as i64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_storage::Arena;

    fn check(vals: &[i64], starts: &[usize]) {
        let arena = Arena::new();
        let col = PackedInts::encode(vals, &arena);
        for &start in starts {
            if start > vals.len() {
                continue;
            }
            let mut r = PackedReader::new(&col, start);
            for (i, &expect) in vals.iter().enumerate().skip(start) {
                assert_eq!(
                    r.next(),
                    expect,
                    "row {i} from start {start} width {}",
                    col.width()
                );
            }
        }
    }

    #[test]
    fn sequential_read_matches_all_widths() {
        // Miri runs at interpreter speed: shrink the sweep there while
        // keeping sub-word, word-boundary and wide-row coverage.
        let widths: &[u32] = if cfg!(miri) {
            &[1, 12, 31, 57]
        } else {
            &[1, 3, 7, 8, 12, 13, 21, 31, 33, 48, 57]
        };
        let rows: usize = if cfg!(miri) { 80 } else { 300 };
        for &w in widths {
            let vals: Vec<i64> = (0..rows)
                .map(|i| ((i as u64).wrapping_mul(0x9e37_79b9) & ((1u64 << w) - 1)) as i64 - 17)
                .collect();
            check(&vals, &[0, 1, 7, 8, 63, 64, 65, rows / 2, rows - 1, rows]);
        }
    }

    #[test]
    fn all_equal_and_raw_paths() {
        check(&vec![99i64; 128], &[0, 50, 128]);
        check(&[i64::MIN, 0, i64::MAX, -1, 7], &[0, 2, 5]);
    }

    #[test]
    fn single_row_and_empty() {
        check(&[42], &[0, 1]);
        check(&[], &[0]);
        // Distinct two-row column exercises a nonzero width.
        check(&[5, 9], &[0, 1, 2]);
    }

    #[test]
    fn word_boundary_starts() {
        // Width 12: rows 0..=4 fit word 0 (60 bits), row 5 spans the
        // word boundary — starts at and around it must decode right.
        let vals: Vec<i64> = (0..64).map(|i| 1000 + (i * 371 % 4096)).collect();
        check(&vals, &[4, 5, 6, 10, 11]);
    }
}
