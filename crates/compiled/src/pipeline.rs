//! Produce/consume pipelines, fused at (Rust-)compile time.
//!
//! A data-centric code generator walks the plan tree depth-first:
//! `produce` is called on first visit, `consume` on last, and the emitted
//! code is one loop per pipeline with each operator's logic inlined at
//! its parent's consume site (§1, §2). Here the same structure is
//! expressed with generics: a [`Pipeline`] drives morsels of the scanned
//! relation through a [`Sink`] chain, and monomorphization + inlining
//! produce the single fused loop the generator would have emitted —
//! tuple-at-a-time, intermediates in registers, no vectors in between.
//!
//! The framework is deliberately tuple-oriented and allocation-free on
//! the hot path; pipeline breakers are ordinary sinks that absorb rows
//! into shared state (hash-table shards, aggregation shards).

use dbep_runtime::{ExecCtx, Morsels};

/// A consumer of rows of type `T` — the `consume` side of an operator.
/// Implementations must be `#[inline]`-friendly; the whole point is that
/// the chain collapses into one loop body.
pub trait Sink<T> {
    fn push(&mut self, row: T);
}

/// Blanket impl so plain closures can terminate a chain.
impl<T, F: FnMut(T)> Sink<T> for F {
    #[inline(always)]
    fn push(&mut self, row: T) {
        self(row)
    }
}

/// A selection fused into the loop: rows pass to `next` only when the
/// predicate holds (an `if` in the generated code, §3.2).
pub struct Filter<P, S> {
    pub pred: P,
    pub next: S,
}

impl<T, P: FnMut(&T) -> bool, S: Sink<T>> Sink<T> for Filter<P, S> {
    #[inline(always)]
    fn push(&mut self, row: T) {
        if (self.pred)(&row) {
            self.next.push(row);
        }
    }
}

/// A projection fused into the loop.
pub struct Map<F, S> {
    pub f: F,
    pub next: S,
}

impl<T, U, F: FnMut(T) -> U, S: Sink<U>> Sink<T> for Map<F, S> {
    #[inline(always)]
    fn push(&mut self, row: T) {
        self.next.push((self.f)(row));
    }
}

/// One fused pipeline: a morsel-driven scan loop pushing row ids into a
/// per-worker sink chain.
pub struct Pipeline;

impl Pipeline {
    /// Run the pipeline over `total` tuples on `exec` — the shared
    /// worker pool when one is attached, scoped workers otherwise.
    ///
    /// `make_sink(worker)` builds each participating worker's fused
    /// operator chain (worker-local state lives inside the sinks);
    /// `finish` receives every built sink after the scan's pipeline
    /// barrier — the point where a pipeline breaker hands its shard to
    /// shared state.
    pub fn run<S, MS, FIN>(exec: &ExecCtx, total: usize, make_sink: MS, finish: FIN)
    where
        S: Sink<usize> + Send,
        MS: Fn(usize) -> S + Sync,
        FIN: Fn(usize, S),
    {
        let sinks = exec.map_slots(
            Morsels::new(total),
            |w| (w, make_sink(w)),
            |(_, sink), range| {
                for i in range {
                    sink.push(i);
                }
            },
        );
        for (w, sink) in sinks {
            finish(w, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn fused_filter_map_chain() {
        // SELECT sum(x * 2) WHERE x % 3 == 0 over x in 0..10_000.
        // The sink chain below is what a generator would fuse: each tuple
        // flows through filter and map without leaving registers, and the
        // worker-local accumulator is merged in `finish`.
        let total = AtomicI64::new(0);
        struct SumSink {
            local: i64,
        }
        impl Sink<i64> for SumSink {
            #[inline(always)]
            fn push(&mut self, v: i64) {
                self.local += v;
            }
        }
        Pipeline::run(
            &ExecCtx::spawn(4),
            10_000,
            |_w| Filter {
                pred: |i: &usize| i.is_multiple_of(3),
                next: Map {
                    f: |i: usize| i as i64 * 2,
                    next: SumSink { local: 0 },
                },
            },
            |_w, sink| {
                total.fetch_add(sink.next.next.local, Ordering::Relaxed);
            },
        );
        let model: i64 = (0..10_000).filter(|i| i % 3 == 0).map(|i| i as i64 * 2).sum();
        assert_eq!(total.load(Ordering::Relaxed), model);
    }

    #[test]
    fn single_threaded_runs_inline() {
        let count = AtomicI64::new(0);
        Pipeline::run(
            &ExecCtx::inline(),
            100,
            |_| |_i: usize| {},
            |w, _| {
                assert_eq!(w, 0);
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_tuple_pushed_exactly_once() {
        let seen = (0..1000).map(|_| AtomicI64::new(0)).collect::<Vec<_>>();
        let seen = &seen;
        Pipeline::run(
            &ExecCtx::spawn(8),
            1000,
            |_| {
                move |i: usize| {
                    seen[i].fetch_add(1, Ordering::Relaxed);
                }
            },
            |_, _| {},
        );
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "tuple {i}");
        }
    }
}
