//! Stage-granular entry points for hybrid (per-pipeline) execution.
//!
//! The adaptive driver assigns engines per pipeline stage, so a
//! query's Typer-side build stage must be callable on its own — not
//! only as part of a fully fused Typer plan. This module packages the
//! recurring fused-build shape (morsel-driven scan pushing `(hash,
//! row)` pairs into per-worker shards, merged into one [`JoinHt`]
//! behind the pipeline breaker) as a standalone entry point.

use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::{ExecCtx, JoinHt, Morsels};
use std::ops::Range;

/// Run one fused σ→build pipeline to completion and return its hash
/// table. `each` is the compiled loop body for one morsel: filter rows
/// of `r` and [`JoinHtShard::push`] the survivors. `pace` runs once
/// per morsel with its row count (bytes accounting / IO throttling —
/// pass the caller's `ExecCfg::pace` closure).
pub fn build_ht<K, E, P>(exec: &ExecCtx, total: usize, pace: P, each: E) -> JoinHt<K>
where
    K: Send + Sync,
    E: Fn(&mut JoinHtShard<K>, Range<usize>) + Sync,
    P: Fn(usize) + Sync,
{
    let shards = exec.map_slots(
        Morsels::new(total),
        |_| JoinHtShard::new(),
        |sh, r| {
            pace(r.len());
            each(sh, r);
        },
    );
    JoinHt::from_shards(shards, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_runtime::hash::HashFn;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builds_filtered_table() {
        let hf = HashFn::Crc;
        let exec = ExecCtx {
            threads: 2,
            run: None,
        };
        let paced = AtomicUsize::new(0);
        let n = 10_000usize;
        let ht = build_ht::<i32, _, _>(
            &exec,
            n,
            |rows| {
                paced.fetch_add(rows, Ordering::Relaxed);
            },
            |sh, r| {
                for i in r {
                    if i % 3 == 0 {
                        sh.push(hf.hash(i as u64), i as i32);
                    }
                }
            },
        );
        assert_eq!(paced.load(Ordering::Relaxed), n, "every morsel paced");
        for probe in [0i32, 3, 9999] {
            let h = hf.hash(probe as u64);
            let hit = ht.probe(h).any(|e| e.row == probe);
            assert_eq!(hit, probe % 3 == 0, "probe {probe}");
        }
    }
}
