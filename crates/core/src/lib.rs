//! `dbep-core` — the public facade of the db-engine-paradigms
//! reproduction.
//!
//! Re-exports every sub-crate plus a [`prelude`] with the types needed
//! for the common "generate data, run a query on N engines, compare"
//! workflow. See the workspace README for the architecture overview and
//! `DESIGN.md` for the paper-to-module mapping.

pub use dbep_compiled as compiled;
pub use dbep_datagen as datagen;
pub use dbep_queries as queries;
pub use dbep_runtime as runtime;
pub use dbep_storage as storage;
pub use dbep_vectorized as vectorized;
pub use dbep_volcano as volcano;

/// Everything needed for the common benchmark workflow.
pub mod prelude {
    pub use dbep_datagen;
    pub use dbep_queries::{self, result::QueryResult, run, Engine, ExecCfg, QueryId};
    pub use dbep_runtime::hash::HashFn;
    pub use dbep_storage::{self, Database, Table, Value};
    pub use dbep_vectorized::SimdPolicy;
}
