//! `dbep-core` — the public facade of the db-engine-paradigms
//! reproduction.
//!
//! Re-exports every sub-crate plus the [`Session`]/[`PreparedQuery`]
//! serving layer and a [`prelude`] with the types needed for the common
//! "generate data, prepare a query, run it on N engines, compare"
//! workflow. See the workspace README for the architecture overview and
//! `DESIGN.md` for the paper-to-module mapping.

pub mod metrics;
pub mod plan_cache;
pub mod session;

pub use dbep_compiled as compiled;
pub use dbep_datagen as datagen;
pub use dbep_obs as obs;
pub use dbep_queries as queries;
pub use dbep_runtime as runtime;
pub use dbep_scheduler as scheduler;
pub use dbep_storage as storage;
pub use dbep_vectorized as vectorized;
pub use dbep_volcano as volcano;
pub use metrics::EngineMetrics;
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use session::{params_fingerprint, PreparedQuery, Session};

/// Everything needed for the common benchmark workflow.
pub mod prelude {
    pub use crate::metrics::EngineMetrics;
    pub use crate::plan_cache::PlanCacheStats;
    pub use crate::session::{PreparedQuery, Session};
    pub use dbep_datagen;
    pub use dbep_obs::{QueryLog, QueryLogRecord, Registry, TraceSink};
    pub use dbep_queries::{
        self, params::Params, result::QueryResult, run, run_with, Engine, ExecCfg, QueryId,
    };
    pub use dbep_runtime::hash::HashFn;
    pub use dbep_scheduler::{RunStats, Scheduler};
    pub use dbep_storage::{self, Database, Table, Value};
    pub use dbep_vectorized::SimdPolicy;
}
