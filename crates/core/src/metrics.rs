//! The engine's metric bundle: every counter, gauge and histogram the
//! serving layer maintains, registered on one [`Registry`].
//!
//! [`Session::with_metrics`](crate::Session::with_metrics) attaches a
//! bundle; every run then updates it from the single completion choke
//! point, so the numbers are consistent with the query log and with
//! `PlanCacheStats` by construction. The bundle is the one place metric
//! names live — `experiments metrics` and the `serve` benchmark export
//! whatever is registered here, in JSON or Prometheus text exposition.

use dbep_obs::{Counter, Gauge, Histogram, Registry};
use dbep_scheduler::{RunStats, Scheduler};
use std::sync::Arc;

/// Handles onto every engine metric (all registered on
/// [`EngineMetrics::registry`]). Cheap to clone handles out of; updates
/// are lock-free atomics.
pub struct EngineMetrics {
    registry: Arc<Registry>,
    /// Runs begun (admission entered), by completion state below.
    pub queries_started: Arc<Counter>,
    /// Runs finished with a result.
    pub queries_completed: Arc<Counter>,
    /// Column-payload bytes scanned, summed over all runs.
    pub bytes_scanned_total: Arc<Counter>,
    /// Morsels executed on pool workers, summed over all runs.
    pub morsels_executed_total: Arc<Counter>,
    /// Cross-query task switches observed by the scheduler.
    pub steals_total: Arc<Counter>,
    /// Prepares answered from the session plan cache.
    pub plan_cache_hits: Arc<Counter>,
    /// Prepares that resolved a fresh plan.
    pub plan_cache_misses: Arc<Counter>,
    /// Pipelines queued or running on the pool, sampled at completion.
    pub scheduler_queue_depth: Arc<Gauge>,
    /// Query runs holding admission slots, sampled at completion.
    pub scheduler_inflight: Arc<Gauge>,
    /// End-to-end per-run latency.
    pub query_latency_ns: Arc<Histogram>,
    /// Per-run summed submit-to-first-morsel waits.
    pub queue_wait_ns: Arc<Histogram>,
    /// Per-run admission-gate waits.
    pub admission_wait_ns: Arc<Histogram>,
}

impl EngineMetrics {
    /// Register the full bundle on a fresh registry.
    pub fn new() -> Arc<EngineMetrics> {
        Arc::new(EngineMetrics::on_registry(Arc::new(Registry::new())))
    }

    /// Register the bundle on an existing registry (idempotent — the
    /// registry hands back existing handles for known names, so several
    /// sessions can share one exposition endpoint).
    pub fn on_registry(registry: Arc<Registry>) -> EngineMetrics {
        let c = |name, help| registry.register_counter(name, help);
        let g = |name, help| registry.register_gauge(name, help);
        let h = |name, help| registry.register_histogram(name, help);
        EngineMetrics {
            queries_started: c("queries_started", "Query runs begun (admission entered)."),
            queries_completed: c("queries_completed", "Query runs finished with a result."),
            bytes_scanned_total: c(
                "bytes_scanned_total",
                "Column-payload bytes scanned across all runs.",
            ),
            morsels_executed_total: c(
                "morsels_executed_total",
                "Morsels executed on pool workers across all runs.",
            ),
            steals_total: c(
                "steals_total",
                "Cross-query task switches observed by the scheduler.",
            ),
            plan_cache_hits: c("plan_cache_hits", "Prepares answered from the plan cache."),
            plan_cache_misses: c("plan_cache_misses", "Prepares that resolved a fresh plan."),
            scheduler_queue_depth: g(
                "scheduler_queue_depth",
                "Pipelines queued or running on the pool (sampled at query completion).",
            ),
            scheduler_inflight: g(
                "scheduler_inflight",
                "Query runs holding admission slots (sampled at query completion).",
            ),
            query_latency_ns: h("query_latency_ns", "End-to-end per-run latency, nanoseconds."),
            queue_wait_ns: h(
                "queue_wait_ns",
                "Per-run summed submit-to-first-morsel wait, nanoseconds.",
            ),
            admission_wait_ns: h("admission_wait_ns", "Per-run admission-gate wait, nanoseconds."),
            registry,
        }
    }

    /// The registry everything is registered on (export endpoint).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Fold one completed run into the bundle. Called from the session
    /// completion choke point; `sched` (when pooled) provides the
    /// instantaneous gauge samples.
    pub fn observe_run(&self, latency_ns: u64, stats: &RunStats, sched: Option<&Scheduler>) {
        self.queries_completed.inc();
        self.query_latency_ns.record(latency_ns);
        self.bytes_scanned_total.add(stats.bytes_scanned);
        self.morsels_executed_total.add(stats.morsels_executed());
        self.steals_total.add(stats.steals);
        self.queue_wait_ns.record(stats.queue_wait_ns());
        self.admission_wait_ns.record(stats.admission_wait_ns());
        if let Some(s) = sched {
            self.scheduler_queue_depth.set(s.queue_depth() as i64);
            self.scheduler_inflight.set(s.inflight() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bundle_registers_and_observes() {
        let m = EngineMetrics::new();
        m.queries_started.inc();
        let stats = RunStats {
            admission_wait: Duration::from_nanos(50),
            queue_wait: Duration::from_nanos(700),
            tasks: 2,
            morsels: 9,
            steals: 1,
            bytes_scanned: 4096,
        };
        m.observe_run(1_000_000, &stats, None);
        assert_eq!(m.queries_started.get(), 1);
        assert_eq!(m.queries_completed.get(), 1);
        assert_eq!(m.bytes_scanned_total.get(), 4096);
        assert_eq!(m.morsels_executed_total.get(), 9);
        assert_eq!(m.query_latency_ns.count(), 1);
        let json = m.registry().snapshot_json();
        for name in [
            "queries_started",
            "plan_cache_hits",
            "scheduler_queue_depth",
            "query_latency_ns",
        ] {
            assert!(json.contains(name), "{name} missing from snapshot");
        }
        let prom = m.registry().prometheus();
        assert!(prom.contains("# TYPE query_latency_ns histogram"));
    }

    #[test]
    fn on_registry_is_idempotent() {
        let registry = Arc::new(Registry::new());
        let a = EngineMetrics::on_registry(Arc::clone(&registry));
        let b = EngineMetrics::on_registry(Arc::clone(&registry));
        a.queries_started.inc();
        assert_eq!(b.queries_started.get(), 1, "same underlying counter");
    }
}
