//! Per-session plan cache and the adaptive engine-selection state.
//!
//! Production serving traffic re-prepares the same parameterized
//! templates constantly, so a [`crate::Session`] memoizes preparation:
//! the cache maps bound [`Params`] (exact match — safe because the
//! database is immutable after load, so a plan learned for one binding
//! never goes stale) to a [`CachedPlan`] holding the resolved physical
//! plan and everything `Engine::Adaptive` has learned about it.
//!
//! Adaptive selection is *measure-then-commit*, per stage:
//!
//! 1. the first execution runs pure **Typer** with a
//!    [`StageTrace`](dbep_scheduler::StageTrace) attached and records
//!    per-stage wall time;
//! 2. the next execution does the same for pure **Tectorwise**;
//! 3. every later execution uses the learned assignment — the
//!    per-stage minimum when the plan supports mixed execution
//!    ([`dbep_queries::QueryPlan::run_mix`]), otherwise the pure
//!    engine with the lower measured total.
//!
//! Both exploration runs return correct results (they *are* the pure
//! engines), so learning costs no extra query executions. Volcano is
//! never a candidate: it exists as the paper's interpreted baseline,
//! not as a paradigm that wins any stage. While an exploration run is
//! in flight on another thread, concurrent executions fall back to the
//! static paper heuristic (probe-heavy → Tectorwise, fused → Typer)
//! rather than duplicating the measurement.
//!
//! Invalidation: there is none, by design. Data is immutable once
//! loaded and plans are compiled into the binary, so a cache entry can
//! only be abandoned by dropping the session (or its clones) that owns
//! it.

use dbep_queries::params::Params;
use dbep_queries::{Engine, QueryPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters for cache effectiveness reporting (`serve` benchmark).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Prepares answered from the cache.
    pub hits: u64,
    /// Prepares that had to resolve and insert a fresh entry.
    pub misses: u64,
    /// Distinct `(query, params)` bindings currently cached.
    pub entries: usize,
}

/// The session-owned prepare memo: bound params → resolved plan +
/// adaptive state. Shared by all clones of a session (and all prepared
/// queries handed out), so exploration done through one handle
/// benefits every other.
pub struct PlanCache {
    entries: Mutex<HashMap<Params, Arc<CachedPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetch or create the entry for `params`; the bool is true on a
    /// hit. One lock covers lookup and insert, so racing prepares of
    /// the same binding converge on a single entry (one miss, the rest
    /// hits).
    pub fn lookup(&self, params: &Params) -> (Arc<CachedPlan>, bool) {
        let mut map = self.entries.lock().unwrap();
        if let Some(entry) = map.get(params) {
            // ORDERING: Relaxed — monotonic stats counter; no data is
            // published through it.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(entry), true);
        }
        // ORDERING: Relaxed — monotonic stats counter, as above.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = dbep_queries::plan(params.query());
        let entry = Arc::new(CachedPlan {
            plan,
            adaptive: AdaptiveState::new(),
        });
        map.insert(params.clone(), Arc::clone(&entry));
        (entry, false)
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            // ORDERING: Relaxed — stats snapshot; counters are
            // independent and approximate by design.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len(),
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// One cached preparation: the resolved plan and what `Adaptive` has
/// learned about this binding so far.
pub struct CachedPlan {
    pub(crate) plan: &'static dyn QueryPlan,
    pub(crate) adaptive: AdaptiveState,
}

impl CachedPlan {
    /// The resolved physical plan.
    pub fn plan(&self) -> &'static dyn QueryPlan {
        self.plan
    }

    /// The adaptive selection state for this binding.
    pub fn adaptive(&self) -> &AdaptiveState {
        &self.adaptive
    }
}

/// What the adaptive driver should do for one execution.
#[derive(Clone, Debug)]
pub enum Decision {
    /// Run this pure candidate with a stage trace attached and
    /// [`AdaptiveState::record`] the snapshot.
    Explore(Engine),
    /// Both candidates are measured: run the learned per-stage
    /// assignment, falling back to `pure` if the plan rejects mixing.
    Use { choices: Arc<Vec<Engine>>, pure: Engine },
    /// An exploration run is in flight elsewhere; execute via the
    /// static paper heuristic without recording anything.
    Heuristic,
}

/// One exploration run's measurement: per-stage wall time, plus the
/// run's whole-query instructions-per-cycle when hardware counters
/// were readable (IPC is the paper's §3.1 headline difference between
/// the paradigms, so it is the natural secondary signal).
#[derive(Clone, Debug, PartialEq)]
pub struct Measured {
    pub stage_ns: Vec<u64>,
    pub ipc: Option<f64>,
}

#[derive(Clone)]
enum Slot {
    Empty,
    InFlight,
    Done(Measured),
}

impl Slot {
    fn done(&self) -> Option<&Measured> {
        match self {
            Slot::Done(m) => Some(m),
            _ => None,
        }
    }
}

struct Learned {
    choices: Arc<Vec<Engine>>,
    pure: Engine,
}

struct Inner {
    typer: Slot,
    tw: Slot,
    learned: Option<Learned>,
}

/// Explore-then-commit engine selection for one cached plan. All
/// methods are cheap (one short mutex section); the measured runs
/// themselves happen outside the lock.
pub struct AdaptiveState {
    inner: Mutex<Inner>,
}

impl AdaptiveState {
    fn new() -> Self {
        AdaptiveState {
            inner: Mutex::new(Inner {
                typer: Slot::Empty,
                tw: Slot::Empty,
                learned: None,
            }),
        }
    }

    /// Pick the action for the next execution (see [`Decision`]).
    pub fn decide(&self) -> Decision {
        let mut inner = self.inner.lock().unwrap();
        if let Some(learned) = &inner.learned {
            return Decision::Use {
                choices: Arc::clone(&learned.choices),
                pure: learned.pure,
            };
        }
        if matches!(inner.typer, Slot::Empty) {
            inner.typer = Slot::InFlight;
            return Decision::Explore(Engine::Typer);
        }
        if matches!(inner.tw, Slot::Empty) {
            inner.tw = Slot::InFlight;
            return Decision::Explore(Engine::Tectorwise);
        }
        Decision::Heuristic
    }

    /// Commit an exploration measurement (per-stage nanoseconds from a
    /// [`StageTrace`](dbep_scheduler::StageTrace) snapshot). Once both
    /// candidates are in, the learned assignment is derived and every
    /// later [`AdaptiveState::decide`] returns it.
    pub fn record(&self, candidate: Engine, stage_ns: Vec<u64>) {
        self.record_with_ipc(candidate, stage_ns, None);
    }

    /// [`AdaptiveState::record`] carrying hardware-counter evidence:
    /// the candidate run's whole-query IPC, when counters were
    /// readable. Wall time stays the primary signal; IPC breaks the
    /// near-ties — when the measured totals are within 2% of each
    /// other, noise decides a pure-time comparison, so the candidate
    /// that retired more instructions per cycle wins instead.
    pub fn record_with_ipc(&self, candidate: Engine, stage_ns: Vec<u64>, ipc: Option<f64>) {
        let measured = Measured { stage_ns, ipc };
        let mut inner = self.inner.lock().unwrap();
        match candidate {
            Engine::Typer => inner.typer = Slot::Done(measured),
            Engine::Tectorwise => inner.tw = Slot::Done(measured),
            other => unreachable!("{} is not an adaptive candidate", other.name()),
        }
        if inner.learned.is_none() {
            if let (Some(typer), Some(tw)) = (inner.typer.done(), inner.tw.done()) {
                let choices: Vec<Engine> = typer
                    .stage_ns
                    .iter()
                    .zip(tw.stage_ns.iter())
                    .map(|(&t, &v)| if v < t { Engine::Tectorwise } else { Engine::Typer })
                    .collect();
                let t_total = typer.stage_ns.iter().sum::<u64>();
                let v_total = tw.stage_ns.iter().sum::<u64>();
                let near_tie = t_total.abs_diff(v_total) * 50 <= t_total.max(v_total);
                let pure = match (near_tie, typer.ipc, tw.ipc) {
                    (true, Some(ti), Some(vi)) if vi > ti => Engine::Tectorwise,
                    (true, Some(_), Some(_)) => Engine::Typer,
                    _ if v_total < t_total => Engine::Tectorwise,
                    _ => Engine::Typer,
                };
                inner.learned = Some(Learned {
                    choices: Arc::new(choices),
                    pure,
                });
            }
        }
    }

    /// The learned `(per-stage choices, pure fallback)` once both
    /// exploration runs have committed; `None` while still exploring.
    pub fn learned(&self) -> Option<(Vec<Engine>, Engine)> {
        let inner = self.inner.lock().unwrap();
        inner
            .learned
            .as_ref()
            .map(|l| (l.choices.as_ref().clone(), l.pure))
    }

    /// The raw exploration measurements committed so far, as
    /// `(typer, tectorwise)` — the evidence behind [`learned`], for
    /// reports and the observability surfaces.
    ///
    /// [`learned`]: AdaptiveState::learned
    pub fn evidence(&self) -> (Option<Measured>, Option<Measured>) {
        let inner = self.inner.lock().unwrap();
        (inner.typer.done().cloned(), inner.tw.done().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_queries::QueryId;

    #[test]
    fn lookup_is_hit_after_miss() {
        let cache = PlanCache::new();
        let p = Params::default_for(QueryId::Q6);
        let (first, hit) = cache.lookup(&p);
        assert!(!hit);
        let (second, hit) = cache.lookup(&p);
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second), "one entry per binding");
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn different_bindings_are_different_entries() {
        let cache = PlanCache::new();
        let (a, _) = cache.lookup(&Params::default_for(QueryId::Q6));
        let (b, _) = cache.lookup(&Params::default_for(QueryId::Q1));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn explore_then_commit_learns_stage_minima() {
        let state = AdaptiveState::new();
        // First two decisions explore Typer then Tectorwise.
        assert!(matches!(state.decide(), Decision::Explore(Engine::Typer)));
        assert!(matches!(state.decide(), Decision::Explore(Engine::Tectorwise)));
        // While both are in flight, others use the heuristic.
        assert!(matches!(state.decide(), Decision::Heuristic));
        state.record(Engine::Typer, vec![100, 900]);
        assert!(matches!(state.decide(), Decision::Heuristic));
        state.record(Engine::Tectorwise, vec![300, 400]);
        let (choices, pure) = state.learned().expect("both candidates measured");
        assert_eq!(choices, vec![Engine::Typer, Engine::Tectorwise]);
        assert_eq!(pure, Engine::Tectorwise, "700 < 1000 total");
        match state.decide() {
            Decision::Use { choices, pure } => {
                assert_eq!(*choices, vec![Engine::Typer, Engine::Tectorwise]);
                assert_eq!(pure, Engine::Tectorwise);
            }
            other => panic!("expected learned decision, got {other:?}"),
        }
    }

    #[test]
    fn ties_go_to_typer() {
        let state = AdaptiveState::new();
        state.decide();
        state.decide();
        state.record(Engine::Typer, vec![500]);
        state.record(Engine::Tectorwise, vec![500]);
        let (choices, pure) = state.learned().unwrap();
        assert_eq!(choices, vec![Engine::Typer]);
        assert_eq!(pure, Engine::Typer);
    }

    #[test]
    fn ipc_breaks_near_ties() {
        // Totals 1000 vs 990: inside the 2% band, so the higher-IPC
        // candidate wins even though its wall time is (noise-level)
        // slower.
        let state = AdaptiveState::new();
        state.decide();
        state.decide();
        state.record_with_ipc(Engine::Typer, vec![500, 500], Some(2.1));
        state.record_with_ipc(Engine::Tectorwise, vec![495, 495], Some(0.9));
        let (_, pure) = state.learned().unwrap();
        assert_eq!(pure, Engine::Typer, "higher IPC wins the near-tie");
        let (typer_m, tw_m) = state.evidence();
        assert_eq!(typer_m.unwrap().ipc, Some(2.1));
        assert_eq!(tw_m.unwrap().stage_ns, vec![495, 495]);
    }

    #[test]
    fn clear_time_wins_beat_ipc() {
        // Totals 1000 vs 700: far outside the tie band — wall time
        // stays the primary signal regardless of IPC.
        let state = AdaptiveState::new();
        state.decide();
        state.decide();
        state.record_with_ipc(Engine::Typer, vec![500, 500], Some(3.0));
        state.record_with_ipc(Engine::Tectorwise, vec![350, 350], Some(0.5));
        let (_, pure) = state.learned().unwrap();
        assert_eq!(pure, Engine::Tectorwise);
    }

    #[test]
    fn near_tie_without_counters_falls_back_to_time() {
        let state = AdaptiveState::new();
        state.decide();
        state.decide();
        state.record_with_ipc(Engine::Typer, vec![1000], None);
        state.record_with_ipc(Engine::Tectorwise, vec![995], Some(1.5));
        let (_, pure) = state.learned().unwrap();
        assert_eq!(pure, Engine::Tectorwise, "995 < 1000 and no IPC pair");
    }
}
