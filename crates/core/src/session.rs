//! Prepare-once / run-many execution facade.
//!
//! Production analytical traffic is dominated by repeated parameterized
//! templates, so the serving shape is: open a [`Session`] over a shared
//! database, [`Session::prepare`] a query once (validating and binding
//! its substitution parameters), then run the resulting
//! [`PreparedQuery`] as many times as needed — from as many threads as
//! needed — with per-call engine and [`ExecCfg`] overrides.
//!
//! With default parameters a prepared query reproduces the paper's
//! workload instance byte-for-byte; with bound [`Params`] it runs any
//! member of the query's substitution family.
//!
//! ```
//! use dbep_core::prelude::*;
//!
//! let db = dbep_datagen::tpch::generate(0.01, 42);
//! let session = Session::new(db);
//! let q6 = session.prepare(QueryId::Q6);
//! let typer = q6.run(Engine::Typer);
//! let tw = q6.run(Engine::Tectorwise);
//! assert_eq!(typer, tw);
//!
//! // Bind a different workload instance of the same template.
//! let q6_95 = session.prepare_params(dbep_queries::params::Q6Params::new(1995, 3, 30)?);
//! assert_eq!(q6_95.run(Engine::Typer), q6_95.run(Engine::Volcano));
//! # Ok::<(), dbep_queries::params::ParamError>(())
//! ```

use dbep_queries::params::Params;
use dbep_queries::result::QueryResult;
use dbep_queries::{plan, Engine, ExecCfg, QueryId, QueryPlan};
use dbep_storage::Database;
use std::sync::Arc;

/// A connection-like handle owning a shared database and a default
/// execution configuration.
///
/// Cloning is cheap (the database is behind an [`Arc`]); sessions and
/// the prepared queries they hand out are `Send + Sync`, so one session
/// can serve concurrent callers.
#[derive(Clone)]
pub struct Session {
    db: Arc<Database>,
    cfg: ExecCfg<'static>,
}

impl Session {
    /// Open a session with the default [`ExecCfg`] (single thread,
    /// 1K vectors, scalar primitives).
    pub fn new(db: impl Into<Arc<Database>>) -> Self {
        Session::with_cfg(db, ExecCfg::default())
    }

    /// Open a session with an explicit default configuration; per-call
    /// overrides remain possible via [`PreparedQuery::run_with`].
    pub fn with_cfg(db: impl Into<Arc<Database>>, cfg: ExecCfg<'static>) -> Self {
        Session { db: db.into(), cfg }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session's default execution configuration.
    pub fn cfg(&self) -> &ExecCfg<'static> {
        &self.cfg
    }

    /// Prepare `query` with the paper's default parameters (§3.3).
    pub fn prepare(&self, query: QueryId) -> PreparedQuery {
        self.prepare_params(Params::default_for(query))
    }

    /// Prepare the query bound by `params`.
    ///
    /// Parameters are validated and normalized when constructed (see
    /// [`dbep_queries::params`]); preparation resolves the plan once so
    /// every subsequent run is dispatch + execute.
    pub fn prepare_params(&self, params: impl Into<Params>) -> PreparedQuery {
        let params = params.into();
        PreparedQuery {
            db: Arc::clone(&self.db),
            cfg: self.cfg,
            plan: plan(params.query()),
            params,
        }
    }
}

/// A validated, bound, re-runnable query: plan resolved, parameters
/// normalized, database pinned.
///
/// `Sync` by construction — one prepared query may be run from many
/// threads concurrently (each run is read-only over the database and
/// allocates its own execution state).
pub struct PreparedQuery {
    db: Arc<Database>,
    cfg: ExecCfg<'static>,
    plan: &'static dyn QueryPlan,
    params: Params,
}

impl PreparedQuery {
    /// The query this plan executes.
    pub fn query(&self) -> QueryId {
        self.plan.id()
    }

    /// The bound parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Tuples scanned per execution (the §3.4 normalization
    /// denominator).
    pub fn tuples_scanned(&self) -> usize {
        self.plan.tuples_scanned(&self.db)
    }

    /// Execute on `engine` with the session's default configuration.
    pub fn run(&self, engine: Engine) -> QueryResult {
        self.run_with(engine, &self.cfg)
    }

    /// Execute on `engine` with a per-call configuration override
    /// (thread count, vector size, SIMD policy, hash function,
    /// throttle).
    pub fn run_with(&self, engine: Engine, cfg: &ExecCfg) -> QueryResult {
        self.plan.run(engine, &self.db, cfg, &self.params)
    }
}

// Both handles must stay shareable across serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<PreparedQuery>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_queries::params::{Q18Params, Q6Params};
    use dbep_queries::run;

    fn tiny_db() -> Arc<Database> {
        static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
        Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::tpch::generate(0.01, 42))))
    }

    #[test]
    fn prepare_defaults_match_free_run() {
        let session = Session::new(tiny_db());
        for q in [QueryId::Q1, QueryId::Q6, QueryId::Q12] {
            let prepared = session.prepare(q);
            for engine in Engine::ALL {
                assert_eq!(
                    prepared.run(engine),
                    run(engine, q, session.db(), session.cfg()),
                    "{} on {engine:?}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn prepared_query_is_rerunnable_and_overridable() {
        let session = Session::new(tiny_db());
        let q6 = session.prepare_params(Q6Params::new(1995, 3, 30).unwrap());
        let first = q6.run(Engine::Typer);
        assert_eq!(first, q6.run(Engine::Typer), "same binding, same result");
        let threaded = q6.run_with(Engine::Typer, &ExecCfg::with_threads(4));
        assert_eq!(first, threaded, "cfg override must not change results");
        // The bound instance differs from the paper's default.
        assert_ne!(first, session.prepare(QueryId::Q6).run(Engine::Typer));
    }

    #[test]
    fn prepared_query_runs_concurrently() {
        let session = Session::new(tiny_db());
        let q18 = session.prepare_params(Q18Params::new(280).unwrap());
        let reference = q18.run(Engine::Typer);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for engine in Engine::ALL {
                        assert_eq!(q18.run(engine), reference);
                    }
                });
            }
        });
    }
}
