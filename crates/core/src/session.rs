//! Prepare-once / run-many execution facade over a shared scheduler.
//!
//! Production analytical traffic is dominated by repeated parameterized
//! templates fired by many concurrent clients, so the serving shape is:
//! open a [`Session`] over a shared database, [`Session::prepare`] a
//! query once (validating and binding its substitution parameters),
//! then run the resulting [`PreparedQuery`] as many times as needed —
//! from as many threads as needed — with per-call engine and
//! [`ExecCfg`] overrides.
//!
//! Every session owns an `Arc<`[`Scheduler`]`>`: a **persistent pool of
//! `ExecCfg.threads` workers** that executes the morsels of *all* the
//! session's concurrently running queries (§6.1 morsel-driven
//! parallelism, extended across queries). Client threads submit and
//! wait; worker count stays fixed no matter how many clients fire — the
//! spawn-per-query behavior of the standalone `dbep_queries::run` path
//! is available via [`Session::without_pool`] for comparison.
//!
//! With default parameters a prepared query reproduces the paper's
//! workload instance byte-for-byte; with bound [`Params`] it runs any
//! member of the query's substitution family.
//!
//! ```
//! use dbep_core::prelude::*;
//!
//! let db = dbep_datagen::tpch::generate(0.01, 42);
//! let session = Session::new(db);
//! let q6 = session.prepare(QueryId::Q6);
//! let typer = q6.run(Engine::Typer);
//! let tw = q6.run(Engine::Tectorwise);
//! assert_eq!(typer, tw);
//!
//! // Bind a different workload instance of the same template.
//! let q6_95 = session.prepare_params(dbep_queries::params::Q6Params::new(1995, 3, 30)?);
//! assert_eq!(q6_95.run(Engine::Typer), q6_95.run(Engine::Volcano));
//! # Ok::<(), dbep_queries::params::ParamError>(())
//! ```

use crate::metrics::EngineMetrics;
use crate::plan_cache::{CachedPlan, Decision, PlanCache, PlanCacheStats};
use dbep_obs::{fingerprint64, QueryLog, QueryLogRecord, QueryTrace, TraceSink};
use dbep_queries::params::Params;
use dbep_queries::result::QueryResult;
use dbep_queries::{Engine, ExecCfg, QueryId, QueryPlan};
use dbep_runtime::counters::StageCounters;
use dbep_scheduler::{QueryRun, RunStats, Scheduler, StageTrace, DEFAULT_PRIORITY};
use dbep_storage::Database;
use std::sync::Arc;
use std::time::Instant;

/// The canonical parameter-binding fingerprint: the one identity the
/// query log, the wire protocol and log-mining tools all agree on.
/// Stable across processes for a given binding (FNV-1a over the
/// binding's debug rendering, whose shape is pinned by the typed
/// [`Params`] structs).
pub fn params_fingerprint(params: &Params) -> u64 {
    fingerprint64(format!("{params:?}").as_bytes())
}

/// A connection-like handle owning a shared database, a default
/// execution configuration, and the scheduler pool queries execute on.
///
/// Cloning is cheap (database and scheduler are behind [`Arc`]s);
/// sessions and the prepared queries they hand out are `Send + Sync`,
/// so one session can serve concurrent callers — their queries
/// interleave at morsel granularity on the fixed worker pool.
#[derive(Clone)]
pub struct Session {
    db: Arc<Database>,
    cfg: ExecCfg<'static>,
    sched: Option<Arc<Scheduler>>,
    plan_cache: Arc<PlanCache>,
    metrics: Option<Arc<EngineMetrics>>,
    trace_sink: Option<Arc<TraceSink>>,
    query_log: Option<Arc<QueryLog>>,
}

impl Session {
    /// Open a session with the default [`ExecCfg`] (single thread,
    /// 1K vectors, scalar primitives) and a pool of one worker.
    pub fn new(db: impl Into<Arc<Database>>) -> Self {
        Session::with_cfg(db, ExecCfg::default())
    }

    /// Open a session with an explicit default configuration; the
    /// scheduler pool is sized to `cfg.threads` workers. Per-call
    /// overrides remain possible via [`PreparedQuery::run_with`]
    /// (`threads` then caps the query's share of the pool).
    pub fn with_cfg(db: impl Into<Arc<Database>>, cfg: ExecCfg<'static>) -> Self {
        let sched = Arc::new(Scheduler::new(cfg.threads));
        Session::with_scheduler(db, cfg, sched)
    }

    /// Open a session on an existing scheduler pool — several sessions
    /// (e.g. over different databases) can share one set of workers.
    pub fn with_scheduler(
        db: impl Into<Arc<Database>>,
        cfg: ExecCfg<'static>,
        sched: Arc<Scheduler>,
    ) -> Self {
        Session {
            db: db.into(),
            cfg,
            sched: Some(sched),
            plan_cache: Arc::new(PlanCache::new()),
            metrics: None,
            trace_sink: None,
            query_log: None,
        }
    }

    /// Open a session **without** a scheduler pool: every run falls
    /// back to spawn-per-query scoped threads (the pre-scheduler
    /// behavior) — the baseline the `serve` benchmark compares against.
    pub fn without_pool(db: impl Into<Arc<Database>>, cfg: ExecCfg<'static>) -> Self {
        Session {
            db: db.into(),
            cfg,
            sched: None,
            plan_cache: Arc::new(PlanCache::new()),
            metrics: None,
            trace_sink: None,
            query_log: None,
        }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session's default execution configuration.
    pub fn cfg(&self) -> &ExecCfg<'static> {
        &self.cfg
    }

    /// The shared scheduler pool (`None` for a
    /// [`Session::without_pool`] session).
    pub fn scheduler(&self) -> Option<&Arc<Scheduler>> {
        self.sched.as_ref()
    }

    /// Attach a metrics bundle: every prepare and every run through
    /// this session (and its clones / prepared queries) updates it.
    pub fn with_metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a span-trace sink: every run records a query span plus
    /// the stage and morsel spans the plans emit, exportable as Chrome
    /// `trace_event` JSON via [`dbep_obs::chrome_trace`].
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Attach a structured query log: every run appends one JSONL
    /// [`QueryLogRecord`] (query, engine, parameter fingerprint, stage
    /// timings, scheduler stats, cache fact) at completion.
    pub fn with_query_log(mut self, log: Arc<QueryLog>) -> Self {
        self.query_log = Some(log);
        self
    }

    /// The attached metrics bundle, if any.
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// The attached span-trace sink, if any.
    pub fn trace_sink(&self) -> Option<&Arc<TraceSink>> {
        self.trace_sink.as_ref()
    }

    /// The attached query log, if any.
    pub fn query_log(&self) -> Option<&Arc<QueryLog>> {
        self.query_log.as_ref()
    }

    /// Prepare `query` with the paper's default parameters (§3.3).
    pub fn prepare(&self, query: QueryId) -> PreparedQuery {
        self.prepare_params(Params::default_for(query))
    }

    /// Prepare the query bound by `params`.
    ///
    /// Parameters are validated and normalized when constructed (see
    /// [`dbep_queries::params`]); preparation resolves the plan once so
    /// every subsequent run is admission + dispatch + execute.
    ///
    /// Preparation is memoized per session: re-preparing an
    /// already-seen `(query, params)` binding is a plan-cache hit that
    /// reuses the resolved plan *and* any engine choices
    /// `Engine::Adaptive` has already learned for it (see
    /// [`crate::plan_cache`]). [`PreparedQuery::cache_hit`] and
    /// [`PreparedQuery::planning_ns`] report what happened.
    pub fn prepare_params(&self, params: impl Into<Params>) -> PreparedQuery {
        let params = params.into();
        let t0 = Instant::now();
        let (cached, cache_hit) = self.plan_cache.lookup(&params);
        let planning_ns = t0.elapsed().as_nanos() as u64;
        if let Some(m) = &self.metrics {
            if cache_hit {
                m.plan_cache_hits.inc();
            } else {
                m.plan_cache_misses.inc();
            }
        }
        PreparedQuery {
            db: Arc::clone(&self.db),
            cfg: self.cfg,
            cached,
            cache_hit,
            planning_ns,
            params,
            sched: self.sched.clone(),
            priority: DEFAULT_PRIORITY,
            metrics: self.metrics.clone(),
            trace_sink: self.trace_sink.clone(),
            query_log: self.query_log.clone(),
        }
    }

    /// Plan-cache effectiveness counters (shared by all clones of this
    /// session).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }
}

/// A validated, bound, re-runnable query: plan resolved, parameters
/// normalized, database pinned, scheduler attached.
///
/// `Sync` by construction — one prepared query may be run from many
/// threads concurrently (each run is read-only over the database,
/// allocates its own execution state, and registers separately with
/// the scheduler's admission gate).
pub struct PreparedQuery {
    db: Arc<Database>,
    cfg: ExecCfg<'static>,
    cached: Arc<CachedPlan>,
    cache_hit: bool,
    planning_ns: u64,
    params: Params,
    sched: Option<Arc<Scheduler>>,
    priority: usize,
    metrics: Option<Arc<EngineMetrics>>,
    trace_sink: Option<Arc<TraceSink>>,
    query_log: Option<Arc<QueryLog>>,
}

impl PreparedQuery {
    fn plan(&self) -> &'static dyn QueryPlan {
        self.cached.plan()
    }

    /// The query this plan executes.
    pub fn query(&self) -> QueryId {
        self.plan().id()
    }

    /// True if preparation was answered from the session's plan cache.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Wall time spent in preparation (plan-cache lookup plus, on a
    /// miss, plan resolution and insertion). ~0 on hits.
    pub fn planning_ns(&self) -> u64 {
        self.planning_ns
    }

    /// The per-stage engine assignment `Engine::Adaptive` has learned
    /// for this binding, with the measured pure-engine fallback;
    /// `None` while still exploring (fewer than two adaptive runs).
    pub fn adaptive_choices(&self) -> Option<(Vec<Engine>, Engine)> {
        self.cached.adaptive().learned()
    }

    /// The bound parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Scheduling priority of this query's runs: picks per round-robin
    /// cycle of the shared pool (clamped to
    /// `1..=`[`dbep_scheduler::MAX_PRIORITY`]). Default 1.
    pub fn with_priority(mut self, priority: usize) -> Self {
        self.priority = priority;
        self
    }

    /// The configured scheduling priority.
    pub fn priority(&self) -> usize {
        self.priority
    }

    /// Tuples scanned per execution (the §3.4 normalization
    /// denominator).
    pub fn tuples_scanned(&self) -> usize {
        self.plan().tuples_scanned(&self.db)
    }

    /// Execute on `engine` with the session's default configuration.
    pub fn run(&self, engine: Engine) -> QueryResult {
        self.run_with(engine, &self.cfg)
    }

    /// Execute on `engine` with a per-call configuration override
    /// (thread count, vector size, SIMD policy, hash function,
    /// throttle). With a pooled session the run first passes the
    /// admission gate, then submits every pipeline to the shared
    /// workers; `cfg.threads` caps this query's concurrent workers.
    pub fn run_with(&self, engine: Engine, cfg: &ExecCfg) -> QueryResult {
        self.run_traced(engine, cfg).0
    }

    /// As [`PreparedQuery::run`], also returning the scheduler-side
    /// [`RunStats`] of this execution (zeros for a pool-less session).
    pub fn run_with_stats(&self, engine: Engine) -> (QueryResult, RunStats) {
        self.run_traced(engine, &self.cfg)
    }

    /// Non-blocking variant of [`PreparedQuery::run_with_stats`]: when
    /// the session's scheduler admission gate is saturated, returns
    /// `None` immediately instead of parking the caller. The serving
    /// front door turns that `None` into a wire-level RETRY frame.
    /// Pool-less sessions have no admission gate and always run.
    pub fn try_run_with_stats(&self, engine: Engine) -> Option<(QueryResult, RunStats)> {
        let admitted = match &self.sched {
            Some(sched) => Some(sched.try_begin_query(self.priority)?),
            None => None,
        };
        Some(self.run_admitted(engine, &self.cfg, admitted))
    }

    /// The canonical fingerprint of this query's parameter binding —
    /// the same value the query log records, so wire responses and log
    /// records join on it. See [`params_fingerprint`].
    pub fn params_fp(&self) -> u64 {
        params_fingerprint(&self.params)
    }

    /// Blocking-admission entry: acquires a slot (waiting at the gate
    /// if needed), then runs through the instrumented choke point.
    fn run_traced(&self, engine: Engine, cfg: &ExecCfg) -> (QueryResult, RunStats) {
        let admitted = self.sched.as_ref().map(|s| s.begin_query(self.priority));
        self.run_admitted(engine, cfg, admitted)
    }

    /// The single completion choke point every run passes through: it
    /// attaches the session's observability instruments around the
    /// dispatch, then folds the outcome into the metrics bundle and the
    /// structured query log. `admitted` is the already-acquired
    /// admission slot (`None` for pool-less sessions).
    fn run_admitted(
        &self,
        engine: Engine,
        cfg: &ExecCfg,
        admitted: Option<QueryRun>,
    ) -> (QueryResult, RunStats) {
        if let Some(m) = &self.metrics {
            m.queries_started.inc();
        }
        // The query log wants per-stage wall times, so a log attaches a
        // stage trace when the caller didn't; adaptive exploration then
        // reuses it instead of creating its own (see `dispatch`).
        let own_stage_trace = (self.query_log.is_some() && cfg.stage_trace.is_none())
            .then(|| StageTrace::new(self.plan().stages().len()));
        let span_trace = self
            .trace_sink
            .as_ref()
            .map(|sink| QueryTrace::new(sink, self.query().ordinal(), engine.ordinal()));
        let t0 = Instant::now();
        let (result, stats) = {
            let _query_span = span_trace.as_ref().map(|t| t.query_span());
            let cfg = ExecCfg {
                trace: span_trace.as_ref(),
                stage_trace: own_stage_trace.as_ref().or(cfg.stage_trace),
                ..*cfg
            };
            match &admitted {
                Some(run) => {
                    let cfg = ExecCfg {
                        sched: Some(run),
                        ..cfg
                    };
                    let result = self.dispatch(engine, &cfg);
                    (result, run.stats())
                }
                None => (self.dispatch(engine, &cfg), RunStats::default()),
            }
        };
        let latency_ns = t0.elapsed().as_nanos() as u64;
        if let Some(m) = &self.metrics {
            m.observe_run(latency_ns, &stats, self.sched.as_deref());
        }
        if let Some(log) = &self.query_log {
            log.append(QueryLogRecord {
                seq: 0,     // assigned by the log
                unix_ms: 0, // stamped by the log
                query: self.query().name().to_string(),
                engine: engine.name().to_string(),
                // Wire fields stay empty for in-process runs; the
                // network front-end logs its own records with them set.
                client: String::new(),
                wire_ns: 0,
                params_fp: params_fingerprint(&self.params),
                cache_hit: self.cache_hit,
                planning_ns: self.planning_ns,
                latency_ns,
                rows: result.len() as u64,
                morsels_executed: stats.morsels_executed(),
                queue_wait_ns: stats.queue_wait_ns(),
                admission_wait_ns: stats.admission_wait_ns(),
                tasks: stats.tasks,
                steals: stats.steals,
                bytes_scanned: stats.bytes_scanned,
                stage_ns: own_stage_trace
                    .as_ref()
                    .map(StageTrace::snapshot)
                    .unwrap_or_default(),
            });
        }
        (result, stats)
    }

    /// Route one execution. Pure engines go straight to the plan;
    /// `Engine::Adaptive` consults the cached [`AdaptiveState`]
    /// (explore → measure a pure candidate under a stage trace; learned
    /// → run the per-stage assignment; in-flight elsewhere → static
    /// heuristic via the plan's own `Adaptive` arm).
    ///
    /// [`AdaptiveState`]: crate::plan_cache::AdaptiveState
    fn dispatch(&self, engine: Engine, cfg: &ExecCfg) -> QueryResult {
        let plan = self.plan();
        if engine != Engine::Adaptive {
            return plan.run(engine, &self.db, cfg, &self.params);
        }
        match self.cached.adaptive().decide() {
            Decision::Explore(candidate) => {
                // Reuse an already-attached stage trace (e.g. the query
                // log's) so one instrumented run feeds both consumers.
                let own = cfg
                    .stage_trace
                    .is_none()
                    .then(|| StageTrace::new(plan.stages().len()));
                let trace = cfg
                    .stage_trace
                    .or(own.as_ref())
                    .expect("a stage trace is attached");
                // Exploration runs also read hardware counters (when
                // the kernel permits): whole-run IPC becomes tiebreak
                // evidence for the learned engine choice.
                let counters = StageCounters::new(plan.stages().len());
                let cfg = ExecCfg {
                    stage_trace: Some(trace),
                    stage_counters: Some(&counters),
                    ..*cfg
                };
                let result = plan.run(candidate, &self.db, &cfg, &self.params);
                self.cached
                    .adaptive()
                    .record_with_ipc(candidate, trace.snapshot(), counters.total().ipc());
                result
            }
            Decision::Use { choices, pure } => plan
                .run_mix(&self.db, cfg, &self.params, &choices)
                .unwrap_or_else(|| plan.run(pure, &self.db, cfg, &self.params)),
            Decision::Heuristic => plan.run(Engine::Adaptive, &self.db, cfg, &self.params),
        }
    }
}

// Both handles must stay shareable across serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<PreparedQuery>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use dbep_queries::params::{Q18Params, Q6Params};
    use dbep_queries::run;

    fn tiny_db() -> Arc<Database> {
        static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
        Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::tpch::generate(0.01, 42))))
    }

    #[test]
    fn prepare_defaults_match_free_run() {
        let session = Session::new(tiny_db());
        for q in [QueryId::Q1, QueryId::Q6, QueryId::Q12] {
            let prepared = session.prepare(q);
            for engine in Engine::ALL {
                assert_eq!(
                    prepared.run(engine),
                    run(engine, q, session.db(), session.cfg()),
                    "{} on {engine:?}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn prepared_query_is_rerunnable_and_overridable() {
        let session = Session::new(tiny_db());
        let q6 = session.prepare_params(Q6Params::new(1995, 3, 30).unwrap());
        let first = q6.run(Engine::Typer);
        assert_eq!(first, q6.run(Engine::Typer), "same binding, same result");
        let threaded = q6.run_with(Engine::Typer, &ExecCfg::with_threads(4));
        assert_eq!(first, threaded, "cfg override must not change results");
        // The bound instance differs from the paper's default.
        assert_ne!(first, session.prepare(QueryId::Q6).run(Engine::Typer));
    }

    #[test]
    fn prepared_query_runs_concurrently() {
        let session = Session::with_cfg(tiny_db(), ExecCfg::with_threads(2));
        let q18 = session.prepare_params(Q18Params::new(280).unwrap());
        let reference = q18.run(Engine::Typer);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for engine in Engine::ALL {
                        assert_eq!(q18.run(engine), reference);
                    }
                });
            }
        });
    }

    #[test]
    fn pooled_and_poolless_sessions_agree() {
        let pooled = Session::with_cfg(tiny_db(), ExecCfg::with_threads(3));
        let spawning = Session::without_pool(tiny_db(), ExecCfg::with_threads(3));
        assert!(pooled.scheduler().is_some());
        assert!(spawning.scheduler().is_none());
        for q in [QueryId::Q3, QueryId::Ssb1_1] {
            // SSB queries need the SSB database; skip them on TPC-H.
            if QueryId::SSB.contains(&q) {
                continue;
            }
            for engine in Engine::ALL {
                assert_eq!(pooled.prepare(q).run(engine), spawning.prepare(q).run(engine));
            }
        }
    }

    #[test]
    fn run_with_stats_reports_scheduler_counters() {
        let session = Session::with_cfg(tiny_db(), ExecCfg::with_threads(2));
        let q6 = session.prepare(QueryId::Q6).with_priority(3);
        assert_eq!(q6.priority(), 3);
        let (result, stats) = q6.run_with_stats(Engine::Typer);
        assert_eq!(result.len(), 1);
        assert!(stats.tasks >= 1, "Q6 submits at least its scan pipeline");
        assert!(stats.morsels >= 1);
        // Pool-less sessions report zeros.
        let spawning = Session::without_pool(tiny_db(), ExecCfg::default());
        let (_, stats) = spawning.prepare(QueryId::Q6).run_with_stats(Engine::Typer);
        assert_eq!(stats, RunStats::default());
    }

    #[test]
    fn try_run_refuses_only_when_gate_is_full() {
        // A pool whose gate admits exactly one query: hold the slot,
        // then the non-blocking path must refuse instead of parking.
        let sched = Arc::new(Scheduler::with_limits(1, 1));
        let session = Session::with_scheduler(tiny_db(), ExecCfg::default(), Arc::clone(&sched));
        let q6 = session.prepare(QueryId::Q6);
        let held = sched.begin_query(DEFAULT_PRIORITY);
        assert!(q6.try_run_with_stats(Engine::Typer).is_none(), "gate full");
        drop(held);
        let (result, _) = q6.try_run_with_stats(Engine::Typer).expect("gate free");
        assert_eq!(result, q6.run(Engine::Typer));
        // Pool-less sessions have no gate: always run.
        let spawning = Session::without_pool(tiny_db(), ExecCfg::default());
        assert!(spawning
            .prepare(QueryId::Q6)
            .try_run_with_stats(Engine::Typer)
            .is_some());
    }

    #[test]
    fn params_fp_matches_the_query_log_identity() {
        let session = Session::new(tiny_db());
        let a = session.prepare_params(Q6Params::new(1995, 3, 30).unwrap());
        let b = session.prepare_params(Q6Params::new(1995, 3, 30).unwrap());
        assert_eq!(a.params_fp(), b.params_fp(), "same binding, same identity");
        assert_ne!(a.params_fp(), session.prepare(QueryId::Q6).params_fp());
        assert_eq!(a.params_fp(), params_fingerprint(a.params()));
    }

    #[test]
    fn sessions_can_share_one_scheduler() {
        let sched = Arc::new(Scheduler::new(2));
        let a = Session::with_scheduler(tiny_db(), ExecCfg::with_threads(2), Arc::clone(&sched));
        let b = Session::with_scheduler(tiny_db(), ExecCfg::with_threads(2), Arc::clone(&sched));
        assert_eq!(
            a.prepare(QueryId::Q6).run(Engine::Typer),
            b.prepare(QueryId::Q6).run(Engine::Typer)
        );
        assert_eq!(sched.live_workers(), 2, "shared pool stays at its fixed size");
    }
}
