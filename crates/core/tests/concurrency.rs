//! Inter-query concurrency: all 36 (engine, query) pairs fired from 8
//! client threads through one shared `Session`/`Scheduler`, checked
//! against the single-threaded oracle, with the worker count pinned to
//! the pool size throughout — plus shutdown tests proving no worker
//! threads outlive their scheduler.

use dbep_core::prelude::*;
use dbep_core::scheduler::Scheduler;
use dbep_core::Session;
use std::sync::Arc;

const SF: f64 = 0.01;
const SEED: u64 = 42;
const CLIENTS: usize = 8;
const POOL_WORKERS: usize = 2;

/// Every (query, engine) pair of the study, TPC-H and SSB: 12 × 3 = 36.
fn all_pairs() -> Vec<(QueryId, Engine)> {
    QueryId::ALL
        .into_iter()
        .flat_map(|q| Engine::ALL.into_iter().map(move |e| (q, e)))
        .collect()
}

#[test]
fn all_36_pairs_from_8_clients_match_the_oracle() {
    let tpch = Arc::new(dbep_datagen::tpch::generate(SF, SEED));
    let ssb = Arc::new(dbep_datagen::ssb::generate(SF, SEED));

    // Single-threaded oracle: the free-run path, no pool, default cfg.
    let oracle_cfg = ExecCfg::default();
    let oracle: Vec<QueryResult> = all_pairs()
        .into_iter()
        .map(|(q, e)| {
            let db: &Database = if QueryId::SSB.contains(&q) { &ssb } else { &tpch };
            run(e, q, db, &oracle_cfg)
        })
        .collect();

    // One shared pool under two sessions (TPC-H + SSB databases).
    let sched = Arc::new(Scheduler::new(POOL_WORKERS));
    let cfg = ExecCfg::with_threads(POOL_WORKERS);
    let tpch_session = Session::with_scheduler(Arc::clone(&tpch), cfg, Arc::clone(&sched));
    let ssb_session = Session::with_scheduler(Arc::clone(&ssb), cfg, Arc::clone(&sched));
    let prepared: Vec<_> = all_pairs()
        .iter()
        .map(|(q, _)| {
            if QueryId::SSB.contains(q) {
                ssb_session.prepare(*q)
            } else {
                tpch_session.prepare(*q)
            }
        })
        .collect();

    let pairs = all_pairs();
    let live = sched.live_counter();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (prepared, pairs, oracle, sched, live) = (&prepared, &pairs, &oracle, &sched, &live);
            s.spawn(move || {
                // Release (the CI stress configuration): every client
                // walks the full 36-pair mix from a different offset, so
                // at any moment distinct queries are in flight. Debug:
                // the clients stride the mix between them (still all 36
                // pairs, still concurrent) to keep `cargo test` quick.
                let indices: Vec<usize> = if cfg!(debug_assertions) {
                    (client..pairs.len()).step_by(CLIENTS).collect()
                } else {
                    (0..pairs.len()).map(|k| (k + client * 5) % pairs.len()).collect()
                };
                for i in indices {
                    let (q, e) = pairs[i];
                    let (result, stats) = prepared[i].run_with_stats(e);
                    assert_eq!(
                        result,
                        oracle[i],
                        "{}/{} diverged under concurrency",
                        q.name(),
                        e.name()
                    );
                    assert!(
                        stats.morsels > 0,
                        "{}/{} ran no morsels on the pool",
                        q.name(),
                        e.name()
                    );
                    // Worker count stays fixed at the pool size no matter
                    // how many clients are firing.
                    assert_eq!(
                        live.load(std::sync::atomic::Ordering::SeqCst),
                        POOL_WORKERS,
                        "worker threads escaped the pool bound"
                    );
                    assert_eq!(sched.live_workers(), POOL_WORKERS);
                }
            });
        }
    });
}

#[test]
fn session_drop_leaks_no_worker_threads() {
    let db = Arc::new(dbep_datagen::tpch::generate(SF, SEED));
    let live = {
        let session = Session::with_cfg(Arc::clone(&db), ExecCfg::with_threads(4));
        let sched = session.scheduler().expect("pooled session").clone();
        assert_eq!(sched.live_workers(), 4);
        let q6 = session.prepare(QueryId::Q6);
        assert_eq!(q6.run(Engine::Typer), q6.run(Engine::Tectorwise));
        assert_eq!(sched.live_workers(), 4, "running queries must not grow the pool");
        let live = sched.live_counter();
        drop(q6);
        drop(session);
        drop(sched);
        live
    };
    assert_eq!(
        live.load(std::sync::atomic::Ordering::SeqCst),
        0,
        "worker threads leaked after the session (and its scheduler) dropped"
    );
}

#[test]
fn cloned_sessions_share_one_pool() {
    let db = Arc::new(dbep_datagen::tpch::generate(SF, SEED));
    let session = Session::with_cfg(Arc::clone(&db), ExecCfg::with_threads(2));
    let clone = session.clone();
    assert!(Arc::ptr_eq(
        session.scheduler().expect("pooled"),
        clone.scheduler().expect("pooled")
    ));
    let reference = session.prepare(QueryId::Q12).run(Engine::Volcano);
    std::thread::scope(|s| {
        for session in [&session, &clone] {
            s.spawn(|| {
                assert_eq!(session.prepare(QueryId::Q12).run(Engine::Volcano), reference);
            });
        }
    });
    assert_eq!(session.scheduler().expect("pooled").live_workers(), 2);
}
