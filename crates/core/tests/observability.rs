//! Session-level observability integration: span traces nest correctly
//! and export as Chrome `trace_event` JSON, the structured query log
//! round-trips and *replays* (a record names everything needed to
//! re-prepare and re-run the execution it describes), and the metrics
//! bundle agrees with what actually ran.

use dbep_core::prelude::*;
use dbep_obs::{chrome_trace, QueryLogRecord, SpanEvent, SpanKind};
use std::io::Write;
use std::sync::{Arc, Mutex};

const SF: f64 = 0.01;
const SEED: u64 = 42;

fn tpch() -> Arc<Database> {
    static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::tpch::generate(SF, SEED))))
}

/// Stage count a query's plan declares, via the export name table.
fn stage_count(q: QueryId) -> usize {
    dbep_queries::trace_names().queries[q.ordinal() as usize]
        .stages
        .len()
}

#[test]
fn trace_spans_nest_and_export_as_chrome_json() {
    let sink = Arc::new(TraceSink::new(1 << 14));
    let session = Session::with_cfg(tpch(), ExecCfg::with_threads(2)).with_trace(Arc::clone(&sink));
    let runs = [
        (QueryId::Q1, Engine::Typer),
        (QueryId::Q1, Engine::Tectorwise),
        (QueryId::Q6, Engine::Typer),
        (QueryId::Q6, Engine::Tectorwise),
    ];
    for (q, e) in runs {
        session.prepare(q).run(e);
    }
    let events = sink.snapshot();
    assert_eq!(sink.dropped(), 0, "ring sized to hold every span");

    // One query span per run, and every other span nests inside its
    // run's query span (by run_seq and by time containment).
    let query_spans: Vec<&SpanEvent> = events.iter().filter(|e| e.kind == SpanKind::Query).collect();
    assert_eq!(query_spans.len(), runs.len());
    for ev in &events {
        let parent = query_spans
            .iter()
            .find(|q| q.run_seq == ev.run_seq)
            .expect("every span belongs to a run with a query span");
        assert!(ev.t0_ns >= parent.t0_ns, "span starts inside its query span");
        assert!(
            ev.t0_ns + ev.dur_ns <= parent.t0_ns + parent.dur_ns,
            "span ends inside its query span"
        );
    }
    // Stage ids stay within the plan's declared stages; morsels carry
    // the stage they executed under and their batch size.
    for (i, (q, _)) in runs.iter().enumerate() {
        let stages = stage_count(*q) as u16;
        let run_seq = query_spans[i].run_seq;
        let mut saw_stage = false;
        let mut saw_morsel = false;
        for ev in events.iter().filter(|e| e.run_seq == run_seq) {
            match ev.kind {
                SpanKind::Query => assert_eq!(ev.query, q.ordinal()),
                SpanKind::Stage => {
                    saw_stage = true;
                    assert!(ev.stage < stages, "stage id within plan bounds");
                }
                SpanKind::Morsel => {
                    saw_morsel = true;
                    assert!(ev.stage < stages);
                    assert!(ev.rows > 0, "morsel spans carry their batch size");
                }
            }
        }
        assert!(saw_stage, "{} emitted stage spans", q.name());
        assert!(saw_morsel, "{} emitted morsel spans", q.name());
    }

    let doc = chrome_trace(&events, &dbep_queries::trace_names());
    assert!(doc.starts_with("{\"displayTimeUnit\""));
    assert_eq!(
        doc.matches('{').count(),
        doc.matches('}').count(),
        "balanced braces"
    );
    for needle in [
        "\"cat\": \"query\"",
        "\"cat\": \"stage\"",
        "\"cat\": \"morsel\"",
        "\"ph\": \"X\"",
        "\"name\": \"q1\"",
        "\"name\": \"q6\"",
        "\"engine\": \"typer\"",
        "\"engine\": \"tectorwise\"",
    ] {
        assert!(doc.contains(needle), "{needle} missing from export");
    }
}

/// A shared `Vec<u8>` sink observable while the log is live.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn query_log_roundtrips_and_replays() {
    let buf = SharedBuf::default();
    let log = Arc::new(QueryLog::new(Box::new(buf.clone())));
    let session = Session::with_cfg(tpch(), ExecCfg::with_threads(2)).with_query_log(Arc::clone(&log));
    let mut expected = Vec::new();
    for q in [QueryId::Q1, QueryId::Q3, QueryId::Q6] {
        let prepared = session.prepare(q);
        for e in [Engine::Typer, Engine::Tectorwise, Engine::Adaptive] {
            expected.push((q, e, prepared.run(e)));
        }
    }
    assert_eq!(log.len(), expected.len() as u64);

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let records: Vec<QueryLogRecord> = text
        .lines()
        .map(|l| QueryLogRecord::parse(l).expect("every log line parses"))
        .collect();
    assert_eq!(records.len(), expected.len());

    let replay = Session::new(tpch());
    for (i, (rec, (q, e, result))) in records.iter().zip(&expected).enumerate() {
        assert_eq!(rec.seq, i as u64, "seqs follow run order");
        assert_eq!(rec.query, q.name());
        assert_eq!(rec.engine, e.name());
        assert_eq!(rec.rows, result.len() as u64);
        assert_eq!(
            rec.stage_ns.len(),
            stage_count(*q),
            "the log attaches a stage trace covering every declared stage"
        );
        assert!(rec.morsels_executed >= 1, "pooled runs execute morsels");
        // A record is replayable: its query and engine names resolve,
        // and re-running the binding reproduces the logged execution.
        let qid = QueryId::from_name(&rec.query).expect("logged query name resolves");
        let engine: Engine = rec.engine.parse().expect("logged engine name resolves");
        let rerun = replay.prepare(qid).run(engine);
        assert_eq!(
            &rerun, result,
            "replay of {} on {} reproduces the run",
            rec.query, rec.engine
        );
    }
    // The parameter fingerprint identifies the binding: stable across
    // runs of one prepared query, distinct across queries.
    for pair in records.chunks(3) {
        assert!(pair.windows(2).all(|w| w[0].params_fp == w[1].params_fp));
    }
    assert_ne!(records[0].params_fp, records[3].params_fp);
    // Rendering a parsed record re-produces a parseable line (the
    // format is its own fixed point).
    let rendered = records[4].to_json_line();
    assert_eq!(QueryLogRecord::parse(&rendered), Some(records[4].clone()));
}

#[test]
fn metrics_bundle_agrees_with_runs_and_plan_cache() {
    let metrics = EngineMetrics::new();
    let session = Session::with_cfg(tpch(), ExecCfg::with_threads(2)).with_metrics(Arc::clone(&metrics));
    const REPS: u64 = 3;
    let mut runs = 0;
    for q in [QueryId::Q1, QueryId::Q6] {
        let prepared = session.prepare(q);
        for _ in 0..REPS {
            prepared.run(Engine::Typer);
            runs += 1;
        }
    }
    let hit = session.prepare(QueryId::Q1);
    assert!(hit.cache_hit(), "re-prepare of a seen binding hits the cache");

    assert_eq!(metrics.queries_started.get(), runs);
    assert_eq!(metrics.queries_completed.get(), runs);
    assert_eq!(metrics.query_latency_ns.count(), runs);
    assert_eq!(metrics.queue_wait_ns.count(), runs);
    assert!(
        metrics.morsels_executed_total.get() >= runs,
        "every pooled run executes morsels"
    );
    assert!(metrics.bytes_scanned_total.get() > 0);

    // The bundle and PlanCacheStats count the same events.
    let stats = session.plan_cache_stats();
    assert_eq!(metrics.plan_cache_misses.get(), stats.misses);
    assert_eq!(metrics.plan_cache_hits.get(), stats.hits);
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 1);

    // Both exposition formats carry the observed values.
    let json = metrics.registry().snapshot_json();
    for name in ["queries_completed", "plan_cache_hits", "query_latency_ns"] {
        assert!(json.contains(name), "{name} missing from JSON snapshot");
    }
    let prom = metrics.registry().prometheus();
    assert!(prom.contains("# TYPE queries_completed counter"));
    assert!(prom.contains(&format!("queries_completed {runs}\n")));
    assert!(prom.contains(&format!("query_latency_ns_count {runs}\n")));
}
