//! Plan-cache and adaptive-engine integration tests: hit/miss
//! semantics over exact parameter bindings, single-entry convergence
//! under concurrent prepares, and `Engine::Adaptive` result
//! equivalence against the pure engines across all 12 queries × 3
//! non-default parameter draws (covering both exploration runs and the
//! learned steady state).

use dbep_core::prelude::*;
use dbep_core::runtime::rng::SmallRng;
use dbep_core::storage::types::date;
use dbep_queries::params::*;
use std::sync::Arc;

const SF: f64 = 0.01;
const SEED: u64 = 42;
const DRAWS: usize = 3;

fn tpch() -> Arc<Database> {
    static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::tpch::generate(SF, SEED))))
}

fn ssb() -> Arc<Database> {
    static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::ssb::generate(SF, SEED))))
}

#[test]
fn repeated_prepare_hits_the_cache() {
    let session = Session::new(tpch());
    let first = session.prepare(QueryId::Q6);
    assert!(!first.cache_hit(), "cold cache must miss");
    let second = session.prepare(QueryId::Q6);
    assert!(second.cache_hit(), "same binding must hit");
    let stats = session.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    // Cached preparation skips planning: a hit is a map lookup.
    assert!(
        second.planning_ns() < 1_000_000,
        "cache hit took {} ns to prepare",
        second.planning_ns()
    );
}

#[test]
fn different_bindings_do_not_collide() {
    let session = Session::new(tpch());
    session.prepare(QueryId::Q6); // paper default: miss.
    let other = session.prepare_params(Q6Params::new(1995, 3, 30).unwrap());
    assert!(
        !other.cache_hit(),
        "a different binding of the same template is a different entry"
    );
    // Same template, same non-default binding: now a hit.
    assert!(session
        .prepare_params(Q6Params::new(1995, 3, 30).unwrap())
        .cache_hit());
    let stats = session.plan_cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
}

#[test]
fn session_clones_share_one_cache() {
    let session = Session::new(tpch());
    let clone = session.clone();
    assert!(!session.prepare(QueryId::Q1).cache_hit());
    assert!(clone.prepare(QueryId::Q1).cache_hit(), "clones share the memo");
    assert_eq!(clone.plan_cache_stats(), session.plan_cache_stats());
}

#[test]
fn concurrent_prepares_converge_on_one_entry() {
    let session = Session::with_cfg(tpch(), ExecCfg::with_threads(2));
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                let q = session.prepare(QueryId::Q12);
                assert_eq!(q.query(), QueryId::Q12);
            });
        }
    });
    let stats = session.plan_cache_stats();
    assert_eq!(stats.entries, 1, "8 racing prepares must yield one entry");
    assert_eq!(stats.misses, 1, "exactly one prepare populates the entry");
    assert_eq!(stats.hits, 7);
}

fn pick<'a>(rng: &mut SmallRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// A valid non-default draw from each query's substitution domain
/// (mirrors the queries crate's parameterized sweep).
fn draw(q: QueryId, rng: &mut SmallRng) -> Params {
    use dbep_datagen::ssb::REGIONS;
    use dbep_datagen::tpch::{COLORS, SEGMENTS, SHIPMODES};
    match q {
        QueryId::Q1 => Q1Params::new(rng.gen_range(60..=120)).unwrap().into(),
        QueryId::Q6 => Q6Params::new(
            rng.gen_range(1993..=1997),
            rng.gen_range(2..=9),
            rng.gen_range(20..=30),
        )
        .unwrap()
        .into(),
        QueryId::Q3 => Q3Params::new(pick(rng, SEGMENTS), date(1995, 3, 1) + rng.gen_range(0..31))
            .unwrap()
            .into(),
        QueryId::Q9 => Q9Params::new(pick(rng, COLORS)).unwrap().into(),
        QueryId::Q18 => Q18Params::new(rng.gen_range(250..=330)).unwrap().into(),
        QueryId::Q4 => Q4Params::new(rng.gen_range(1993..=1997), rng.gen_range(1..=4))
            .unwrap()
            .into(),
        QueryId::Q12 => {
            let a = rng.gen_range(0..SHIPMODES.len());
            let b = (a + rng.gen_range(1..SHIPMODES.len())) % SHIPMODES.len();
            Q12Params::new(SHIPMODES[a], SHIPMODES[b], rng.gen_range(1993..=1997))
                .unwrap()
                .into()
        }
        QueryId::Q14 => Q14Params::new(rng.gen_range(1993..=1997), rng.gen_range(1..=12))
            .unwrap()
            .into(),
        QueryId::Ssb1_1 => {
            let lo = rng.gen_range(0i64..=8);
            SsbQ11Params::new(
                rng.gen_range(1992..=1998),
                lo,
                lo + rng.gen_range(0i64..=2),
                rng.gen_range(20..=40),
            )
            .unwrap()
            .into()
        }
        QueryId::Ssb2_1 => {
            let category = format!("MFGR#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            SsbQ21Params::new(&category, pick(rng, REGIONS)).unwrap().into()
        }
        QueryId::Ssb3_1 => {
            let lo = rng.gen_range(1992..=1997);
            SsbQ31Params::new(
                pick(rng, REGIONS),
                pick(rng, REGIONS),
                lo,
                rng.gen_range(lo..=1998),
            )
            .unwrap()
            .into()
        }
        QueryId::Ssb4_1 => {
            let a = rng.gen_range(1..=5);
            let b = (a + rng.gen_range(1..=4) - 1) % 5 + 1;
            SsbQ41Params::new(pick(rng, REGIONS), pick(rng, REGIONS), a, b)
                .unwrap()
                .into()
        }
    }
}

/// Adaptive must return pure-engine results at every point of its
/// lifecycle: the Typer exploration run, the Tectorwise exploration
/// run, and the learned steady state — for every query and for
/// arbitrary valid bindings. Re-preparing the binding must hit the
/// cache and keep the learned assignment.
#[test]
fn adaptive_matches_pure_engines_across_all_queries() {
    let tpch_session = Session::with_cfg(tpch(), ExecCfg::with_threads(2));
    let ssb_session = Session::with_cfg(ssb(), ExecCfg::with_threads(2));
    let mut rng = SmallRng::seed_from_u64(0xADA9);
    for q in QueryId::ALL {
        let session = if QueryId::SSB.contains(&q) {
            &ssb_session
        } else {
            &tpch_session
        };
        let mut done = 0;
        while done < DRAWS {
            let params = draw(q, &mut rng);
            if params == Params::default_for(q) {
                continue;
            }
            let prepared = session.prepare_params(params.clone());
            let reference = prepared.run(Engine::Typer);
            assert_eq!(
                reference,
                prepared.run(Engine::Tectorwise),
                "{} pure engines",
                q.name()
            );
            // Runs 1–2 explore (pure Typer, pure Tectorwise under a
            // stage trace); runs 3–4 use the learned assignment.
            for round in 0..4 {
                assert_eq!(
                    reference,
                    prepared.run(Engine::Adaptive),
                    "{} adaptive round {round} under {params:?}",
                    q.name()
                );
            }
            let (choices, pure) = prepared
                .adaptive_choices()
                .unwrap_or_else(|| panic!("{} never finished exploring", q.name()));
            assert_eq!(choices.len(), dbep_queries::plan(q).stages().len());
            assert!(matches!(pure, Engine::Typer | Engine::Tectorwise));
            // Re-preparing the same binding is a hit that inherits the
            // learned state — no re-exploration.
            let again = session.prepare_params(params.clone());
            assert!(again.cache_hit(), "{} re-prepare must hit", q.name());
            assert_eq!(
                again.adaptive_choices().map(|(c, _)| c),
                Some(choices),
                "{} learned choices survive re-prepare",
                q.name()
            );
            assert_eq!(reference, again.run(Engine::Adaptive));
            done += 1;
        }
    }
}

/// Adaptive also works on a pool-less session (no scheduler): the
/// explore/learn protocol is independent of the worker pool.
#[test]
fn adaptive_works_without_a_pool() {
    let session = Session::without_pool(tpch(), ExecCfg::default());
    let q3 = session.prepare(QueryId::Q3);
    let reference = q3.run(Engine::Typer);
    for _ in 0..3 {
        assert_eq!(reference, q3.run(Engine::Adaptive));
    }
    assert!(q3.adaptive_choices().is_some());
}
