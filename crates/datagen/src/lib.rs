//! Deterministic benchmark data generators.
//!
//! The paper evaluates on TPC-H (§3.3) and the Star Schema Benchmark
//! (§4.4). We reimplement both generators ("dbgen equivalents"): the
//! studied queries are sensitive to *selectivities, group cardinalities
//! and join fan-outs*, so those follow the official generators' formulas:
//!
//! * lineitem/order fan-out (1–7 lines per order, ≈4.0 average),
//! * `l_shipdate`/`l_receiptdate` offsets driving Q1's four
//!   (returnflag, linestatus) groups and Q6's ≈2 % conjunctive filter,
//! * partsupp's 4-suppliers-per-part key formula (Q9's composite-key
//!   join must actually hit),
//! * `p_name` as five distinct color words (Q9's `LIKE '%green%'`
//!   ≈5/92 selectivity),
//! * SSB's dictionary-encoded region/nation/category/brand hierarchy.
//!
//! Generation is seeded and chunk-deterministic: the same `(sf, seed)`
//! yields byte-identical databases regardless of thread count.

pub mod ssb;
pub mod tpch;

use dbep_runtime::rng::SmallRng;

/// Per-chunk RNG so parallel generation stays deterministic.
pub(crate) fn chunk_rng(seed: u64, table: u64, chunk: u64) -> SmallRng {
    SmallRng::seed_from_u64(
        seed ^ table.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ chunk.wrapping_mul(0xD1B5_4A32_D192_ED03),
    )
}
