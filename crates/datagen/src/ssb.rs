//! Star Schema Benchmark generator (§4.4).
//!
//! SSB denormalizes TPC-H into one fact table (`lineorder`) and four
//! dimensions (`date`, `customer`, `supplier`, `part`). The paper runs
//! the four Q*.1 flights, all dominated by hash-table probes into the
//! dimensions.
//!
//! Hierarchical attributes (region → nation → city, mfgr → category →
//! brand1) are dictionary-encoded as integers; the query plans resolve
//! string constants like `'MFGR#12'` to codes at plan time and results
//! decode back to strings. Both engines see identical encodings, so the
//! comparison is unaffected (DESIGN.md).

use crate::chunk_rng;
use dbep_storage::column::ColumnData;
use dbep_storage::types::{civil, date};
use dbep_storage::{Database, Table};

pub use crate::tpch::{NATIONS, REGIONS};

/// `d_datekey`-style yyyymmdd encoding of a day.
#[inline]
pub fn datekey(days: i32) -> i32 {
    let (y, m, d) = civil(days);
    y * 10_000 + m as i32 * 100 + d as i32
}

/// Region code of nation `n` (index into [`REGIONS`]).
#[inline]
pub fn nation_region(n: i32) -> i32 {
    NATIONS[n as usize].1
}

/// Resolve a region name (e.g. `"ASIA"`) to its code.
pub fn region_code(name: &str) -> i32 {
    REGIONS
        .iter()
        .position(|r| *r == name)
        .unwrap_or_else(|| panic!("unknown region {name}")) as i32
}

/// Resolve a category name `"MFGR#mc"` (m = mfgr 1–5, c = 1–5) to its
/// code `m*10 + c`.
pub fn category_code(name: &str) -> i32 {
    let digits = name.strip_prefix("MFGR#").expect("category like MFGR#12");
    digits.parse().expect("two-digit category")
}

/// Brand1 string for a brand code (category*40 + 0..40). Zero-padded so
/// lexicographic order equals numeric brand order.
pub fn brand_name(code: i32) -> String {
    format!("MFGR#{}{:02}", code / 40, code % 40 + 1)
}

/// Generate an SSB database at scale factor `sf` with a fixed seed.
///
/// Cardinalities: lineorder ≈6 000 000·sf, customer 30 000·sf, supplier
/// 2 000·sf, part 200 000·⌊1+log2(sf)⌋, date 2 556 (7 years).
pub fn generate(sf: f64, seed: u64) -> Database {
    generate_par(sf, seed, 1)
}

/// As [`generate`], then build compressed companions for every
/// encodable column ([`Database::encode_all`]); flat columns untouched.
pub fn generate_encoded(sf: f64, seed: u64) -> Database {
    generate_encoded_par(sf, seed, 1)
}

/// As [`generate_encoded`] with parallel fact-table generation.
pub fn generate_encoded_par(sf: f64, seed: u64, threads: usize) -> Database {
    let mut db = generate_par(sf, seed, threads);
    db.encode_all();
    db
}

/// As [`generate`] with parallel fact-table generation (output identical
/// for any thread count).
pub fn generate_par(sf: f64, seed: u64, threads: usize) -> Database {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut db = Database::new();
    db.add(gen_date());
    let customer_cnt = ((30_000.0 * sf) as usize).max(1);
    let supplier_cnt = ((2_000.0 * sf) as usize).max(1);
    let part_cnt = (200_000.0 * (1.0 + sf.log2().max(0.0)).floor()) as usize;
    let part_cnt = part_cnt.max(1_000);
    db.add(gen_ssb_customer(customer_cnt, seed));
    db.add(gen_ssb_supplier(supplier_cnt, seed));
    db.add(gen_ssb_part(part_cnt, seed));
    let lo_cnt = ((6_000_000.0 * sf) as usize).max(1);
    db.add(gen_lineorder(
        lo_cnt,
        customer_cnt as i32,
        supplier_cnt as i32,
        part_cnt as i32,
        seed,
        threads,
    ));
    db
}

const DATE_LO: i32 = date(1992, 1, 1);
const DATE_HI: i32 = date(1998, 12, 31);

fn gen_date() -> Table {
    let days: Vec<i32> = (DATE_LO..=DATE_HI).collect();
    let mut t = Table::new("date");
    t.add_column(
        "d_datekey",
        ColumnData::I32(days.iter().map(|&d| datekey(d)).collect()),
    )
    .add_column(
        "d_year",
        ColumnData::I32(days.iter().map(|&d| civil(d).0).collect()),
    )
    .add_column(
        "d_yearmonthnum",
        ColumnData::I32(
            days.iter()
                .map(|&d| civil(d).0 * 100 + civil(d).1 as i32)
                .collect(),
        ),
    );
    t
}

fn gen_ssb_customer(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 11, 0);
    let mut nation = Vec::with_capacity(count);
    let mut region = Vec::with_capacity(count);
    let mut city = Vec::with_capacity(count);
    for _ in 0..count {
        let n = rng.gen_range(0..NATIONS.len() as i32);
        nation.push(n);
        region.push(nation_region(n));
        city.push(n * 10 + rng.gen_range(0..10)); // 10 cities per nation
    }
    let mut t = Table::new("ssb_customer");
    t.add_column("c_custkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("c_nation", ColumnData::I32(nation))
        .add_column("c_region", ColumnData::I32(region))
        .add_column("c_city", ColumnData::I32(city));
    t
}

fn gen_ssb_supplier(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 12, 0);
    let mut nation = Vec::with_capacity(count);
    let mut region = Vec::with_capacity(count);
    let mut city = Vec::with_capacity(count);
    for _ in 0..count {
        let n = rng.gen_range(0..NATIONS.len() as i32);
        nation.push(n);
        region.push(nation_region(n));
        city.push(n * 10 + rng.gen_range(0..10));
    }
    let mut t = Table::new("ssb_supplier");
    t.add_column("s_suppkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("s_nation", ColumnData::I32(nation))
        .add_column("s_region", ColumnData::I32(region))
        .add_column("s_city", ColumnData::I32(city));
    t
}

fn gen_ssb_part(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 13, 0);
    let mut mfgr = Vec::with_capacity(count);
    let mut category = Vec::with_capacity(count);
    let mut brand = Vec::with_capacity(count);
    for _ in 0..count {
        let m = rng.gen_range(1..=5);
        let c = m * 10 + rng.gen_range(1..=5);
        mfgr.push(m);
        category.push(c);
        brand.push(c * 40 + rng.gen_range(0..40));
    }
    let mut t = Table::new("ssb_part");
    t.add_column("p_partkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("p_mfgr", ColumnData::I32(mfgr))
        .add_column("p_category", ColumnData::I32(category))
        .add_column("p_brand1", ColumnData::I32(brand));
    t
}

#[derive(Default)]
struct LoChunk {
    custkey: Vec<i32>,
    suppkey: Vec<i32>,
    partkey: Vec<i32>,
    orderdate: Vec<i32>,
    quantity: Vec<i64>,
    extendedprice: Vec<i64>,
    discount: Vec<i64>,
    revenue: Vec<i64>,
    supplycost: Vec<i64>,
}

const LO_PER_CHUNK: usize = 262_144;

fn gen_lo_chunk(chunk: usize, n: usize, customers: i32, suppliers: i32, parts: i32, seed: u64) -> LoChunk {
    let mut rng = chunk_rng(seed, 14, chunk as u64);
    let mut c = LoChunk::default();
    c.custkey.reserve(n);
    for _ in 0..n {
        let qty = rng.gen_range(1..=50i64);
        let price = rng.gen_range(90_000..=200_000i64); // cents
        let disc = rng.gen_range(0..=10i64);
        let extended = qty * price;
        c.custkey.push(rng.gen_range(1..=customers));
        c.suppkey.push(rng.gen_range(1..=suppliers));
        c.partkey.push(rng.gen_range(1..=parts));
        c.orderdate.push(datekey(rng.gen_range(DATE_LO..=DATE_HI)));
        c.quantity.push(qty * 100);
        c.extendedprice.push(extended);
        c.discount.push(disc);
        c.revenue.push(extended * (100 - disc) / 100);
        c.supplycost.push(extended * 6 / 10);
    }
    c
}

fn gen_lineorder(
    count: usize,
    customers: i32,
    suppliers: i32,
    parts: i32,
    seed: u64,
    threads: usize,
) -> Table {
    let chunks = count.div_ceil(LO_PER_CHUNK);
    let gen_one = |i: usize| {
        let n = LO_PER_CHUNK.min(count - i * LO_PER_CHUNK);
        gen_lo_chunk(i, n, customers, suppliers, parts, seed)
    };
    let parts_vec: Vec<LoChunk> = if threads <= 1 || chunks == 1 {
        (0..chunks).map(gen_one).collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let out: Vec<Mutex<Option<LoChunk>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads.min(chunks) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks {
                        break;
                    }
                    *out[i].lock().expect("chunk slot") = Some(gen_one(i));
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().expect("chunk slot").expect("chunk generated"))
            .collect()
    };
    let mut all = LoChunk::default();
    for p in parts_vec {
        all.custkey.extend_from_slice(&p.custkey);
        all.suppkey.extend_from_slice(&p.suppkey);
        all.partkey.extend_from_slice(&p.partkey);
        all.orderdate.extend_from_slice(&p.orderdate);
        all.quantity.extend_from_slice(&p.quantity);
        all.extendedprice.extend_from_slice(&p.extendedprice);
        all.discount.extend_from_slice(&p.discount);
        all.revenue.extend_from_slice(&p.revenue);
        all.supplycost.extend_from_slice(&p.supplycost);
    }
    let mut t = Table::new("lineorder");
    t.add_column("lo_custkey", ColumnData::I32(all.custkey))
        .add_column("lo_suppkey", ColumnData::I32(all.suppkey))
        .add_column("lo_partkey", ColumnData::I32(all.partkey))
        .add_column("lo_orderdate", ColumnData::I32(all.orderdate))
        .add_column("lo_quantity", ColumnData::I64(all.quantity))
        .add_column("lo_extendedprice", ColumnData::I64(all.extendedprice))
        .add_column("lo_discount", ColumnData::I64(all.discount))
        .add_column("lo_revenue", ColumnData::I64(all.revenue))
        .add_column("lo_supplycost", ColumnData::I64(all.supplycost));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities() {
        let db = generate(0.01, 1);
        assert_eq!(db.table("lineorder").len(), 60_000);
        assert_eq!(db.table("ssb_customer").len(), 300);
        assert_eq!(db.table("ssb_supplier").len(), 20);
        assert_eq!(db.table("date").len(), 2_557);
    }

    #[test]
    fn date_dim_covers_fact_dates() {
        let db = generate(0.01, 1);
        let dkeys: std::collections::HashSet<i32> =
            db.table("date").col("d_datekey").i32s().iter().copied().collect();
        for &od in db.table("lineorder").col("lo_orderdate").i32s() {
            assert!(dkeys.contains(&od), "lo_orderdate {od} missing from date dim");
        }
    }

    #[test]
    fn datekey_encoding() {
        assert_eq!(datekey(date(1993, 7, 4)), 19_930_704);
        assert_eq!(datekey(date(1998, 12, 31)), 19_981_231);
    }

    #[test]
    fn code_resolvers() {
        assert_eq!(region_code("ASIA"), 2);
        assert_eq!(region_code("AMERICA"), 1);
        assert_eq!(category_code("MFGR#12"), 12);
        assert_eq!(brand_name(12 * 40 + 7), "MFGR#1208");
    }

    #[test]
    fn hierarchy_is_consistent() {
        let db = generate(0.01, 5);
        let c = db.table("ssb_customer");
        let nat = c.col("c_nation").i32s();
        let reg = c.col("c_region").i32s();
        for i in 0..c.len() {
            assert_eq!(reg[i], nation_region(nat[i]));
        }
        let p = db.table("ssb_part");
        let mfgr = p.col("p_mfgr").i32s();
        let cat = p.col("p_category").i32s();
        let brand = p.col("p_brand1").i32s();
        for i in 0..p.len() {
            assert_eq!(cat[i] / 10, mfgr[i]);
            assert_eq!(brand[i] / 40, cat[i]);
        }
    }

    #[test]
    fn revenue_matches_price_and_discount() {
        let db = generate(0.005, 8);
        let lo = db.table("lineorder");
        let ext = lo.col("lo_extendedprice").i64s();
        let disc = lo.col("lo_discount").i64s();
        let rev = lo.col("lo_revenue").i64s();
        for i in 0..lo.len() {
            assert_eq!(rev[i], ext[i] * (100 - disc[i]) / 100);
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let a = generate_par(0.02, 3, 1);
        let b = generate_par(0.02, 3, 4);
        let ta = a.table("lineorder");
        let tb = b.table("lineorder");
        for (name, col) in ta.columns() {
            assert_eq!(col, tb.col(name), "lineorder.{name}");
        }
    }
}
