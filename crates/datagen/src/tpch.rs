//! TPC-H data generator (dbgen equivalent).
//!
//! Cardinalities at scale factor `sf`: orders 1 500 000·sf, lineitem
//! ≈6 000 000·sf (1–7 lines per order), customer 150 000·sf, part
//! 200 000·sf, partsupp 800 000·sf, supplier 10 000·sf, nation 25,
//! region 5. Money columns are scale-2 fixed point, dates are
//! days-since-epoch.

use crate::chunk_rng;
use dbep_storage::column::{ColumnData, StrColumn};
use dbep_storage::types::{date, Date};
use dbep_storage::{Database, Table};

/// The 92 color words dbgen draws `p_name` from; `LIKE '%green%'`
/// therefore selects ≈ 5/92 ≈ 5.4 % of parts (five distinct words per
/// name).
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
    "cadet",
];

/// Market segments (`c_mktsegment`), uniform — Q3's BUILDING filter
/// selects 20 %.
pub const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

/// Order priorities (`o_orderpriority`), uniform over the spec's five
/// values (clause 4.2.3). Q4 groups by these; Q12's CASE counters split
/// on the two "high" values (leading byte `'1'`/`'2'`).
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship modes (`l_shipmode`), uniform over the spec's seven values —
/// Q12's `IN ('MAIL', 'SHIP')` list selects 2/7 ≈ 28.6 %.
pub const SHIPMODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// `p_type` syllables (clause 4.2.2.13): "Syllable1 Syllable2 Syllable3"
/// with each syllable drawn uniformly. `LIKE 'PROMO%'` therefore selects
/// 1/6 ≈ 16.7 % of parts — Q14's promo-revenue numerator selectivity.
pub const TYPE_SYLLABLE_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_SYLLABLE_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_SYLLABLE_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// The 25 TPC-H nations with their region keys.
pub const NATIONS: &[(&str, i32)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Number of suppliers for a given scale factor.
pub fn supplier_count(sf: f64) -> usize {
    ((10_000.0 * sf) as usize).max(1)
}

/// dbgen's part→supplier assignment: part `pk` (1-based) is supplied by
/// exactly four suppliers given by this formula, which both partsupp
/// generation and `l_suppkey` selection must share for Q9's composite
/// join to find matches.
#[inline]
pub fn part_supplier(pk: i32, i: i32, supplier_cnt: i32) -> i32 {
    let s = supplier_cnt as i64;
    let pk = pk as i64 - 1;
    let i = i as i64;
    ((pk + i * (s / 4 + pk / s)) % s) as i32 + 1
}

/// dbgen's deterministic part price (cents): 900.00 .. 2098.99.
#[inline]
pub fn part_retail_price(pk: i32) -> i64 {
    let pk = pk as i64;
    90_000 + (pk / 10) % 20_001 + 100 * (pk % 1_000)
}

const ORDER_DATE_LO: Date = date(1992, 1, 1);
const ORDER_DATE_HI: Date = date(1998, 8, 2); // inclusive
/// Cutoff splitting `l_linestatus` (F/O) and driving `l_returnflag`.
const STATUS_CUT: Date = date(1995, 6, 17);

/// Generate a TPC-H database at scale factor `sf` (may be fractional)
/// with a fixed `seed`. Deterministic for a given `(sf, seed)`.
pub fn generate(sf: f64, seed: u64) -> Database {
    generate_par(sf, seed, 1)
}

/// As [`generate`], then build compressed companions for every
/// encodable column ([`Database::encode_all`]). The flat columns are
/// untouched, so results and seeded expectations are identical; plans
/// with fused-scan variants switch to the encoded form automatically.
pub fn generate_encoded(sf: f64, seed: u64) -> Database {
    generate_encoded_par(sf, seed, 1)
}

/// As [`generate_encoded`] with parallel generation.
pub fn generate_encoded_par(sf: f64, seed: u64, threads: usize) -> Database {
    let mut db = generate_par(sf, seed, threads);
    db.encode_all();
    db
}

/// As [`generate`], using up to `threads` worker threads. The output is
/// identical for any thread count.
pub fn generate_par(sf: f64, seed: u64, threads: usize) -> Database {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut db = Database::new();
    db.add(gen_region());
    db.add(gen_nation());
    let supplier_cnt = supplier_count(sf);
    db.add(gen_supplier(supplier_cnt, seed));
    let part_cnt = ((200_000.0 * sf) as usize).max(1);
    db.add(gen_part(part_cnt, seed));
    db.add(gen_partsupp(part_cnt, supplier_cnt as i32, seed));
    let customer_cnt = ((150_000.0 * sf) as usize).max(1);
    db.add(gen_customer(customer_cnt, seed));
    let order_cnt = ((1_500_000.0 * sf) as usize).max(1);
    let (orders, lineitem) = gen_orders_lineitem(
        order_cnt,
        customer_cnt as i32,
        part_cnt as i32,
        supplier_cnt as i32,
        seed,
        threads,
    );
    db.add(orders);
    db.add(lineitem);
    db
}

fn gen_region() -> Table {
    let mut t = Table::new("region");
    t.add_column(
        "r_regionkey",
        ColumnData::I32((0..REGIONS.len() as i32).collect()),
    )
    .add_column("r_name", ColumnData::Str(REGIONS.iter().copied().collect()));
    t
}

fn gen_nation() -> Table {
    let mut t = Table::new("nation");
    t.add_column(
        "n_nationkey",
        ColumnData::I32((0..NATIONS.len() as i32).collect()),
    )
    .add_column(
        "n_name",
        ColumnData::Str(NATIONS.iter().map(|(n, _)| *n).collect()),
    )
    .add_column(
        "n_regionkey",
        ColumnData::I32(NATIONS.iter().map(|(_, r)| *r).collect()),
    );
    t
}

fn gen_supplier(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 1, 0);
    let mut nationkey = Vec::with_capacity(count);
    let mut name = StrColumn::with_capacity(count, count * 18);
    let mut acctbal = Vec::with_capacity(count);
    for k in 1..=count {
        nationkey.push(rng.gen_range(0..NATIONS.len() as i32));
        name.push(&format!("Supplier#{k:09}"));
        acctbal.push(rng.gen_range(-99_999..=999_999i64)); // -999.99 .. 9999.99
    }
    let mut t = Table::new("supplier");
    t.add_column("s_suppkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("s_name", ColumnData::Str(name))
        .add_column("s_nationkey", ColumnData::I32(nationkey))
        .add_column("s_acctbal", ColumnData::I64(acctbal));
    t
}

fn gen_part(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 2, 0);
    // Separate stream for the later-added p_type column, so the original
    // columns stay byte-identical for a given (sf, seed).
    let mut rng_type = chunk_rng(seed, 7, 0);
    let mut name = StrColumn::with_capacity(count, count * 34);
    let mut ptype = StrColumn::with_capacity(count, count * 21);
    let mut retail = Vec::with_capacity(count);
    let mut brand = Vec::with_capacity(count);
    let mut word_buf = String::with_capacity(40);
    for pk in 1..=count as i32 {
        // Five distinct color words.
        word_buf.clear();
        let mut picked = [usize::MAX; 5];
        for slot in 0..5 {
            let w = loop {
                let w = rng.gen_range(0..COLORS.len());
                if !picked[..slot].contains(&w) {
                    break w;
                }
            };
            picked[slot] = w;
            if slot > 0 {
                word_buf.push(' ');
            }
            word_buf.push_str(COLORS[w]);
        }
        name.push(&word_buf);
        retail.push(part_retail_price(pk));
        brand.push(rng.gen_range(11..=55i32));
        // p_type: one syllable per list (clause 4.2.2.13).
        word_buf.clear();
        word_buf.push_str(TYPE_SYLLABLE_1[rng_type.gen_range(0..TYPE_SYLLABLE_1.len())]);
        word_buf.push(' ');
        word_buf.push_str(TYPE_SYLLABLE_2[rng_type.gen_range(0..TYPE_SYLLABLE_2.len())]);
        word_buf.push(' ');
        word_buf.push_str(TYPE_SYLLABLE_3[rng_type.gen_range(0..TYPE_SYLLABLE_3.len())]);
        ptype.push(&word_buf);
    }
    let mut t = Table::new("part");
    t.add_column("p_partkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("p_name", ColumnData::Str(name))
        .add_column("p_type", ColumnData::Str(ptype))
        .add_column("p_brand", ColumnData::I32(brand))
        .add_column("p_retailprice", ColumnData::I64(retail));
    t
}

fn gen_partsupp(part_cnt: usize, supplier_cnt: i32, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 3, 0);
    let n = part_cnt * 4;
    let mut partkey = Vec::with_capacity(n);
    let mut suppkey = Vec::with_capacity(n);
    let mut supplycost = Vec::with_capacity(n);
    let mut availqty = Vec::with_capacity(n);
    for pk in 1..=part_cnt as i32 {
        for i in 0..4 {
            partkey.push(pk);
            suppkey.push(part_supplier(pk, i, supplier_cnt));
            supplycost.push(rng.gen_range(100..=100_000i64)); // 1.00 .. 1000.00
            availqty.push(rng.gen_range(1..=9_999i32));
        }
    }
    let mut t = Table::new("partsupp");
    t.add_column("ps_partkey", ColumnData::I32(partkey))
        .add_column("ps_suppkey", ColumnData::I32(suppkey))
        .add_column("ps_supplycost", ColumnData::I64(supplycost))
        .add_column("ps_availqty", ColumnData::I32(availqty));
    t
}

fn gen_customer(count: usize, seed: u64) -> Table {
    let mut rng = chunk_rng(seed, 4, 0);
    let mut name = StrColumn::with_capacity(count, count * 18);
    let mut segment = StrColumn::with_capacity(count, count * 10);
    let mut nationkey = Vec::with_capacity(count);
    let mut acctbal = Vec::with_capacity(count);
    for k in 1..=count {
        name.push(&format!("Customer#{k:09}"));
        segment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]);
        nationkey.push(rng.gen_range(0..NATIONS.len() as i32));
        acctbal.push(rng.gen_range(-99_999..=999_999i64));
    }
    let mut t = Table::new("customer");
    t.add_column("c_custkey", ColumnData::I32((1..=count as i32).collect()))
        .add_column("c_name", ColumnData::Str(name))
        .add_column("c_mktsegment", ColumnData::Str(segment))
        .add_column("c_nationkey", ColumnData::I32(nationkey))
        .add_column("c_acctbal", ColumnData::I64(acctbal));
    t
}

/// Column-struct accumulators for one chunk of orders + their lineitems.
#[derive(Default)]
struct OrdersChunk {
    o_orderkey: Vec<i32>,
    o_custkey: Vec<i32>,
    o_orderdate: Vec<Date>,
    o_totalprice: Vec<i64>,
    o_shippriority: Vec<i32>,
    /// Index into [`PRIORITIES`]; rendered to strings at assembly.
    o_orderpriority: Vec<u8>,
    l_orderkey: Vec<i32>,
    l_partkey: Vec<i32>,
    l_suppkey: Vec<i32>,
    l_quantity: Vec<i64>,
    l_extendedprice: Vec<i64>,
    l_discount: Vec<i64>,
    l_tax: Vec<i64>,
    l_shipdate: Vec<Date>,
    l_commitdate: Vec<Date>,
    l_receiptdate: Vec<Date>,
    l_returnflag: Vec<u8>,
    l_linestatus: Vec<u8>,
    /// Index into [`SHIPMODES`]; rendered to strings at assembly.
    l_shipmode: Vec<u8>,
}

const ORDERS_PER_CHUNK: usize = 65_536;

fn gen_orders_chunk(
    chunk: usize,
    order_lo: i32,
    order_hi: i32,
    customer_cnt: i32,
    part_cnt: i32,
    supplier_cnt: i32,
    seed: u64,
) -> OrdersChunk {
    let mut rng = chunk_rng(seed, 5, chunk as u64);
    // Separate stream for the later-added priority/commitdate/shipmode
    // columns: the original columns stay byte-identical per (sf, seed).
    let mut rng_ext = chunk_rng(seed, 6, chunk as u64);
    let n = (order_hi - order_lo) as usize;
    let mut c = OrdersChunk::default();
    c.o_orderkey.reserve(n);
    c.l_orderkey.reserve(n * 4);
    for ok in order_lo..order_hi {
        let lines = rng.gen_range(1..=7);
        let orderdate = rng.gen_range(ORDER_DATE_LO..=ORDER_DATE_HI);
        let mut total = 0i64;
        for _ in 0..lines {
            let pk = rng.gen_range(1..=part_cnt);
            let sk = part_supplier(pk, rng.gen_range(0..4), supplier_cnt);
            let qty_units = rng.gen_range(1..=50i64);
            let extended = qty_units * part_retail_price(pk);
            let shipdate = orderdate + rng.gen_range(1..=121);
            // dbgen: commitdate is drawn from the order date, independently
            // of the ship date, so commit < receipt (Q4/Q12's "late" test)
            // holds for only part of the lineitems.
            let commitdate = orderdate + rng_ext.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            c.l_orderkey.push(ok);
            c.l_partkey.push(pk);
            c.l_suppkey.push(sk);
            c.l_quantity.push(qty_units * 100);
            c.l_extendedprice.push(extended);
            c.l_discount.push(rng.gen_range(0..=10i64)); // 0.00 .. 0.10
            c.l_tax.push(rng.gen_range(0..=8i64)); // 0.00 .. 0.08
            c.l_shipdate.push(shipdate);
            c.l_commitdate.push(commitdate);
            c.l_receiptdate.push(receiptdate);
            c.l_shipmode.push(rng_ext.gen_range(0..SHIPMODES.len()) as u8);
            // dbgen: R or A (50/50) when the item was received before the
            // cutoff, N afterwards; linestatus F/O splits on shipdate.
            c.l_returnflag.push(if receiptdate <= STATUS_CUT {
                if rng.gen_bool(0.5) {
                    b'R'
                } else {
                    b'A'
                }
            } else {
                b'N'
            });
            c.l_linestatus
                .push(if shipdate <= STATUS_CUT { b'F' } else { b'O' });
            total += extended;
        }
        c.o_orderkey.push(ok);
        c.o_custkey.push(rng.gen_range(1..=customer_cnt));
        c.o_orderdate.push(orderdate);
        c.o_totalprice.push(total);
        c.o_shippriority.push(0);
        c.o_orderpriority
            .push(rng_ext.gen_range(0..PRIORITIES.len()) as u8);
    }
    c
}

fn gen_orders_lineitem(
    order_cnt: usize,
    customer_cnt: i32,
    part_cnt: i32,
    supplier_cnt: i32,
    seed: u64,
    threads: usize,
) -> (Table, Table) {
    let chunks = order_cnt.div_ceil(ORDERS_PER_CHUNK);
    let gen_one = |i: usize| {
        let lo = (i * ORDERS_PER_CHUNK) as i32 + 1;
        let hi = ((i + 1) * ORDERS_PER_CHUNK).min(order_cnt) as i32 + 1;
        gen_orders_chunk(i, lo, hi, customer_cnt, part_cnt, supplier_cnt, seed)
    };
    let parts: Vec<OrdersChunk> = if threads <= 1 || chunks == 1 {
        (0..chunks).map(gen_one).collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let out: Vec<Mutex<Option<OrdersChunk>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads.min(chunks) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks {
                        break;
                    }
                    *out[i].lock().expect("chunk slot") = Some(gen_one(i));
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().expect("chunk slot").expect("chunk generated"))
            .collect()
    };

    // Concatenate chunks in order (determinism).
    let mut all = OrdersChunk::default();
    for p in parts {
        all.o_orderkey.extend_from_slice(&p.o_orderkey);
        all.o_custkey.extend_from_slice(&p.o_custkey);
        all.o_orderdate.extend_from_slice(&p.o_orderdate);
        all.o_totalprice.extend_from_slice(&p.o_totalprice);
        all.o_shippriority.extend_from_slice(&p.o_shippriority);
        all.o_orderpriority.extend_from_slice(&p.o_orderpriority);
        all.l_orderkey.extend_from_slice(&p.l_orderkey);
        all.l_partkey.extend_from_slice(&p.l_partkey);
        all.l_suppkey.extend_from_slice(&p.l_suppkey);
        all.l_quantity.extend_from_slice(&p.l_quantity);
        all.l_extendedprice.extend_from_slice(&p.l_extendedprice);
        all.l_discount.extend_from_slice(&p.l_discount);
        all.l_tax.extend_from_slice(&p.l_tax);
        all.l_shipdate.extend_from_slice(&p.l_shipdate);
        all.l_commitdate.extend_from_slice(&p.l_commitdate);
        all.l_receiptdate.extend_from_slice(&p.l_receiptdate);
        all.l_returnflag.extend_from_slice(&p.l_returnflag);
        all.l_linestatus.extend_from_slice(&p.l_linestatus);
        all.l_shipmode.extend_from_slice(&p.l_shipmode);
    }

    let mut priority = StrColumn::with_capacity(all.o_orderpriority.len(), all.o_orderpriority.len() * 10);
    for &p in &all.o_orderpriority {
        priority.push(PRIORITIES[p as usize]);
    }
    let mut shipmode = StrColumn::with_capacity(all.l_shipmode.len(), all.l_shipmode.len() * 5);
    for &m in &all.l_shipmode {
        shipmode.push(SHIPMODES[m as usize]);
    }

    let mut orders = Table::new("orders");
    orders
        .add_column("o_orderkey", ColumnData::I32(all.o_orderkey))
        .add_column("o_custkey", ColumnData::I32(all.o_custkey))
        .add_column("o_orderdate", ColumnData::Date(all.o_orderdate))
        .add_column("o_totalprice", ColumnData::I64(all.o_totalprice))
        .add_column("o_shippriority", ColumnData::I32(all.o_shippriority))
        .add_column("o_orderpriority", ColumnData::Str(priority));

    let mut lineitem = Table::new("lineitem");
    lineitem
        .add_column("l_orderkey", ColumnData::I32(all.l_orderkey))
        .add_column("l_partkey", ColumnData::I32(all.l_partkey))
        .add_column("l_suppkey", ColumnData::I32(all.l_suppkey))
        .add_column("l_quantity", ColumnData::I64(all.l_quantity))
        .add_column("l_extendedprice", ColumnData::I64(all.l_extendedprice))
        .add_column("l_discount", ColumnData::I64(all.l_discount))
        .add_column("l_tax", ColumnData::I64(all.l_tax))
        .add_column("l_shipdate", ColumnData::Date(all.l_shipdate))
        .add_column("l_commitdate", ColumnData::Date(all.l_commitdate))
        .add_column("l_receiptdate", ColumnData::Date(all.l_receiptdate))
        .add_column("l_returnflag", ColumnData::Char(all.l_returnflag))
        .add_column("l_linestatus", ColumnData::Char(all.l_linestatus))
        .add_column("l_shipmode", ColumnData::Str(shipmode));

    (orders, lineitem)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let db = generate(0.01, 1);
        assert_eq!(db.table("orders").len(), 15_000);
        assert_eq!(db.table("customer").len(), 1_500);
        assert_eq!(db.table("part").len(), 2_000);
        assert_eq!(db.table("partsupp").len(), 8_000);
        assert_eq!(db.table("supplier").len(), 100);
        assert_eq!(db.table("nation").len(), 25);
        assert_eq!(db.table("region").len(), 5);
        let li = db.table("lineitem").len() as f64;
        // 1..7 lines/order, mean 4: expect ~60k +- a few percent.
        assert!((54_000.0..66_000.0).contains(&li), "lineitem {li}");
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let a = generate_par(0.01, 7, 1);
        let b = generate_par(0.01, 7, 4);
        for t in ["orders", "lineitem", "customer", "part"] {
            let ta = a.table(t);
            let tb = b.table(t);
            assert_eq!(ta.len(), tb.len(), "{t} len");
            for (name, col) in ta.columns() {
                assert_eq!(col, tb.col(name), "{t}.{name}");
            }
        }
    }

    #[test]
    fn q1_has_four_groups() {
        let db = generate(0.01, 1);
        let li = db.table("lineitem");
        let rf = li.col("l_returnflag").chars();
        let ls = li.col("l_linestatus").chars();
        let mut groups = std::collections::HashSet::new();
        for i in 0..li.len() {
            groups.insert((rf[i], ls[i]));
        }
        let mut g: Vec<(u8, u8)> = groups.into_iter().collect();
        g.sort_unstable();
        assert_eq!(g, vec![(b'A', b'F'), (b'N', b'F'), (b'N', b'O'), (b'R', b'F')]);
    }

    #[test]
    fn q6_selectivity_is_about_two_percent() {
        let db = generate(0.05, 1);
        let li = db.table("lineitem");
        let ship = li.col("l_shipdate").dates();
        let disc = li.col("l_discount").i64s();
        let qty = li.col("l_quantity").i64s();
        let lo = date(1994, 1, 1);
        let hi = date(1995, 1, 1);
        let hits = (0..li.len())
            .filter(|&i| ship[i] >= lo && ship[i] < hi && (5..=7).contains(&disc[i]) && qty[i] < 2400)
            .count();
        let sel = hits as f64 / li.len() as f64;
        assert!((0.01..0.035).contains(&sel), "Q6 selectivity {sel}");
    }

    #[test]
    fn lineitem_suppkeys_exist_in_partsupp() {
        let db = generate(0.01, 3);
        let ps = db.table("partsupp");
        let mut pairs = std::collections::HashSet::new();
        let pk = ps.col("ps_partkey").i32s();
        let sk = ps.col("ps_suppkey").i32s();
        for i in 0..ps.len() {
            pairs.insert((pk[i], sk[i]));
        }
        let li = db.table("lineitem");
        let lpk = li.col("l_partkey").i32s();
        let lsk = li.col("l_suppkey").i32s();
        for i in 0..li.len() {
            assert!(
                pairs.contains(&(lpk[i], lsk[i])),
                "lineitem {i} references missing partsupp"
            );
        }
    }

    #[test]
    fn part_names_have_five_distinct_words() {
        let db = generate(0.01, 2);
        let names = db.table("part").col("p_name").strs();
        let mut green = 0usize;
        for i in 0..names.len() {
            let words: Vec<&str> = names.get(i).split(' ').collect();
            assert_eq!(words.len(), 5);
            let set: std::collections::HashSet<&&str> = words.iter().collect();
            assert_eq!(set.len(), 5, "duplicate word in {:?}", names.get(i));
            if words.contains(&"green") {
                green += 1;
            }
        }
        let sel = green as f64 / names.len() as f64;
        assert!((0.03..0.08).contains(&sel), "green selectivity {sel}");
    }

    #[test]
    fn supplier_formula_covers_four_distinct_suppliers() {
        for pk in [1, 2, 7, 199_999] {
            let ks: Vec<i32> = (0..4).map(|i| part_supplier(pk, i, 10_000)).collect();
            let set: std::collections::HashSet<&i32> = ks.iter().collect();
            assert_eq!(set.len(), 4, "part {pk}: {ks:?}");
            for k in ks {
                assert!((1..=10_000).contains(&k));
            }
        }
    }

    #[test]
    fn orderpriority_and_shipmode_stay_in_domain() {
        let db = generate(0.01, 5);
        let ord = db.table("orders");
        let prio = ord.col("o_orderpriority").strs();
        let mut prio_counts = [0usize; 5];
        for i in 0..ord.len() {
            let p = PRIORITIES
                .iter()
                .position(|&v| v == prio.get(i))
                .unwrap_or_else(|| panic!("priority {:?} outside domain", prio.get(i)));
            prio_counts[p] += 1;
        }
        // Uniform over 5 values: each bucket near 20 %.
        for (p, &n) in prio_counts.iter().enumerate() {
            let frac = n as f64 / ord.len() as f64;
            assert!((0.15..0.25).contains(&frac), "priority {p} fraction {frac}");
        }
        let li = db.table("lineitem");
        let mode = li.col("l_shipmode").strs();
        let mut mode_counts = [0usize; 7];
        for i in 0..li.len() {
            let m = SHIPMODES
                .iter()
                .position(|&v| v == mode.get(i))
                .unwrap_or_else(|| panic!("shipmode {:?} outside domain", mode.get(i)));
            mode_counts[m] += 1;
        }
        // Uniform over 7 values; Q12's IN ('MAIL','SHIP') must select ≈2/7.
        for (m, &n) in mode_counts.iter().enumerate() {
            let frac = n as f64 / li.len() as f64;
            assert!((0.10..0.19).contains(&frac), "shipmode {m} fraction {frac}");
        }
    }

    #[test]
    fn commitdate_sits_between_order_and_spec_window() {
        let db = generate(0.01, 11);
        let li = db.table("lineitem");
        let lok = li.col("l_orderkey").i32s();
        let ship = li.col("l_shipdate").dates();
        let commit = li.col("l_commitdate").dates();
        let receipt = li.col("l_receiptdate").dates();
        let ord = db.table("orders");
        let odate = ord.col("o_orderdate").dates();
        let mut date_of = vec![0; ord.len() + 1];
        let ok = ord.col("o_orderkey").i32s();
        for i in 0..ord.len() {
            date_of[ok[i] as usize] = odate[i];
        }
        let mut late = 0usize;
        for i in 0..li.len() {
            let od = date_of[lok[i] as usize];
            assert!(
                (od + 30..=od + 90).contains(&commit[i]),
                "commitdate outside spec window"
            );
            assert!(ship[i] > od, "shipdate before orderdate");
            assert!(receipt[i] > ship[i], "receiptdate before shipdate");
            late += (commit[i] < receipt[i]) as usize;
        }
        // commit ~ U[30,90] from the order date, receipt = ship + U[1,30]
        // with ship ~ U[1,121]: a substantial but partial fraction is
        // "late" — Q4's EXISTS predicate must neither be empty nor total.
        let frac = late as f64 / li.len() as f64;
        assert!((0.3..0.9).contains(&frac), "late-lineitem fraction {frac}");
    }

    #[test]
    fn part_type_promo_fraction_matches_spec() {
        let db = generate(0.01, 13);
        let types = db.table("part").col("p_type").strs();
        let mut promo = 0usize;
        for i in 0..types.len() {
            let words: Vec<&str> = types.get(i).split(' ').collect();
            assert_eq!(words.len(), 3, "p_type {:?} not three syllables", types.get(i));
            assert!(TYPE_SYLLABLE_1.contains(&words[0]), "syllable 1 {:?}", words[0]);
            assert!(TYPE_SYLLABLE_2.contains(&words[1]), "syllable 2 {:?}", words[1]);
            assert!(TYPE_SYLLABLE_3.contains(&words[2]), "syllable 3 {:?}", words[2]);
            promo += types.get(i).starts_with("PROMO") as usize;
        }
        // Uniform over 6 first syllables: LIKE 'PROMO%' selects ≈1/6.
        let frac = promo as f64 / types.len() as f64;
        assert!((0.13..0.21).contains(&frac), "PROMO fraction {frac}");
    }

    #[test]
    fn new_columns_deterministic_across_threads() {
        let a = generate_par(0.01, 23, 1);
        let b = generate_par(0.01, 23, 3);
        for (t, c) in [
            ("orders", "o_orderpriority"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_commitdate"),
            ("part", "p_type"),
        ] {
            assert_eq!(a.table(t).col(c), b.table(t).col(c), "{t}.{c}");
        }
    }

    #[test]
    fn totalprice_matches_line_sums() {
        let db = generate(0.005, 9);
        let li = db.table("lineitem");
        let lok = li.col("l_orderkey").i32s();
        let ext = li.col("l_extendedprice").i64s();
        let ord = db.table("orders");
        let mut sums = vec![0i64; ord.len() + 1];
        for i in 0..li.len() {
            sums[lok[i] as usize] += ext[i];
        }
        let ok = ord.col("o_orderkey").i32s();
        let tp = ord.col("o_totalprice").i64s();
        for i in 0..ord.len() {
            assert_eq!(tp[i], sums[ok[i] as usize], "order {}", ok[i]);
        }
    }
}
