//! Minimal JSON writer, same spirit as the bench crate's in-tree
//! serializer: only what the `--json` report needs, no dependency.

/// Escape `s` as JSON string contents (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the check report as a single JSON object.
pub fn report(root: &str, files_scanned: usize, findings: &[crate::rules::Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", escape(root)));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_shape() {
        let findings = vec![Finding {
            rule: "unsafe",
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "`unsafe` without a `// SAFETY:` justification".to_string(),
        }];
        let json = report("/repo", 3, &findings);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"files_scanned\": 3"));
    }
}
