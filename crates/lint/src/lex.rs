//! A line-oriented Rust tokenizer, just deep enough for the analyzer.
//!
//! The rules in [`crate::rules`] are conventions over *source text* —
//! "`unsafe` must be preceded by a `// SAFETY:` comment" — so full
//! parsing is unnecessary, but naive substring matching is wrong: the
//! word `unsafe` inside a string literal or a doc comment must not
//! count as an unsafe site. This lexer splits every line into its
//! **code** text (string/char literal contents blanked, comments
//! removed) and its **comment** text (line, block and doc comments),
//! tracking multi-line constructs (block comments, plain and raw
//! strings) across lines. It also marks the lines that belong to
//! `#[cfg(test)]`-gated items, which the audit rules exempt.
//!
//! Handled: nested block comments, escapes in string/char literals,
//! raw strings (`r"…"`, `r#"…"#`, any hash depth, plus `b`/`br`
//! prefixes), and the `'a` lifetime vs `'a'` char-literal ambiguity.

/// One source line, split into code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Source text with comments removed and literal contents blanked.
    /// Quotes are kept, so `"unsafe"` lexes to `""`.
    pub code: String,
    /// Concatenated comment text of the line (line, block and doc).
    pub comment: String,
    /// Contents of the string literals that *close* on this line, in
    /// order (a multi-line literal is attributed to its closing line).
    /// The code channel blanks them; rules that validate literal text
    /// (metric names/help) read this channel instead.
    pub literals: Vec<String>,
}

/// A lexed source file.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub lines: Vec<Line>,
    /// `in_test[i]` — line `i` is inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lex `src` into per-line code/comment channels.
pub fn lex(path: &str, src: &str) -> FileScan {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    // In-flight string literal content; survives line breaks so a
    // multi-line literal lands on the line its closing quote is on.
    let mut lit = String::new();
    let mut mode = Mode::Code;
    let mut i = 0usize;
    let n = chars.len();
    let at = |i: usize| chars.get(i).copied().unwrap_or('\0');
    while i < n {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && at(i + 1) == '/' {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && at(i + 1) == '*' {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    lit.clear();
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&cur.code) {
                    // Possible raw/byte string prefix: r" r#" b" br" br#".
                    let mut j = i + 1;
                    if c == 'b' && at(j) == 'r' {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while at(j) == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (c == 'r' || at(i + 1) == 'r' || hashes == 0) && at(j) == '"';
                    if is_raw
                        && at(j) == '"'
                        && (hashes > 0 || c != 'b' || at(i + 1) == '"' || at(i + 1) == 'r')
                    {
                        cur.code.push('"');
                        lit.clear();
                        mode = if c == 'b' && at(i + 1) != 'r' && hashes == 0 {
                            Mode::Str // b"…" : plain byte string, escapes apply
                        } else {
                            Mode::RawStr(hashes)
                        };
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if at(i + 1) == '\\' {
                        // Escaped char literal: consume to the closing quote.
                        cur.code.push('\'');
                        let mut j = i + 2;
                        if at(j) != '\0' {
                            j += 1; // the escaped char (covers \' and \\)
                        }
                        while j < n && at(j) != '\'' && at(j) != '\n' {
                            j += 1;
                        }
                        cur.code.push('\'');
                        i = (j + 1).min(n);
                    } else if at(i + 2) == '\'' && at(i + 1) != '\'' {
                        // 'x' — a simple char literal.
                        cur.code.push('\'');
                        cur.code.push('\'');
                        i += 3;
                    } else {
                        // A lifetime: keep the quote, idents follow as code.
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(d) => {
                if c == '/' && at(i + 1) == '*' {
                    mode = Mode::BlockComment(d + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && at(i + 1) == '/' {
                    mode = if d == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(d - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Keep the escape verbatim (incl. \" and \\).
                    lit.push(c);
                    lit.push(at(i + 1));
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    cur.literals.push(std::mem::take(&mut lit));
                    mode = Mode::Code;
                    i += 1;
                } else {
                    lit.push(c);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && at(j) == '#' {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        cur.literals.push(std::mem::take(&mut lit));
                        mode = Mode::Code;
                        i = j;
                    } else {
                        lit.push('"');
                        i += 1;
                    }
                } else {
                    lit.push(c);
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    let in_test = test_regions(&lines);
    FileScan {
        path: path.to_string(),
        lines,
        in_test,
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Mark lines inside `#[cfg(test)]`-gated items: once the attribute is
/// seen, the next brace-delimited block (the gated `mod`/`fn`) is a test
/// region, tracked by brace depth over the code channel.
fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut out = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut armed = false;
    let mut regions: Vec<i32> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.code.contains("#[cfg(test)]") {
            armed = true;
        }
        let mut in_region = !regions.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed {
                        regions.push(depth);
                        armed = false;
                        in_region = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                _ => {}
            }
        }
        out[idx] = in_region || !regions.is_empty();
    }
    out
}

/// Word-boundary occurrences of `word` in `code`; returns column indices.
pub fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let w = word.as_bytes();
    let mut out = Vec::new();
    if w.is_empty() || bytes.len() < w.len() {
        return out;
    }
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    for start in 0..=bytes.len() - w.len() {
        if &bytes[start..start + w.len()] == w {
            let before_ok = start == 0 || !is_ident(bytes[start - 1]);
            let after = start + w.len();
            let after_ok = after == bytes.len() || !is_ident(bytes[after]);
            if before_ok && after_ok {
                out.push(start);
            }
        }
    }
    out
}

/// `true` if `code` contains `word` at a word boundary.
pub fn has_word(code: &str, word: &str) -> bool {
    !word_positions(code, word).is_empty()
}

/// All identifier-shaped words in a code string.
pub fn words(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty() && !w.chars().next().unwrap().is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex("t.rs", src).lines.iter().map(|l| l.code.clone()).collect()
    }

    #[test]
    fn strings_are_blanked() {
        let c = code_of("let s = \"unsafe { Ordering::Relaxed }\";\n");
        assert_eq!(c[0], "let s = \"\";");
    }

    #[test]
    fn raw_strings_and_hashes() {
        let c = code_of("let s = r#\"has \"quotes\" and unsafe\"#; let x = 1;\n");
        assert_eq!(c[0], "let s = \"\"; let x = 1;");
        let c = code_of("let s = r\"plain raw unsafe\"; foo();\n");
        assert_eq!(c[0], "let s = \"\"; foo();");
        let c = code_of("let b = b\"bytes unsafe\"; bar();\n");
        assert_eq!(c[0], "let b = \"\"; bar();");
    }

    #[test]
    fn multiline_string_spans_lines() {
        let c = code_of("let s = \"line one\nunsafe two\";\nlet t = 3;\n");
        assert_eq!(c[0], "let s = \"");
        assert_eq!(c[1], "\";");
        assert_eq!(c[2], "let t = 3;");
    }

    #[test]
    fn literal_contents_are_captured() {
        let scan = lex("t.rs", "c(\"a_name\", \"Help text.\");\nr#\"raw one\"#;\n");
        assert_eq!(scan.lines[0].literals, vec!["a_name", "Help text."]);
        assert_eq!(scan.lines[1].literals, vec!["raw one"]);
        // A multi-line literal closes on — and is attributed to — line 1.
        let scan = lex("t.rs", "let s = \"first\nsecond\"; t(\"x\");\n");
        assert!(scan.lines[0].literals.is_empty());
        assert_eq!(scan.lines[1].literals, vec!["firstsecond", "x"]);
    }

    #[test]
    fn line_and_block_comments() {
        let scan = lex(
            "t.rs",
            "let x = 1; // SAFETY: fine\n/* block\nunsafe */ let y = 2;\n",
        );
        assert_eq!(scan.lines[0].code, "let x = 1; ");
        assert!(scan.lines[0].comment.contains("SAFETY:"));
        assert!(scan.lines[1].comment.contains("block"));
        assert_eq!(scan.lines[2].code, " let y = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let c = code_of("a(); /* outer /* inner */ still comment */ b();\n");
        assert_eq!(c[0], "a();  b();");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let c = code_of("let c = 'u'; fn f<'a>(x: &'a str) {} let e = '\\n';\n");
        assert_eq!(c[0], "let c = ''; fn f<'a>(x: &'a str) {} let e = '';");
    }

    #[test]
    fn doc_comments_are_comments() {
        let scan = lex(
            "t.rs",
            "/// # Safety\n/// callers must check\npub unsafe fn f() {}\n",
        );
        assert!(scan.lines[0].comment.contains("# Safety"));
        assert_eq!(scan.lines[0].code, "");
        assert!(has_word(&scan.lines[2].code, "unsafe"));
    }

    #[test]
    fn cfg_test_regions() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let scan = lex("t.rs", src);
        assert_eq!(scan.in_test, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafely()", "unsafe"));
        assert!(!has_word("an_unsafe_thing", "unsafe"));
        assert_eq!(word_positions("unsafe unsafe", "unsafe"), vec![0, 7]);
    }
}
