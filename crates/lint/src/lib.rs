//! `dbep-lint` — the in-tree safety analyzer.
//!
//! The workspace's correctness story has three legs: property tests
//! (fast paths ≡ naive models), sanitizers/Miri in CI (dynamic), and
//! this crate (static). It enforces the repo-specific conventions that
//! `rustc`/clippy cannot see — see [`rules`] for the five checks and
//! DESIGN.md §"Safety invariants & static analysis" for the comment
//! contracts they pin down.
//!
//! The library API takes `(path, contents)` pairs so the fixture tests
//! can feed synthetic trees; the binary walks the workspace.

pub mod json;
pub mod lex;
pub mod rules;

pub use rules::{Finding, RULES};

use std::io;
use std::path::{Path, PathBuf};

/// A check run's result.
#[derive(Debug)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lex a set of in-memory sources (workspace-relative paths).
pub fn scan_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Vec<lex::FileScan> {
    sources
        .into_iter()
        .map(|(path, src)| lex::lex(path, src))
        .collect()
}

/// Run every rule over in-memory sources.
pub fn check_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Report {
    let files = scan_sources(sources);
    Report {
        findings: rules::check(&files),
        files_scanned: files.len(),
    }
}

/// Collect the workspace's `.rs` sources under `root`, skipping build
/// output, VCS metadata, and the analyzer's own test fixtures.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    walk(&path, out)?;
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, &mut out)?;
    Ok(out)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lex every workspace source under `root`.
pub fn scan_tree(root: &Path) -> io::Result<Vec<lex::FileScan>> {
    let mut files = Vec::new();
    for path in collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        files.push(lex::lex(&relative(root, &path), &src));
    }
    Ok(files)
}

/// `dbep-lint check` over the tree at `root`.
pub fn run_check(root: &Path) -> io::Result<Report> {
    let files = scan_tree(root)?;
    Ok(Report {
        findings: rules::check(&files),
        files_scanned: files.len(),
    })
}

/// `dbep-lint list --rule <rule>` over the tree at `root`.
pub fn run_list(root: &Path, rule: &str) -> io::Result<Vec<String>> {
    let files = scan_tree(root)?;
    Ok(rules::list(&files, rule))
}

/// Find the workspace root: ascend from `start` to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
