//! `dbep-lint` CLI: `check [--json]` fails the build on any violation;
//! `list --rule <name>` prints a rule's full tracked inventory.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dbep-lint — in-tree safety analyzer for the db-engine-paradigms workspace

USAGE:
    dbep-lint check [--json] [--root <dir>]
    dbep-lint list --rule <name> [--root <dir>]

RULES:
    unsafe        every `unsafe` carries a // SAFETY: justification
    atomics       every `Ordering::Relaxed` in the concurrency layer
                  carries a // ORDERING: justification
    simd-parity   SIMD kernels have scalar twins (and vice versa), and
                  every SimdPolicy dispatcher appears in a property test
    registry      every REGISTRY plan declares stages(), has a naive
                  oracle, and is swept by the equivalence suite
    metrics       every metric registered with a literal name is
                  snake_case and carries a non-empty help string

`check` exits 0 on a clean tree, 1 on findings. Without --root, the
workspace root is located by walking up from the current directory.
";

struct Args {
    cmd: String,
    json: bool,
    rule: Option<String>,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().ok_or_else(|| "missing subcommand".to_string())?;
    let mut args = Args {
        cmd,
        json: false,
        rule: None,
        root: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--rule" => args.rule = Some(argv.next().ok_or("--rule needs a value")?),
            "--root" => args.root = Some(PathBuf::from(argv.next().ok_or("--root needs a value")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        dbep_lint::find_root(&cwd)
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: workspace root not found (pass --root)");
            return ExitCode::from(2);
        }
    };
    match args.cmd.as_str() {
        "check" => {
            let report = match dbep_lint::run_check(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            if args.json {
                print!(
                    "{}",
                    dbep_lint::json::report(
                        &root.display().to_string(),
                        report.files_scanned,
                        &report.findings
                    )
                );
            } else {
                for f in &report.findings {
                    println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
                }
                println!(
                    "dbep-lint: {} finding(s) across {} file(s)",
                    report.findings.len(),
                    report.files_scanned
                );
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "list" => {
            let rule = match args.rule.as_deref() {
                Some(r) if dbep_lint::RULES.contains(&r) => r,
                Some(r) => {
                    eprintln!(
                        "error: unknown rule {r:?} (expected one of {})",
                        dbep_lint::RULES.join(", ")
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("error: list requires --rule <name>\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            match dbep_lint::run_list(&root, rule) {
                Ok(lines) => {
                    for l in lines {
                        println!("{l}");
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
