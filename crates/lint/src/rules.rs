//! The five repo-specific invariants, as checks over lexed sources.
//!
//! Every rule reports `file:line`-addressable [`Finding`]s; a clean tree
//! produces none. The rules are conventions this codebase already
//! follows — the analyzer's job is to keep them from eroding:
//!
//! 1. **unsafe** — every `unsafe` outside test code carries a
//!    `// SAFETY:` (or `/// # Safety` doc) justification on the same
//!    statement or the contiguous comment block above it.
//! 2. **atomics** — every `Ordering::Relaxed` in the concurrency layer
//!    (scheduler, join/counter runtime, plan cache, bandwidth throttle)
//!    carries a `// ORDERING:` justification the same way.
//! 3. **simd-parity** — every SIMD kernel stem in `dbep-vectorized`
//!    has a `_scalar` twin and vice versa, and every `SimdPolicy`
//!    dispatcher is exercised by at least one test under a `tests/`
//!    directory.
//! 4. **registry** — every `REGISTRY` plan declares `stages()`, has a
//!    naive oracle in the queries test support module, and is swept by
//!    the engine-equivalence suite.
//! 5. **metrics** — every metric registered with a literal name
//!    (`register_counter`/`register_gauge`/`register_histogram`, or a
//!    local closure forwarding to one) uses a snake_case name and a
//!    non-empty help string, so every exposition endpoint stays
//!    Prometheus-compatible and self-describing.

use crate::lex::{has_word, word_positions, words, FileScan};
use std::collections::BTreeMap;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

pub const RULE_UNSAFE: &str = "unsafe";
pub const RULE_ATOMICS: &str = "atomics";
pub const RULE_SIMD: &str = "simd-parity";
pub const RULE_REGISTRY: &str = "registry";
pub const RULE_METRICS: &str = "metrics";
pub const RULES: &[&str] = &[RULE_UNSAFE, RULE_ATOMICS, RULE_SIMD, RULE_REGISTRY, RULE_METRICS];

/// Files whose `Ordering::Relaxed` uses must carry `// ORDERING:`.
/// The whole scheduler plus every other file that does lock-free or
/// lock-adjacent atomics in the serving path.
const ATOMICS_SCOPE: &[&str] = &[
    "crates/scheduler/src/",
    "crates/runtime/src/counters.rs",
    "crates/runtime/src/join_ht.rs",
    "crates/core/src/plan_cache.rs",
    "crates/storage/src/throttle.rs",
    "crates/obs/src/",
    "crates/net/src/",
];

const VECTORIZED_SRC: &str = "crates/vectorized/src/";
const REGISTRY_FILE: &str = "crates/queries/src/lib.rs";
const ORACLE_FILE: &str = "crates/queries/tests/common/mod.rs";
const EQUIVALENCE_FILE: &str = "tests/engine_equivalence.rs";

/// `true` for paths that are test code in their entirety (integration
/// test dirs, benches) — exempt from the audit rules, but *included*
/// in the property-test corpus for the parity rule.
pub fn is_test_path(path: &str) -> bool {
    path.split('/').any(|c| c == "tests" || c == "benches")
}

// ---------------------------------------------------------------------
// Justification walk (shared by the unsafe and atomics rules).
// ---------------------------------------------------------------------

/// First line of the statement containing line `idx`: walk up while the
/// previous line neither closes a statement (`;`/`{`/`}`) nor is blank,
/// comment-only, or an attribute — those belong to an earlier item.
fn stmt_start(scan: &FileScan, idx: usize) -> usize {
    let mut s = idx;
    while s > 0 {
        let prev = scan.lines[s - 1].code.trim();
        if prev.is_empty() || prev.starts_with("#[") || prev.starts_with("#!") {
            break;
        }
        match prev.chars().next_back() {
            Some(';') | Some('{') | Some('}') => break,
            _ => s -= 1,
        }
    }
    s
}

fn comment_has_key(comment: &str, keys: &[&str]) -> bool {
    keys.iter().any(|k| comment.contains(k))
}

/// Is the construct at line `idx` justified? A justification is a
/// comment containing one of `keys`, either on a line of the same
/// statement or in the contiguous comment block directly above it.
/// The walk skips attribute lines, and *chains* through preceding
/// statements that contain the same `trigger` word — one comment may
/// cover a run of sibling sites (e.g. an `unsafe impl Send`/`Sync`
/// pair, or consecutive relaxed counter bumps).
fn justified(scan: &FileScan, idx: usize, trigger: &str, keys: &[&str]) -> bool {
    let start = stmt_start(scan, idx);
    for j in start..=idx {
        if comment_has_key(&scan.lines[j].comment, keys) {
            return true;
        }
    }
    let mut j = start;
    loop {
        if j == 0 {
            return false;
        }
        j -= 1;
        let line = &scan.lines[j];
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.trim().is_empty() {
                return false; // blank line: the block above is unrelated
            }
            if comment_has_key(&line.comment, keys) {
                return true;
            }
            continue; // comment-only line, keep scanning the block
        }
        if code.starts_with("#[") || code.starts_with("#!") {
            continue; // attributes sit between a doc comment and its item
        }
        if has_word(&line.code, trigger) {
            if comment_has_key(&line.comment, keys) {
                return true;
            }
            j = stmt_start(scan, j); // chain through the covered sibling
            continue;
        }
        return false;
    }
}

/// A site the justification rules track, for `list` mode.
#[derive(Debug)]
pub struct Site {
    pub path: String,
    pub line: usize,
    pub justified: bool,
}

fn audit_sites(scan: &FileScan, trigger: &str, keys: &[&str], skip_use: bool) -> Vec<Site> {
    let mut out = Vec::new();
    for (i, line) in scan.lines.iter().enumerate() {
        if scan.in_test[i] || !has_word(&line.code, trigger) {
            continue;
        }
        if skip_use && line.code.trim().starts_with("use ") {
            continue; // importing `Ordering::Relaxed` is not a use site
        }
        out.push(Site {
            path: scan.path.clone(),
            line: i + 1,
            justified: justified(scan, i, trigger, keys),
        });
    }
    out
}

const SAFETY_KEYS: &[&str] = &["SAFETY:", "# Safety"];
const ORDERING_KEYS: &[&str] = &["ORDERING:"];

pub fn unsafe_sites(scan: &FileScan) -> Vec<Site> {
    audit_sites(scan, "unsafe", SAFETY_KEYS, false)
}

pub fn relaxed_sites(scan: &FileScan) -> Vec<Site> {
    audit_sites(scan, "Relaxed", ORDERING_KEYS, true)
}

fn in_atomics_scope(path: &str) -> bool {
    ATOMICS_SCOPE.iter().any(|p| path.starts_with(p))
}

// ---------------------------------------------------------------------
// SIMD parity symbol table.
// ---------------------------------------------------------------------

const SIMD_SUFFIXES: &[&str] = &["_avx512", "_avx2", "_autovec"];
const SIMD_MODS: &[&str] = &["avx512", "avx2", "autovec"];

/// Where a symbol was first seen.
type SiteMap = BTreeMap<String, (String, usize)>;

/// Naming-convention symbol table over `crates/vectorized/src`.
#[derive(Debug, Default)]
pub struct SimdTable {
    /// Kernel stems with a SIMD implementation (`<stem>_avx512` names
    /// or `avx512::<stem>` ladder-module members).
    pub simd: SiteMap,
    /// Kernel stems with a `<stem>_scalar` twin.
    pub scalar: SiteMap,
    /// Public `SimdPolicy`-laddered entry points: `dispatch_*!`-generated
    /// fns plus `pub fn`s taking a `SimdPolicy`.
    pub dispatchers: SiteMap,
}

fn record(map: &mut SiteMap, name: &str, path: &str, line: usize) {
    map.entry(name.to_string())
        .or_insert_with(|| (path.to_string(), line));
}

/// Identifier starting at byte `pos` of `code`, if any.
fn ident_at(code: &str, pos: usize) -> Option<&str> {
    let rest = &code[pos..];
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    let id = &rest[..end];
    (!id.is_empty() && !id.starts_with(|c: char| c.is_ascii_digit())).then_some(id)
}

pub fn collect_simd(scan: &FileScan, table: &mut SimdTable) {
    let mut sig_wants_policy: Option<String> = None; // fn name, sig still open
    for (i, line) in scan.lines.iter().enumerate() {
        if scan.in_test[i] {
            continue;
        }
        let code = &line.code;
        let lineno = i + 1;
        // Suffixed kernels and scalar twins, wherever they are mentioned
        // (definitions and call sites both witness the convention).
        for w in words(code) {
            for suf in SIMD_SUFFIXES {
                if let Some(stem) = w.strip_suffix(suf) {
                    if !stem.is_empty() {
                        record(&mut table.simd, stem, &scan.path, lineno);
                    }
                }
            }
            if let Some(stem) = w.strip_suffix("_scalar") {
                if !stem.is_empty() {
                    record(&mut table.scalar, stem, &scan.path, lineno);
                }
            }
        }
        // Ladder-module members: `avx512::name(...)`.
        for m in SIMD_MODS {
            let pat = format!("{m}::");
            for pos in word_positions(code, m) {
                if code[pos..].starts_with(&pat) {
                    if let Some(id) = ident_at(code, pos + pat.len()) {
                        record(&mut table.simd, id, &scan.path, lineno);
                    }
                }
            }
        }
        // `dispatch_*!(name, ...)` macro-generated public dispatchers.
        for w in words(code) {
            if !w.starts_with("dispatch_") {
                continue;
            }
            for pos in word_positions(code, w) {
                let after = pos + w.len();
                let rest = code[after..].trim_start();
                if let Some(args) = rest.strip_prefix("!(") {
                    if let Some(id) = ident_at(args, 0) {
                        record(&mut table.dispatchers, id, &scan.path, lineno);
                    }
                }
            }
        }
        // `pub fn name(... SimdPolicy ...)` dispatchers, with multi-line
        // signatures: remember the name until the body brace.
        if let Some(pos) = code.find("pub fn ") {
            if let Some(name) = ident_at(code, pos + "pub fn ".len()) {
                sig_wants_policy = Some(name.to_string());
            }
        }
        if let Some(name) = sig_wants_policy.clone() {
            if has_word(code, "SimdPolicy") {
                record(&mut table.dispatchers, &name, &scan.path, lineno);
                sig_wants_policy = None;
            } else if code.contains('{') || code.contains(';') {
                sig_wants_policy = None; // signature closed without a policy
            }
        }
    }
}

// ---------------------------------------------------------------------
// Metric registration hygiene.
// ---------------------------------------------------------------------

/// `register_*` functions the metrics rule tracks, with the metric kind
/// each registers.
const REGISTER_FNS: &[(&str, &str)] = &[
    ("register_counter", "counter"),
    ("register_gauge", "gauge"),
    ("register_histogram", "histogram"),
];

/// One metric registration call site with at least one literal
/// argument. `name`/`help` are the first/second string literals inside
/// the call's parentheses (dynamic arguments leave them `None`).
#[derive(Debug)]
pub struct MetricSite {
    pub path: String,
    pub line: usize,
    pub kind: &'static str,
    pub name: Option<String>,
    pub help: Option<String>,
}

/// Lowercase-snake-case: `[a-z][a-z0-9_]*`.
fn is_snake_case(name: &str) -> bool {
    name.starts_with(|c: char| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// String literals inside the call whose argument list opens at or
/// after byte `pos` of line `i`, in order, spanning up to a dozen
/// lines. Literal *positions* come from counting quote pairs in the
/// blanked code channel; *contents* come from the literals channel.
fn call_literals(scan: &FileScan, i: usize, pos: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut opened = false;
    for (j, line) in scan.lines.iter().enumerate().skip(i).take(12) {
        let start = if j == i { pos } else { 0 };
        let mut lit_idx = line.code[..start].matches('"').count() / 2;
        let mut in_quote = false;
        for c in line.code[start..].chars() {
            match c {
                '"' => {
                    if in_quote {
                        in_quote = false;
                        if opened && depth > 0 {
                            if let Some(l) = line.literals.get(lit_idx) {
                                out.push(l.clone());
                            }
                        }
                        lit_idx += 1;
                    } else {
                        in_quote = true;
                    }
                }
                '(' => {
                    depth += 1;
                    opened = true;
                }
                ')' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Does the call whose argument list opens at or after byte `pos` of
/// line `i` pass a string literal as its *first* argument? Dynamic
/// first arguments mean a forwarder (`register_counter(name, help)`),
/// which is not itself a registration site.
fn first_arg_is_literal(scan: &FileScan, i: usize, pos: usize) -> bool {
    let mut seen_paren = false;
    for (j, line) in scan.lines.iter().enumerate().skip(i).take(12) {
        let start = if j == i { pos } else { 0 };
        for c in line.code[start..].chars() {
            if !seen_paren {
                if c == '(' {
                    seen_paren = true;
                } else if !c.is_whitespace() {
                    return false;
                }
            } else if !c.is_whitespace() {
                return c == '"';
            }
        }
    }
    false
}

/// Metric registration sites in one file: direct `register_*` calls
/// plus calls through local closure wrappers of the form
/// `let c = |name, help| registry.register_counter(name, help);`.
pub fn metric_sites(scan: &FileScan) -> Vec<MetricSite> {
    // Pass 1: wrapper closures that forward to a register fn.
    let mut wrappers: Vec<(String, &'static str)> = Vec::new();
    for (i, line) in scan.lines.iter().enumerate() {
        if scan.in_test[i] {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("let ") else {
            continue;
        };
        if !trimmed.contains('|') {
            continue;
        }
        for &(f, kind) in REGISTER_FNS {
            if has_word(&line.code, f) {
                if let Some(id) = ident_at(rest, 0) {
                    wrappers.push((id.to_string(), kind));
                }
            }
        }
    }
    // Pass 2: call sites of register fns and wrappers.
    let mut out = Vec::new();
    for (i, line) in scan.lines.iter().enumerate() {
        if scan.in_test[i] {
            continue;
        }
        let code = &line.code;
        let mut calls: Vec<(usize, &'static str)> = Vec::new();
        for &(f, kind) in REGISTER_FNS {
            for pos in word_positions(code, f) {
                if code[pos + f.len()..].trim_start().starts_with('(') {
                    calls.push((pos + f.len(), kind));
                }
            }
        }
        for (w, kind) in &wrappers {
            for pos in word_positions(code, w) {
                if code[pos + w.len()..].starts_with('(') {
                    calls.push((pos + w.len(), kind));
                }
            }
        }
        calls.sort_unstable_by_key(|&(pos, _)| pos);
        for (pos, kind) in calls {
            if !first_arg_is_literal(scan, i, pos) {
                continue; // dynamic name: a forwarder, not a registration
            }
            let lits = call_literals(scan, i, pos);
            if lits.is_empty() {
                continue;
            }
            out.push(MetricSite {
                path: scan.path.clone(),
                line: i + 1,
                kind,
                name: lits.first().cloned(),
                help: lits.get(1).cloned(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Registry coverage.
// ---------------------------------------------------------------------

/// One `REGISTRY` entry: `&tpch::q1::Q1` → (`tpch`, `q1`, `Q1`).
#[derive(Debug)]
pub struct RegistryEntry {
    pub ns: String,
    pub module: String,
    pub konst: String,
    pub line: usize,
}

impl RegistryEntry {
    /// `crates/queries/src/<ns>/<module>.rs`.
    pub fn plan_file(&self) -> String {
        format!("crates/queries/src/{}/{}.rs", self.ns, self.module)
    }

    /// Oracle fn name in the queries test support module: TPC-H `q1` →
    /// `q1`; SSB `q1_1` → `ssb1_1`.
    pub fn oracle_fn(&self) -> String {
        if self.ns == "ssb" {
            format!("ssb{}", self.module.trim_start_matches('q'))
        } else {
            self.module.clone()
        }
    }
}

pub fn parse_registry(scan: &FileScan) -> Vec<RegistryEntry> {
    let mut out = Vec::new();
    let mut inside = false;
    for (i, line) in scan.lines.iter().enumerate() {
        let code = line.code.trim();
        if code.contains("static REGISTRY") {
            inside = true;
        }
        if inside {
            if let Some(entry) = code.strip_prefix('&') {
                let parts: Vec<&str> = entry
                    .trim_end_matches(',')
                    .trim_end_matches(']')
                    .split("::")
                    .collect();
                if parts.len() == 3 {
                    out.push(RegistryEntry {
                        ns: parts[0].to_string(),
                        module: parts[1].to_string(),
                        konst: parts[2].to_string(),
                        line: i + 1,
                    });
                }
            }
            if code.contains("];") {
                break;
            }
        }
    }
    out
}

/// Length of `pub const ALL: [QueryId; N]` if declared in this file.
fn query_id_all_len(scan: &FileScan) -> Option<usize> {
    for line in &scan.lines {
        if let Some(rest) = line.code.trim().strip_prefix("pub const ALL: [QueryId; ") {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            return digits.parse().ok();
        }
    }
    None
}

// ---------------------------------------------------------------------
// The analyzer proper.
// ---------------------------------------------------------------------

/// Run all rules over a set of lexed files (paths workspace-relative).
pub fn check(files: &[FileScan]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let by_path: BTreeMap<&str, &FileScan> = files.iter().map(|f| (f.path.as_str(), f)).collect();

    // Rule 1/2: justification audits.
    for scan in files {
        if is_test_path(&scan.path) {
            continue;
        }
        for site in unsafe_sites(scan) {
            if !site.justified {
                findings.push(Finding {
                    rule: RULE_UNSAFE,
                    path: site.path,
                    line: site.line,
                    message: "`unsafe` without a `// SAFETY:` justification".to_string(),
                });
            }
        }
        if in_atomics_scope(&scan.path) {
            for site in relaxed_sites(scan) {
                if !site.justified {
                    findings.push(Finding {
                        rule: RULE_ATOMICS,
                        path: site.path,
                        line: site.line,
                        message: "`Ordering::Relaxed` without a `// ORDERING:` justification".to_string(),
                    });
                }
            }
        }
    }

    // Rule 3: SIMD parity + property-test coverage.
    let table = simd_table(files);
    if !table.simd.is_empty() || !table.scalar.is_empty() {
        let corpus = test_corpus_words(files);
        for (stem, (path, line)) in &table.simd {
            if !table.scalar.contains_key(stem) {
                findings.push(Finding {
                    rule: RULE_SIMD,
                    path: path.clone(),
                    line: *line,
                    message: format!("SIMD kernel `{stem}` has no scalar twin `{stem}_scalar`"),
                });
            }
        }
        for (stem, (path, line)) in &table.scalar {
            if !table.simd.contains_key(stem) {
                findings.push(Finding {
                    rule: RULE_SIMD,
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "`{stem}_scalar` has no SIMD counterpart (ladder member or `{stem}_avx512`)"
                    ),
                });
            }
        }
        for (name, (path, line)) in &table.dispatchers {
            if !corpus.contains_key(name.as_str()) {
                findings.push(Finding {
                    rule: RULE_SIMD,
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "dispatcher `{name}` is not exercised by any test under a tests/ directory"
                    ),
                });
            }
        }
    }

    // Rule 4: registry coverage.
    if let Some(reg) = by_path.get(REGISTRY_FILE) {
        let entries = parse_registry(reg);
        if entries.is_empty() {
            findings.push(Finding {
                rule: RULE_REGISTRY,
                path: REGISTRY_FILE.to_string(),
                line: 1,
                message: "could not parse any REGISTRY entries".to_string(),
            });
        }
        let oracle = by_path.get(ORACLE_FILE);
        let equiv = by_path.get(EQUIVALENCE_FILE);
        let equiv_sweeps_all = equiv.is_some_and(|f| f.lines.iter().any(|l| l.code.contains("QueryId::ALL")));
        for e in &entries {
            match by_path.get(e.plan_file().as_str()) {
                None => findings.push(Finding {
                    rule: RULE_REGISTRY,
                    path: REGISTRY_FILE.to_string(),
                    line: e.line,
                    message: format!("plan file {} not found for `{}`", e.plan_file(), e.konst),
                }),
                Some(plan) => {
                    if !plan.lines.iter().any(|l| l.code.contains("fn stages")) {
                        findings.push(Finding {
                            rule: RULE_REGISTRY,
                            path: e.plan_file(),
                            line: 1,
                            message: format!("plan `{}` does not declare `stages()`", e.konst),
                        });
                    }
                }
            }
            let oracle_fn = e.oracle_fn();
            let has_oracle = oracle.is_some_and(|f| {
                f.lines
                    .iter()
                    .any(|l| l.code.contains(&format!("fn {oracle_fn}(")))
            });
            if !has_oracle {
                findings.push(Finding {
                    rule: RULE_REGISTRY,
                    path: ORACLE_FILE.to_string(),
                    line: 1,
                    message: format!(
                        "no naive oracle `fn {oracle_fn}` for registry entry `{}`",
                        e.konst
                    ),
                });
            }
            let in_equiv = equiv_sweeps_all
                || equiv.is_some_and(|f| f.lines.iter().any(|l| has_word(&l.code, &e.konst)));
            if !in_equiv {
                findings.push(Finding {
                    rule: RULE_REGISTRY,
                    path: EQUIVALENCE_FILE.to_string(),
                    line: 1,
                    message: format!(
                        "registry entry `{}` is not swept by the equivalence suite",
                        e.konst
                    ),
                });
            }
        }
        // The `QueryId::ALL` sweep only covers everything if its length
        // tracks the registry — catch a plan added to one but not the other.
        if equiv_sweeps_all {
            if let Some(n) = query_id_all_len(reg) {
                if n != entries.len() {
                    findings.push(Finding {
                        rule: RULE_REGISTRY,
                        path: REGISTRY_FILE.to_string(),
                        line: 1,
                        message: format!(
                            "QueryId::ALL has {n} entries but REGISTRY has {} — the equivalence sweep is not exhaustive",
                            entries.len()
                        ),
                    });
                }
            }
        }
    }

    // Rule 5: metric registration hygiene.
    for scan in files {
        if is_test_path(&scan.path) {
            continue;
        }
        for site in metric_sites(scan) {
            let Some(name) = &site.name else { continue };
            if !is_snake_case(name) {
                findings.push(Finding {
                    rule: RULE_METRICS,
                    path: site.path.clone(),
                    line: site.line,
                    message: format!("{} `{name}` is not snake_case", site.kind),
                });
            }
            if site.help.as_ref().is_none_or(|h| h.trim().is_empty()) {
                findings.push(Finding {
                    rule: RULE_METRICS,
                    path: site.path.clone(),
                    line: site.line,
                    message: format!("{} `{name}` has no help string", site.kind),
                });
            }
        }
    }

    findings.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

pub fn simd_table(files: &[FileScan]) -> SimdTable {
    let mut table = SimdTable::default();
    for scan in files {
        if scan.path.starts_with(VECTORIZED_SRC) && !is_test_path(&scan.path) {
            collect_simd(scan, &mut table);
        }
    }
    table
}

/// Words appearing in test-corpus files (any `tests/` or `benches/`
/// directory), mapped to the first file each was seen in.
fn test_corpus_words(files: &[FileScan]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for scan in files {
        if !is_test_path(&scan.path) {
            continue;
        }
        for line in &scan.lines {
            for w in words(&line.code) {
                out.entry(w.to_string()).or_insert_with(|| scan.path.clone());
            }
        }
    }
    out
}

/// Inventory lines for `list --rule <name>` — the full set of sites or
/// symbols a rule tracks, with per-item status.
pub fn list(files: &[FileScan], rule: &str) -> Vec<String> {
    let mut out = Vec::new();
    match rule {
        RULE_UNSAFE | RULE_ATOMICS => {
            for scan in files {
                if is_test_path(&scan.path) {
                    continue;
                }
                if rule == RULE_ATOMICS && !in_atomics_scope(&scan.path) {
                    continue;
                }
                let sites = if rule == RULE_UNSAFE {
                    unsafe_sites(scan)
                } else {
                    relaxed_sites(scan)
                };
                for s in sites {
                    let status = if s.justified { "ok" } else { "MISSING" };
                    out.push(format!("{}:{}: {status}", s.path, s.line));
                }
            }
        }
        RULE_SIMD => {
            let table = simd_table(files);
            let corpus = test_corpus_words(files);
            let mut stems: Vec<&String> = table.simd.keys().chain(table.scalar.keys()).collect();
            stems.sort();
            stems.dedup();
            for stem in stems {
                out.push(format!(
                    "stem {stem}: simd={} scalar={}",
                    table.simd.contains_key(stem),
                    table.scalar.contains_key(stem)
                ));
            }
            for (name, (path, line)) in &table.dispatchers {
                match corpus.get(name.as_str()) {
                    Some(file) => out.push(format!("dispatcher {name} ({path}:{line}): tested in {file}")),
                    None => out.push(format!("dispatcher {name} ({path}:{line}): UNTESTED")),
                }
            }
        }
        RULE_REGISTRY => {
            let by_path: BTreeMap<&str, &FileScan> = files.iter().map(|f| (f.path.as_str(), f)).collect();
            if let Some(reg) = by_path.get(REGISTRY_FILE) {
                for e in parse_registry(reg) {
                    out.push(format!(
                        "{}::{}::{} (oracle fn {}, plan {})",
                        e.ns,
                        e.module,
                        e.konst,
                        e.oracle_fn(),
                        e.plan_file()
                    ));
                }
            }
        }
        RULE_METRICS => {
            for scan in files {
                if is_test_path(&scan.path) {
                    continue;
                }
                for s in metric_sites(scan) {
                    let name = s.name.as_deref().unwrap_or("?");
                    let ok = s.name.as_deref().is_some_and(is_snake_case)
                        && s.help.as_ref().is_some_and(|h| !h.trim().is_empty());
                    let status = if ok { "ok" } else { "BAD" };
                    out.push(format!("{}:{}: {} {name}: {status}", s.path, s.line, s.kind));
                }
            }
        }
        _ => {}
    }
    out
}
