//! End-to-end smoke tests of the `dbep-lint` binary: exit codes, the
//! human and `--json` report formats, and `list --rule` validation.

use std::path::Path;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbep-lint"))
}

fn root() -> std::path::PathBuf {
    dbep_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn check_on_clean_tree_exits_zero() {
    let out = bin()
        .args(["check", "--root"])
        .arg(root())
        .output()
        .expect("run dbep-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout:\n{stdout}");
    assert!(stdout.contains("0 finding(s)"), "stdout:\n{stdout}");
}

#[test]
fn check_json_is_parseable_shape() {
    let out = bin()
        .args(["check", "--json", "--root"])
        .arg(root())
        .output()
        .expect("run dbep-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.trim_start().starts_with('{'),
        "not a JSON object:\n{stdout}"
    );
    assert!(stdout.contains("\"count\": 0"), "stdout:\n{stdout}");
    assert!(stdout.contains("\"findings\": []"), "stdout:\n{stdout}");
}

#[test]
fn check_on_seeded_violation_exits_one() {
    // A temp tree shaped like a workspace (Cargo.toml + crates/) with
    // one unjustified unsafe block: check must fail with exit code 1
    // and name the site.
    let dir = std::env::temp_dir().join(format!("dbep-lint-seed-{}", std::process::id()));
    let src_dir = dir.join("crates/x/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(p: *const i32) -> i32 {\n    unsafe { *p }\n}\n",
    )
    .expect("write");
    let out = bin()
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run dbep-lint");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(out.status.code(), Some(1), "seeded violation must fail the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/x/src/lib.rs:2"), "stdout:\n{stdout}");
    assert!(stdout.contains("[unsafe]"), "stdout:\n{stdout}");
}

#[test]
fn list_requires_a_known_rule() {
    let out = bin()
        .args(["list", "--rule", "nonsense", "--root"])
        .arg(root())
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["list", "--rule", "unsafe", "--root"])
        .arg(root())
        .output()
        .expect("run");
    assert!(out.status.success());
    assert!(!out.stdout.is_empty());
}

#[test]
fn unknown_subcommand_exits_two() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2));
}
