//! Fixture tests: each rule against small synthetic trees — one clean
//! and one seeded-violation variant per rule, plus the false-positive
//! guards (string literals, `#[cfg(test)]` code, macro bodies, test
//! paths). These are the CI proof that `dbep-lint check` actually fails
//! on a violation.

use dbep_lint::check_sources;
use dbep_lint::rules::{RULE_ATOMICS, RULE_METRICS, RULE_REGISTRY, RULE_SIMD, RULE_UNSAFE};

fn rules_of(findings: &[dbep_lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// -----------------------------------------------------------------
// Rule: unsafe
// -----------------------------------------------------------------

#[test]
fn unjustified_unsafe_is_flagged_with_location() {
    let src = "pub fn f(xs: &[i32]) -> i32 {\n    unsafe { *xs.get_unchecked(0) }\n}\n";
    let report = check_sources([("crates/x/src/lib.rs", src)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_UNSAFE]);
    assert_eq!(report.findings[0].line, 2);
    assert_eq!(report.findings[0].path, "crates/x/src/lib.rs");
}

#[test]
fn safety_comment_justifies_unsafe() {
    let src = "pub fn f(xs: &[i32]) -> i32 {\n    \
               // SAFETY: caller guarantees xs is non-empty.\n    \
               unsafe { *xs.get_unchecked(0) }\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn safety_doc_section_justifies_unsafe_fn() {
    let src = "/// Reads the first element.\n///\n/// # Safety\n/// `xs` must be non-empty.\n\
               pub unsafe fn first(xs: &[i32]) -> i32 {\n    *xs.get_unchecked(0)\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn one_safety_comment_covers_sibling_unsafe_impls() {
    let src = "pub struct P(*const u8);\n\
               // SAFETY: P is an opaque token, never dereferenced.\n\
               unsafe impl Send for P {}\nunsafe impl Sync for P {}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn unsafe_in_string_literal_is_not_flagged() {
    let src = "pub fn msg() -> &'static str {\n    \"this code is unsafe to ship\"\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn unsafe_under_cfg_test_is_exempt() {
    let src = "pub fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
               let x = [1i32];\n        assert_eq!(unsafe { *x.as_ptr() }, 1);\n    }\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn unsafe_in_test_paths_is_exempt() {
    let src = "fn main() { unsafe { std::hint::unreachable_unchecked() } }\n";
    assert!(check_sources([("crates/x/tests/it.rs", src)]).is_clean());
    assert!(check_sources([("crates/x/benches/b.rs", src)]).is_clean());
}

// -----------------------------------------------------------------
// Rule: atomics
// -----------------------------------------------------------------

const RELAXED_BAD: &str = "use std::sync::atomic::{AtomicU64, Ordering};\n\
    pub fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";

#[test]
fn unjustified_relaxed_in_scope_is_flagged() {
    let report = check_sources([("crates/scheduler/src/pool.rs", RELAXED_BAD)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_ATOMICS]);
    assert_eq!(report.findings[0].line, 3);
}

#[test]
fn ordering_comment_justifies_relaxed() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               pub fn bump(c: &AtomicU64) {\n    \
               // ORDERING: Relaxed — monotonic stats counter.\n    \
               c.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert!(check_sources([("crates/scheduler/src/pool.rs", src)]).is_clean());
}

#[test]
fn relaxed_outside_scope_is_not_checked() {
    assert!(check_sources([("crates/volcano/src/lib.rs", RELAXED_BAD)]).is_clean());
}

#[test]
fn relaxed_in_use_line_is_not_a_site() {
    let src = "use std::sync::atomic::Ordering::Relaxed;\npub fn f() {}\n";
    assert!(check_sources([("crates/scheduler/src/pool.rs", src)]).is_clean());
}

#[test]
fn one_ordering_comment_covers_a_run_of_relaxed_lines() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
               pub struct S { a: AtomicU64, b: AtomicU64 }\n\
               pub fn snap(s: &S) -> (u64, u64) {\n    \
               // ORDERING: Relaxed — independent stats counters.\n    \
               let a = s.a.load(Ordering::Relaxed);\n    \
               let b = s.b.load(Ordering::Relaxed);\n    (a, b)\n}\n";
    assert!(check_sources([("crates/scheduler/src/pool.rs", src)]).is_clean());
}

// -----------------------------------------------------------------
// Rule: simd-parity
// -----------------------------------------------------------------

/// A matched kernel pair that arms the rule without tripping it.
const PAIRED: &str = "fn base_scalar() {}\nfn base_avx512() {}\n";

#[test]
fn simd_kernel_without_scalar_twin_is_flagged() {
    let src = "pub fn lone_avx512(xs: &[i64]) -> i64 {\n    xs[0]\n}\n";
    let report = check_sources([("crates/vectorized/src/k.rs", src)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_SIMD]);
    assert!(report.findings[0].message.contains("lone"));
}

#[test]
fn scalar_without_simd_counterpart_is_flagged() {
    let src = "pub fn only_scalar(xs: &[i64]) -> i64 {\n    xs[0]\n}\n";
    let report = check_sources([("crates/vectorized/src/k.rs", src)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_SIMD]);
}

#[test]
fn ladder_module_member_counts_as_simd_side() {
    // The `avx512::base()` dispatch-arm call is what witnesses the
    // ladder membership.
    let src = "mod avx512 {\n    pub fn base() {}\n}\nfn base_scalar() {}\n\
               fn call() {\n    avx512::base()\n}\n";
    assert!(check_sources([("crates/vectorized/src/k.rs", src)]).is_clean());
}

#[test]
fn untested_dispatcher_is_flagged_and_test_mention_clears_it() {
    let src = "use crate::SimdPolicy;\n\
               pub fn kern(xs: &[i64], policy: SimdPolicy) -> i64 {\n    xs[0]\n}\n";
    let fixture = [
        ("crates/vectorized/src/k.rs", PAIRED),
        ("crates/vectorized/src/d.rs", src),
    ];
    let report = check_sources(fixture);
    assert_eq!(rules_of(&report.findings), vec![RULE_SIMD]);
    assert!(report.findings[0].message.contains("kern"));

    let test = "#[test]\nfn sweeps() { kern(&[1], SimdPolicy::Scalar); }\n";
    let covered = [
        ("crates/vectorized/src/k.rs", PAIRED),
        ("crates/vectorized/src/d.rs", src),
        ("crates/vectorized/tests/cov.rs", test),
    ];
    assert!(check_sources(covered).is_clean());
}

#[test]
fn macro_generated_dispatchers_are_tracked_by_invocation() {
    // The macro_rules body ($name) must not register; the invocation's
    // first identifier must.
    let src = "macro_rules! dispatch_dense {\n    ($name:ident) => {\n        \
               pub fn $name(policy: SimdPolicy) {}\n    };\n}\n\
               dispatch_dense!(sel_x);\n";
    let fixture = [
        ("crates/vectorized/src/k.rs", PAIRED),
        ("crates/vectorized/src/m.rs", src),
    ];
    let report = check_sources(fixture);
    assert_eq!(rules_of(&report.findings), vec![RULE_SIMD]);
    assert!(
        report.findings[0].message.contains("sel_x"),
        "{:?}",
        report.findings[0]
    );
}

#[test]
fn simd_names_outside_vectorized_are_ignored() {
    let src = "pub fn helper_avx512() {}\n";
    assert!(check_sources([("crates/runtime/src/x.rs", src)]).is_clean());
}

// -----------------------------------------------------------------
// Rule: registry
// -----------------------------------------------------------------

const REGISTRY_OK: &str = "pub const ALL: [QueryId; 1] = [QueryId::Q1];\n\
    static REGISTRY: [&dyn QueryPlan; 1] = [\n    &tpch::q1::Q1,\n];\n";
const PLAN_OK: &str = "pub struct Plan;\nimpl Plan {\n    fn stages(&self) -> usize { 2 }\n}\n";
const ORACLE_OK: &str = "pub fn q1(db: &Database) -> QueryResult { todo!() }\n";
const EQUIV_OK: &str = "fn sweep() { for q in QueryId::ALL {} }\n";

fn registry_fixture() -> Vec<(&'static str, &'static str)> {
    vec![
        ("crates/queries/src/lib.rs", REGISTRY_OK),
        ("crates/queries/src/tpch/q1.rs", PLAN_OK),
        ("crates/queries/tests/common/mod.rs", ORACLE_OK),
        ("tests/engine_equivalence.rs", EQUIV_OK),
    ]
}

#[test]
fn complete_registry_is_clean() {
    assert!(check_sources(registry_fixture()).is_clean());
}

#[test]
fn plan_without_stages_is_flagged() {
    let mut fx = registry_fixture();
    fx[1].1 = "pub struct Plan;\n";
    let report = check_sources(fx);
    assert_eq!(rules_of(&report.findings), vec![RULE_REGISTRY]);
    assert!(report.findings[0].message.contains("stages"));
}

#[test]
fn missing_plan_file_is_flagged() {
    let mut fx = registry_fixture();
    fx.remove(1);
    let report = check_sources(fx);
    assert_eq!(rules_of(&report.findings), vec![RULE_REGISTRY]);
    assert!(report.findings[0].message.contains("not found"));
}

#[test]
fn missing_oracle_is_flagged() {
    let mut fx = registry_fixture();
    fx[2].1 = "pub fn other() {}\n";
    let report = check_sources(fx);
    assert_eq!(rules_of(&report.findings), vec![RULE_REGISTRY]);
    assert!(report.findings[0].message.contains("fn q1"));
}

#[test]
fn equivalence_sweep_length_mismatch_is_flagged() {
    let mut fx = registry_fixture();
    // Registry grows to two entries but QueryId::ALL still has one.
    fx[0].1 = "pub const ALL: [QueryId; 1] = [QueryId::Q1];\n\
               static REGISTRY: [&dyn QueryPlan; 2] = [\n    &tpch::q1::Q1,\n    &tpch::q6::Q6,\n];\n";
    fx.push(("crates/queries/src/tpch/q6.rs", PLAN_OK));
    fx.push((
        "crates/queries/tests/common/q6_oracle.rs",
        "pub fn q6(db: &Database) {}\n",
    ));
    let report = check_sources(fx);
    // q6's oracle lives in the wrong file on purpose: expect the oracle
    // finding and the ALL-length mismatch.
    let rules = rules_of(&report.findings);
    assert!(rules.iter().all(|r| *r == RULE_REGISTRY), "{rules:?}");
    assert!(report.findings.iter().any(|f| f
        .message
        .contains("QueryId::ALL has 1 entries but REGISTRY has 2")));
}

// -----------------------------------------------------------------
// Rule: metrics
// -----------------------------------------------------------------

#[test]
fn well_formed_metric_registration_is_clean() {
    let src = "pub fn wire(r: &Registry) {\n    \
               let c = r.register_counter(\"queries_started\", \"Query runs begun.\");\n    \
               let h = r.register_histogram(\"latency_ns\", \"Per-run latency.\");\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
}

#[test]
fn non_snake_case_metric_name_is_flagged() {
    let src = "pub fn wire(r: &Registry) {\n    \
               let c = r.register_counter(\"QueriesStarted\", \"Query runs begun.\");\n}\n";
    let report = check_sources([("crates/x/src/lib.rs", src)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_METRICS]);
    assert_eq!(report.findings[0].line, 2);
    assert!(report.findings[0].message.contains("snake_case"));
}

#[test]
fn missing_or_empty_help_is_flagged() {
    let empty = "pub fn wire(r: &Registry) {\n    \
                 let g = r.register_gauge(\"queue_depth\", \"\");\n}\n";
    let report = check_sources([("crates/x/src/lib.rs", empty)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_METRICS]);
    assert!(report.findings[0].message.contains("help"));
}

#[test]
fn multi_line_registration_arguments_are_parsed() {
    let src = "pub fn wire(r: &Registry) {\n    \
               let c = r.register_counter(\n        \
               \"bytes_scanned_total\",\n        \
               \"Column-payload bytes scanned.\",\n    );\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", src)]).is_clean());
    let bad = "pub fn wire(r: &Registry) {\n    \
               let c = r.register_counter(\n        \
               \"Bytes-Scanned\",\n        \
               \"Column-payload bytes scanned.\",\n    );\n}\n";
    let report = check_sources([("crates/x/src/lib.rs", bad)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_METRICS]);
}

#[test]
fn closure_wrapper_call_sites_are_checked() {
    // The EngineMetrics idiom: a local closure forwards to register_*;
    // the literal call sites through it are the registrations.
    let src = "pub fn wire(registry: &Registry) {\n    \
               let c = |name, help| registry.register_counter(name, help);\n    \
               let ok = c(\"queries_completed\", \"Runs finished.\");\n    \
               let bad = c(\"Queries-Failed\", \"Runs failed.\");\n}\n";
    let report = check_sources([("crates/x/src/lib.rs", src)]);
    assert_eq!(rules_of(&report.findings), vec![RULE_METRICS]);
    assert_eq!(report.findings[0].line, 4);
    assert!(report.findings[0].message.contains("Queries-Failed"));
}

#[test]
fn dynamic_metric_names_and_test_code_are_exempt() {
    // A pure forwarder (no literals) is not a registration site, and
    // test code may register whatever it likes.
    let fwd = "pub fn reg(r: &Registry, name: &str) -> Arc<Counter> {\n    \
               r.register_counter(name, \"dynamic help\")\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", fwd)]).is_clean());
    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                    let r = Registry::new();\n        \
                    r.register_counter(\"Whatever-Goes\", \"\");\n    }\n}\n";
    assert!(check_sources([("crates/x/src/lib.rs", test_src)]).is_clean());
    let bench = "fn main() { r.register_counter(\"Not-Snake\", \"\"); }\n";
    assert!(check_sources([("crates/x/benches/b.rs", bench)]).is_clean());
}

#[test]
fn ssb_oracle_naming_is_mapped() {
    let fx = vec![
        (
            "crates/queries/src/lib.rs",
            "pub const ALL: [QueryId; 1] = [QueryId::Ssb11];\n\
             static REGISTRY: [&dyn QueryPlan; 1] = [\n    &ssb::q1_1::Q11,\n];\n",
        ),
        ("crates/queries/src/ssb/q1_1.rs", PLAN_OK),
        (
            "crates/queries/tests/common/mod.rs",
            "pub fn ssb1_1(db: &Database) {}\n",
        ),
        ("tests/engine_equivalence.rs", EQUIV_OK),
    ];
    assert!(check_sources(fx).is_clean());
}
