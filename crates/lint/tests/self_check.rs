//! The analyzer run against the workspace it ships in: the tree must be
//! clean. This is what turns the four conventions into tier-1-enforced
//! invariants — a regression anywhere in the workspace fails this test,
//! not just the CI `analysis` job.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    dbep_lint::find_root(manifest).expect("workspace root above crates/lint")
}

#[test]
fn workspace_tree_is_clean() {
    let root = workspace_root();
    let report = dbep_lint::run_check(&root).expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan: {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(report.is_clean(), "dbep-lint findings:\n{}", rendered.join("\n"));
}

#[test]
fn list_inventories_are_nonempty() {
    let root = workspace_root();
    for rule in dbep_lint::RULES {
        let lines = dbep_lint::run_list(&root, rule).expect("list");
        assert!(!lines.is_empty(), "rule {rule} tracks nothing — scope regressed");
    }
}
