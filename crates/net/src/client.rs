//! A minimal blocking wire client: one TCP connection, one
//! request/response exchange at a time.
//!
//! This is the load generator's and the tests' view of the protocol —
//! deliberately thin: it frames requests, reads one response frame, and
//! hands the typed [`Response`] back. Retry/backoff policy belongs to
//! the caller (the open-loop harness counts RETRY frames instead of
//! hiding them).

use crate::frame::{read_frame, write_frame, FrameRead, FrameReadError, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why an exchange failed below the protocol level.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not parse as a response frame.
    Protocol(String),
    /// The server closed the connection instead of responding.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect, with sane exchange timeouts (10 s) so a dead server
    /// fails a test instead of hanging it. Tune via
    /// [`Client::set_timeout`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let client = Client { stream };
        client.set_timeout(Duration::from_secs(10))?;
        Ok(client)
    }

    /// Set both read and write timeouts for subsequent exchanges.
    pub fn set_timeout(&self, t: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(t))?;
        self.stream.set_write_timeout(Some(t))
    }

    /// Send one request and read its response frame.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream) {
            Ok(FrameRead::Frame { tag, payload }) => {
                Response::decode(tag, &payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            Ok(FrameRead::Closed) => Err(ClientError::Disconnected),
            // The read timeout is the exchange budget: an idle tick
            // while a response is owed means the server is stalled.
            Ok(FrameRead::Idle) => Err(ClientError::Io(io::Error::from(io::ErrorKind::TimedOut))),
            Err(FrameReadError::Io(e)) => Err(ClientError::Io(e)),
            Err(e) => Err(ClientError::Protocol(format!("{e:?}"))),
        }
    }

    /// PREPARE `query` under `spec` (empty = paper defaults).
    pub fn prepare(&mut self, query: &str, spec: &str) -> Result<Response, ClientError> {
        self.call(&Request::Prepare {
            query: query.to_string(),
            spec: spec.to_string(),
        })
    }

    /// RUN a prepared handle on `engine`.
    pub fn run(&mut self, handle: u32, engine: &str) -> Result<Response, ClientError> {
        self.call(&Request::Run {
            handle,
            engine: engine.to_string(),
        })
    }

    /// One-shot RUN_PARAMS exchange.
    pub fn run_params(&mut self, query: &str, engine: &str, spec: &str) -> Result<Response, ClientError> {
        self.call(&Request::RunParams {
            query: query.to_string(),
            engine: engine.to_string(),
            spec: spec.to_string(),
        })
    }

    /// Ask the server to drain; expects BYE.
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Shutdown)
    }

    /// Raw access for malformed-input tests.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
