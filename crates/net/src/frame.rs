//! The wire format: length-prefixed binary frames.
//!
//! A frame is `u32` little-endian length `n`, then `n` bytes: one tag
//! byte plus a tag-specific payload. `n` covers the tag, so `n == 0` is
//! malformed and `n` is capped at [`MAX_FRAME_LEN`]. Integers are
//! little-endian; strings are `u16` length + UTF-8 bytes.
//!
//! | tag  | direction | frame        | payload |
//! |------|-----------|--------------|---------|
//! | 0x01 | request   | PREPARE      | query, spec |
//! | 0x02 | request   | RUN          | handle `u32`, engine |
//! | 0x03 | request   | RUN_PARAMS   | query, engine, spec |
//! | 0x04 | request   | SHUTDOWN     | — |
//! | 0x81 | response  | PREPARED     | handle `u32`, params_fp `u64` |
//! | 0x82 | response  | RESULT       | engine, flags `u8`, then 12 × `u64` (see [`RunOutcome`]) |
//! | 0x83 | response  | RETRY        | inflight `u32`, max_inflight `u32` |
//! | 0x84 | response  | ERROR        | code `u8`, message |
//! | 0x85 | response  | BYE          | — |
//!
//! Decoding is strict: unknown tags, short payloads and trailing bytes
//! are all [`FrameError`]s — the server maps them to typed ERROR frames
//! rather than dropping the connection, because the length prefix keeps
//! the stream resynchronizable whenever the frame boundary itself was
//! sound.

use std::io::{self, Read, Write};

/// Hard cap on a frame's length field. Specs and error messages are
/// short; anything larger is a corrupt stream or an abusive client, and
/// refusing it bounds per-connection buffering.
pub const MAX_FRAME_LEN: u32 = 64 * 1024;

pub const TAG_PREPARE: u8 = 0x01;
pub const TAG_RUN: u8 = 0x02;
pub const TAG_RUN_PARAMS: u8 = 0x03;
pub const TAG_SHUTDOWN: u8 = 0x04;
pub const TAG_PREPARED: u8 = 0x81;
pub const TAG_RESULT: u8 = 0x82;
pub const TAG_RETRY: u8 = 0x83;
pub const TAG_ERROR: u8 = 0x84;
pub const TAG_BYE: u8 = 0x85;

/// Typed reason carried by an ERROR frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload did not decode (short fields, trailing bytes, bad UTF-8).
    BadFrame = 1,
    /// Length field exceeded [`MAX_FRAME_LEN`].
    Oversized = 2,
    /// Stream ended (or stalled past the read timeout) mid-frame.
    Truncated = 3,
    /// Tag byte names no known frame.
    UnknownTag = 4,
    /// Query name names no known query, or needs a database this
    /// server does not serve.
    UnknownQuery = 5,
    /// Engine name names no selectable engine.
    UnknownEngine = 6,
    /// Parameter spec rejected by the validating constructors.
    BadParams = 7,
    /// RUN named a handle this connection never prepared.
    UnknownHandle = 8,
    /// Connection cap reached at accept time.
    Busy = 9,
    /// Server is draining after a SHUTDOWN frame.
    ShuttingDown = 10,
}

impl ErrorCode {
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => BadFrame,
            2 => Oversized,
            3 => Truncated,
            4 => UnknownTag,
            5 => UnknownQuery,
            6 => UnknownEngine,
            7 => BadParams,
            8 => UnknownHandle,
            9 => Busy,
            10 => ShuttingDown,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        use ErrorCode::*;
        match self {
            BadFrame => "bad-frame",
            Oversized => "oversized",
            Truncated => "truncated",
            UnknownTag => "unknown-tag",
            UnknownQuery => "unknown-query",
            UnknownEngine => "unknown-engine",
            BadParams => "bad-params",
            UnknownHandle => "unknown-handle",
            Busy => "busy",
            ShuttingDown => "shutting-down",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Tag byte names no known frame (carries the tag).
    UnknownTag(u8),
    /// Structurally invalid payload.
    Bad(&'static str),
}

impl FrameError {
    /// The ERROR code the server answers this decode failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::UnknownTag(_) => ErrorCode::UnknownTag,
            FrameError::Bad(_) => ErrorCode::BadFrame,
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            FrameError::Bad(what) => write!(f, "malformed frame payload: {what}"),
        }
    }
}

/// A client-to-server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Validate and bind `spec` (see `Params::from_spec`; empty = the
    /// paper's defaults) for `query`, returning a connection-local
    /// handle.
    Prepare { query: String, spec: String },
    /// Execute a prepared handle on `engine`.
    Run { handle: u32, engine: String },
    /// Prepare and execute in one round trip (the plan cache makes the
    /// re-prepare cheap).
    RunParams {
        query: String,
        engine: String,
        spec: String,
    },
    /// Drain gracefully: in-flight requests finish, then the server
    /// stops accepting and winds down. Answered with BYE.
    Shutdown,
}

/// Execution facts carried by a RESULT frame — the checksum stands in
/// for the rows, the rest mirrors what the query log records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Engine the run was requested under (`Engine::name`).
    pub engine: String,
    /// Whether preparation hit the server's plan cache.
    pub cache_hit: bool,
    /// `QueryResult::checksum64` of the full result.
    pub checksum: u64,
    /// Result rows produced (not shipped).
    pub rows: u64,
    /// Fingerprint of the bound parameters (joins with the query log).
    pub params_fp: u64,
    /// Server-side preparation time.
    pub planning_ns: u64,
    /// Server-side execution wall time.
    pub latency_ns: u64,
    /// Server-side wire overhead: request decode + response encode.
    pub wire_ns: u64,
    /// Scheduler `RunStats` of the execution.
    pub admission_wait_ns: u64,
    pub queue_wait_ns: u64,
    pub tasks: u64,
    pub morsels: u64,
    pub steals: u64,
    pub bytes_scanned: u64,
}

/// A server-to-client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// PREPARE succeeded: run it via `handle`; `params_fp` is the
    /// binding's canonical fingerprint.
    Prepared { handle: u32, params_fp: u64 },
    /// RUN / RUN_PARAMS succeeded.
    Result(RunOutcome),
    /// Admission gate saturated — try again. Carries the gate state so
    /// clients can back off proportionally.
    Retry { inflight: u32, max_inflight: u32 },
    /// Typed failure; the connection stays open unless the stream
    /// itself is unrecoverable (oversized/truncated).
    Error { code: ErrorCode, message: String },
    /// Acknowledges SHUTDOWN; the connection closes after it.
    Bye,
}

// ---------------------------------------------------------------------
// Payload encoding primitives
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "protocol strings are short");
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

/// Strict little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::Bad("field extends past payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Bad("string is not UTF-8"))
    }

    /// Trailing bytes mean the sender and receiver disagree on the
    /// layout — reject rather than guess.
    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Bad("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------
// Frame encode/decode
// ---------------------------------------------------------------------

/// Assemble a full frame (length prefix + tag + payload).
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let len = 1 + payload.len();
    assert!(len <= MAX_FRAME_LEN as usize, "frame exceeds MAX_FRAME_LEN");
    let mut buf = Vec::with_capacity(4 + len);
    put_u32(&mut buf, len as u32);
    buf.push(tag);
    buf.extend_from_slice(payload);
    buf
}

impl Request {
    /// Encode as a full frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let tag = match self {
            Request::Prepare { query, spec } => {
                put_str(&mut p, query);
                put_str(&mut p, spec);
                TAG_PREPARE
            }
            Request::Run { handle, engine } => {
                put_u32(&mut p, *handle);
                put_str(&mut p, engine);
                TAG_RUN
            }
            Request::RunParams { query, engine, spec } => {
                put_str(&mut p, query);
                put_str(&mut p, engine);
                put_str(&mut p, spec);
                TAG_RUN_PARAMS
            }
            Request::Shutdown => TAG_SHUTDOWN,
        };
        encode_frame(tag, &p)
    }

    /// Decode from a tag byte and its payload.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Request, FrameError> {
        let mut c = Cursor::new(payload);
        let req = match tag {
            TAG_PREPARE => Request::Prepare {
                query: c.str()?,
                spec: c.str()?,
            },
            TAG_RUN => Request::Run {
                handle: c.u32()?,
                engine: c.str()?,
            },
            TAG_RUN_PARAMS => Request::RunParams {
                query: c.str()?,
                engine: c.str()?,
                spec: c.str()?,
            },
            TAG_SHUTDOWN => Request::Shutdown,
            other => return Err(FrameError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode as a full frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let tag = match self {
            Response::Prepared { handle, params_fp } => {
                put_u32(&mut p, *handle);
                put_u64(&mut p, *params_fp);
                TAG_PREPARED
            }
            Response::Result(o) => {
                put_str(&mut p, &o.engine);
                p.push(o.cache_hit as u8);
                for v in [
                    o.checksum,
                    o.rows,
                    o.params_fp,
                    o.planning_ns,
                    o.latency_ns,
                    o.wire_ns,
                    o.admission_wait_ns,
                    o.queue_wait_ns,
                    o.tasks,
                    o.morsels,
                    o.steals,
                    o.bytes_scanned,
                ] {
                    put_u64(&mut p, v);
                }
                TAG_RESULT
            }
            Response::Retry {
                inflight,
                max_inflight,
            } => {
                put_u32(&mut p, *inflight);
                put_u32(&mut p, *max_inflight);
                TAG_RETRY
            }
            Response::Error { code, message } => {
                p.push(*code as u8);
                put_str(&mut p, message);
                TAG_ERROR
            }
            Response::Bye => TAG_BYE,
        };
        encode_frame(tag, &p)
    }

    /// Decode from a tag byte and its payload.
    pub fn decode(tag: u8, payload: &[u8]) -> Result<Response, FrameError> {
        let mut c = Cursor::new(payload);
        let resp = match tag {
            TAG_PREPARED => Response::Prepared {
                handle: c.u32()?,
                params_fp: c.u64()?,
            },
            TAG_RESULT => {
                let engine = c.str()?;
                let cache_hit = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::Bad("cache_hit flag is not 0/1")),
                };
                Response::Result(RunOutcome {
                    engine,
                    cache_hit,
                    checksum: c.u64()?,
                    rows: c.u64()?,
                    params_fp: c.u64()?,
                    planning_ns: c.u64()?,
                    latency_ns: c.u64()?,
                    wire_ns: c.u64()?,
                    admission_wait_ns: c.u64()?,
                    queue_wait_ns: c.u64()?,
                    tasks: c.u64()?,
                    morsels: c.u64()?,
                    steals: c.u64()?,
                    bytes_scanned: c.u64()?,
                })
            }
            TAG_RETRY => Response::Retry {
                inflight: c.u32()?,
                max_inflight: c.u32()?,
            },
            TAG_ERROR => {
                let code = c.u8()?;
                Response::Error {
                    code: ErrorCode::from_u8(code).ok_or(FrameError::Bad("unknown error code"))?,
                    message: c.str()?,
                }
            }
            TAG_BYE => Response::Bye,
            other => return Err(FrameError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------

/// Outcome of one blocking frame read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame arrived.
    Frame { tag: u8, payload: Vec<u8> },
    /// Clean EOF at a frame boundary (peer closed).
    Closed,
    /// The read timed out before any byte of a new frame arrived — an
    /// idle tick, letting the caller poll its shutdown flag.
    Idle,
}

/// Why a frame read failed. [`FrameReadError::Truncated`] and
/// [`FrameReadError::Oversized`] poison the stream (the frame boundary
/// is lost), so the server answers a typed error and closes.
#[derive(Debug)]
pub enum FrameReadError {
    /// EOF or read timeout struck mid-frame.
    Truncated,
    /// Length field exceeded [`MAX_FRAME_LEN`] (carries the length).
    Oversized(u32),
    /// Zero-length frame (no tag byte).
    Empty,
    /// Underlying transport error.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, distinguishing "nothing arrived" from "stream
/// died mid-fill". Returns false on clean EOF/timeout before byte 0.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameReadError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameReadError::Truncated)
                };
            }
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. With a read timeout set on `r`, an idle connection
/// yields [`FrameRead::Idle`] periodically instead of blocking forever;
/// a timeout striking *inside* a frame is [`FrameReadError::Truncated`]
/// (a stalled or half-dead client must not pin the serving thread).
pub fn read_frame(r: &mut impl Read) -> Result<FrameRead, FrameReadError> {
    let mut len_buf = [0u8; 4];
    let mut first = [0u8; 1];
    // Read byte 0 separately: a timeout here is idleness, not damage.
    match r.read(&mut first) {
        Ok(0) => return Ok(FrameRead::Closed),
        Ok(1) => len_buf[0] = first[0],
        Ok(_) => unreachable!("read past a 1-byte buffer"),
        Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => return Ok(FrameRead::Idle),
        Err(e) => return Err(FrameReadError::Io(e)),
    }
    if !read_full(r, &mut len_buf[1..])? {
        return Err(FrameReadError::Truncated);
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(FrameReadError::Empty);
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameReadError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    if !read_full(r, &mut body)? {
        return Err(FrameReadError::Truncated);
    }
    let tag = body[0];
    body.drain(..1);
    Ok(FrameRead::Frame { tag, payload: body })
}

/// Write one already-encoded frame.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = req.encode();
        let mut r = &frame[..];
        match read_frame(&mut r).expect("readable") {
            FrameRead::Frame { tag, payload } => {
                assert_eq!(Request::decode(tag, &payload), Ok(req));
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    fn roundtrip_response(resp: Response) {
        let frame = resp.encode();
        let mut r = &frame[..];
        match read_frame(&mut r).expect("readable") {
            FrameRead::Frame { tag, payload } => {
                assert_eq!(Response::decode(tag, &payload), Ok(resp));
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip_request(Request::Prepare {
            query: "q6".into(),
            spec: "year=1995;discount=3;quantity=30".into(),
        });
        roundtrip_request(Request::Run {
            handle: 7,
            engine: "adaptive".into(),
        });
        roundtrip_request(Request::RunParams {
            query: "ssb-q2.1".into(),
            engine: "tectorwise".into(),
            spec: String::new(),
        });
        roundtrip_request(Request::Shutdown);
        roundtrip_response(Response::Prepared {
            handle: 3,
            params_fp: u64::MAX,
        });
        roundtrip_response(Response::Result(RunOutcome {
            engine: "typer".into(),
            cache_hit: true,
            checksum: 0xfeed_f00d,
            rows: 4,
            params_fp: 99,
            planning_ns: 1200,
            latency_ns: 3_400_000,
            wire_ns: 8000,
            admission_wait_ns: 17,
            queue_wait_ns: 29,
            tasks: 3,
            morsels: 180,
            steals: 2,
            bytes_scanned: 1 << 30,
        }));
        roundtrip_response(Response::Retry {
            inflight: 4,
            max_inflight: 4,
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::BadParams,
            message: "year 2001 outside [1993, 1997]".into(),
        });
        roundtrip_response(Response::Bye);
    }

    #[test]
    fn unknown_tags_and_bad_payloads_are_typed() {
        assert_eq!(Request::decode(0x7f, &[]), Err(FrameError::UnknownTag(0x7f)));
        assert_eq!(FrameError::UnknownTag(0x7f).code(), ErrorCode::UnknownTag);
        // Short payload: RUN needs 4 handle bytes.
        assert!(matches!(
            Request::decode(TAG_RUN, &[1, 2]),
            Err(FrameError::Bad(_))
        ));
        // Trailing garbage after a complete SHUTDOWN payload.
        assert!(matches!(
            Request::decode(TAG_SHUTDOWN, &[0]),
            Err(FrameError::Bad(_))
        ));
        // String length pointing past the payload.
        assert!(matches!(
            Request::decode(TAG_PREPARE, &[0xff, 0xff, b'q']),
            Err(FrameError::Bad(_))
        ));
        // Non-UTF-8 string bytes.
        assert!(matches!(
            Request::decode(TAG_PREPARE, &[2, 0, 0xc3, 0x28, 0, 0]),
            Err(FrameError::Bad(_))
        ));
    }

    #[test]
    fn stream_reads_classify_damage() {
        // Clean close at a boundary.
        assert!(matches!(read_frame(&mut &[][..]), Ok(FrameRead::Closed)));
        // Truncated length prefix.
        assert!(matches!(
            read_frame(&mut &[5u8, 0][..]),
            Err(FrameReadError::Truncated)
        ));
        // Truncated body.
        assert!(matches!(
            read_frame(&mut &[5u8, 0, 0, 0, TAG_SHUTDOWN, 1][..]),
            Err(FrameReadError::Truncated)
        ));
        // Zero-length frame.
        assert!(matches!(
            read_frame(&mut &[0u8, 0, 0, 0][..]),
            Err(FrameReadError::Empty)
        ));
        // Oversized length field.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(FrameReadError::Oversized(_))
        ));
    }

    #[test]
    fn max_len_frame_roundtrips() {
        // The largest legal frame: tag + (MAX_FRAME_LEN - 1) payload.
        let payload = vec![0xabu8; (MAX_FRAME_LEN - 1) as usize];
        let frame = encode_frame(0x42, &payload);
        let mut r = &frame[..];
        match read_frame(&mut r).expect("readable") {
            FrameRead::Frame { tag, payload: p } => {
                assert_eq!(tag, 0x42);
                assert_eq!(p, payload);
            }
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "MAX_FRAME_LEN")]
    fn encoding_an_oversized_frame_panics() {
        encode_frame(0x01, &vec![0u8; MAX_FRAME_LEN as usize]);
    }

    #[test]
    fn error_codes_roundtrip() {
        for v in 1..=10u8 {
            let code = ErrorCode::from_u8(v).expect("valid code");
            assert_eq!(code as u8, v);
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(11), None);
    }
}
