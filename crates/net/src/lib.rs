//! `dbep-net` — the TCP serve front-end.
//!
//! Everything before this crate measured the serving layer through
//! in-process function calls; this crate puts a real wire on it. A
//! [`Server`] owns one [`Session`] per database (sharing one
//! [`Scheduler`] pool in pool mode), listens on a std
//! [`std::net::TcpListener`], and speaks a small length-prefixed binary
//! protocol (see [`frame`]): prepare a parameter binding, run it on a
//! chosen engine, or do both in one round trip.
//!
//! Three serving behaviors are deliberate design points, not
//! conveniences:
//!
//! * **Backpressure is a protocol fact.** The scheduler's admission
//!   gate is surfaced per request through
//!   `PreparedQuery::try_run_with_stats`: when the gate is full the
//!   server answers an explicit RETRY frame instead of queueing the
//!   request, and the accept loop bounds live connections the same way
//!   (BUSY error + close beyond the cap). Saturation is visible to the
//!   client, never silently absorbed server-side.
//! * **Responses carry evidence, not rows.** A RESULT frame ships the
//!   result's [`checksum`](dbep_core::queries::result::QueryResult::checksum64),
//!   row count, server latency, wire overhead and the scheduler-side
//!   `RunStats` — enough for a client to verify an execution against a
//!   local oracle and for a load generator to attribute time, without
//!   streaming result sets through the benchmark.
//! * **Degradation is typed.** Malformed input (oversized or truncated
//!   frames, unknown tags, bad specs) gets a typed ERROR frame; the
//!   connection survives whenever the frame boundary was still sound.
//!   Read/write timeouts bound how long a stalled client can pin a
//!   serving thread, and a SHUTDOWN frame drains gracefully: in-flight
//!   requests complete, then connections and the accept loop wind down.
//!
//! [`Session`]: dbep_core::Session
//! [`Scheduler`]: dbep_core::scheduler::Scheduler

pub mod client;
pub mod frame;
pub mod server;

pub use client::{Client, ClientError};
pub use frame::{ErrorCode, FrameError, Request, Response, RunOutcome, MAX_FRAME_LEN};
pub use server::{NetMetrics, Server, ServerConfig};
