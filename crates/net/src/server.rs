//! The serve loop: bounded accept, per-connection threads, admission
//! backpressure, graceful drain.
//!
//! One [`Server`] owns a [`Session`] per database it serves (TPC-H,
//! SSB, or both). In pool mode both sessions share one
//! [`Scheduler`], so the admission gate — surfaced per request as
//! RETRY frames — bounds in-flight work across every connection; spawn
//! mode (`pool: false`) serves through pool-less sessions for the
//! baseline comparison, where nothing pushes back and queueing shows up
//! as latency instead.
//!
//! Observability: the sessions carry the caller's [`EngineMetrics`] and
//! trace sink, the server registers its own `net_*` counters (on the
//! same registry when metrics are attached), and the query log is
//! written *by the server*, not the sessions, so each record carries
//! the client address and the measured wire overhead.

use crate::frame::{
    read_frame, write_frame, ErrorCode, FrameRead, FrameReadError, Request, Response, RunOutcome,
};
use dbep_core::metrics::EngineMetrics;
use dbep_core::obs::{Counter, Histogram, QueryLog, QueryLogRecord, Registry, TraceSink};
use dbep_core::queries::{Engine, ExecCfg, QueryId};
use dbep_core::scheduler::Scheduler;
use dbep_core::storage::Database;
use dbep_core::{PreparedQuery, Session};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs. The defaults suit tests and loopback benchmarks;
/// `experiments serve-net` exposes the interesting ones as flags.
#[derive(Clone)]
pub struct ServerConfig {
    /// Scheduler workers (pool mode) / per-query threads (spawn mode).
    pub threads: usize,
    /// Shared-pool serving (true) vs spawn-per-query baseline (false).
    pub pool: bool,
    /// Admission bound override; `None` keeps the scheduler's default
    /// `4 × workers`. Ignored in spawn mode (no gate exists).
    pub max_inflight: Option<usize>,
    /// Bounded accept: connections beyond this answer BUSY and close.
    pub max_conns: usize,
    /// Per-connection socket read timeout. Doubles as the idle-poll
    /// period at which connections notice a drain.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout — a client that stops
    /// reading cannot pin a serving thread.
    pub write_timeout: Duration,
    /// Metrics bundle for the sessions; the server's `net_*` series
    /// join its registry.
    pub metrics: Option<Arc<EngineMetrics>>,
    /// Span-trace sink for the sessions.
    pub trace: Option<Arc<TraceSink>>,
    /// Query log, written by the server with client/wire fields filled.
    pub query_log: Option<Arc<QueryLog>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            pool: true,
            max_inflight: None,
            max_conns: 64,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            metrics: None,
            trace: None,
            query_log: None,
        }
    }
}

/// The server's own wire-level counters, registered as `net_*` metrics
/// (on the sessions' registry when one is attached, else private).
pub struct NetMetrics {
    pub connections_total: Arc<Counter>,
    pub frames_total: Arc<Counter>,
    pub results_total: Arc<Counter>,
    pub retries_total: Arc<Counter>,
    pub errors_total: Arc<Counter>,
    pub wire_ns: Arc<Histogram>,
}

impl NetMetrics {
    fn on_registry(r: &Registry) -> NetMetrics {
        NetMetrics {
            connections_total: r.register_counter(
                "net_connections_total",
                "TCP connections accepted by the serve front-end.",
            ),
            frames_total: r.register_counter(
                "net_frames_total",
                "Request frames decoded by the serve front-end.",
            ),
            results_total: r.register_counter("net_results_total", "RESULT frames returned to clients."),
            retries_total: r.register_counter(
                "net_retries_total",
                "RETRY frames returned while the admission gate was saturated.",
            ),
            errors_total: r.register_counter("net_errors_total", "ERROR frames returned to clients."),
            wire_ns: r.register_histogram(
                "net_wire_ns",
                "Per-request server-side wire overhead (request decode plus response encode).",
            ),
        }
    }
}

struct ServerInner {
    listener: TcpListener,
    addr: SocketAddr,
    tpch: Option<Session>,
    ssb: Option<Session>,
    sched: Option<Arc<Scheduler>>,
    cfg: ServerConfig,
    net: NetMetrics,
    shutdown: AtomicBool,
    live_conns: AtomicUsize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A listening serve front-end. Dropping it (or [`Server::join`] after
/// a SHUTDOWN frame / [`Server::shutdown`]) winds everything down.
pub struct Server {
    inner: Arc<ServerInner>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the given databases. At least one database must be
    /// provided; queries against an absent one answer a typed error.
    pub fn serve(
        addr: &str,
        tpch: Option<Arc<Database>>,
        ssb: Option<Arc<Database>>,
        cfg: ServerConfig,
    ) -> io::Result<Server> {
        assert!(
            tpch.is_some() || ssb.is_some(),
            "a server needs at least one database"
        );
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let exec = ExecCfg::with_threads(cfg.threads);
        let sched = cfg.pool.then(|| {
            Arc::new(match cfg.max_inflight {
                Some(m) => Scheduler::with_limits(cfg.threads, m),
                None => Scheduler::new(cfg.threads),
            })
        });
        let session = |db: Arc<Database>| {
            let mut s = match &sched {
                Some(sched) => Session::with_scheduler(db, exec, Arc::clone(sched)),
                None => Session::without_pool(db, exec),
            };
            if let Some(m) = &cfg.metrics {
                s = s.with_metrics(Arc::clone(m));
            }
            if let Some(t) = &cfg.trace {
                s = s.with_trace(Arc::clone(t));
            }
            // Deliberately no `with_query_log`: the server appends its
            // own records so client/wire fields are filled exactly once.
            s
        };
        let net = match &cfg.metrics {
            Some(m) => NetMetrics::on_registry(m.registry()),
            None => NetMetrics::on_registry(&Registry::new()),
        };
        let inner = Arc::new(ServerInner {
            listener,
            addr: local,
            tpch: tpch.map(session),
            ssb: ssb.map(session),
            sched,
            cfg,
            net,
            shutdown: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            conn_handles: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_handle = std::thread::Builder::new()
            .name("dbep-net-accept".into())
            .spawn(move || accept_loop(&accept_inner))?;
        Ok(Server {
            inner,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The server's wire-level counters.
    pub fn net_metrics(&self) -> &NetMetrics {
        &self.inner.net
    }

    /// The shared scheduler (pool mode only).
    pub fn scheduler(&self) -> Option<&Arc<Scheduler>> {
        self.inner.sched.as_ref()
    }

    /// Plan-cache stats of the serving sessions (tpch, ssb).
    pub fn plan_cache_stats(
        &self,
    ) -> (
        Option<dbep_core::PlanCacheStats>,
        Option<dbep_core::PlanCacheStats>,
    ) {
        (
            self.inner.tpch.as_ref().map(Session::plan_cache_stats),
            self.inner.ssb.as_ref().map(Session::plan_cache_stats),
        )
    }

    /// Initiate a drain, as if a SHUTDOWN frame had arrived.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Wait for the drain to finish: the accept loop has exited and
    /// every connection thread has completed its in-flight work.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.inner.conn_handles.lock().expect("conn handles"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        initiate_shutdown(&self.inner);
        self.join_inner();
    }
}

/// Set the drain flag and nudge the (blocking) accept call with a
/// throwaway connection so it observes the flag promptly.
fn initiate_shutdown(inner: &ServerInner) {
    // ORDERING: Relaxed — shutdown latch; every observer only needs
    // eventual visibility (the wake-up connect below and the socket
    // read timeouts bound how long "eventual" takes), and no other
    // shared state is published through this flag.
    inner.shutdown.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect_timeout(&inner.addr, Duration::from_millis(200));
}

fn accept_loop(inner: &Arc<ServerInner>) {
    // ORDERING: Relaxed — shutdown latch, see `initiate_shutdown`.
    while !inner.shutdown.load(Ordering::Relaxed) {
        let stream = match inner.listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        // ORDERING: Relaxed — shutdown latch, see `initiate_shutdown`.
        if inner.shutdown.load(Ordering::Relaxed) {
            refuse(&inner.cfg, stream, ErrorCode::ShuttingDown, "draining");
            break;
        }
        // ORDERING: Relaxed — connection count used as an admission
        // heuristic; an off-by-one race at the cap only shifts which
        // connection gets BUSY, never corrupts state.
        if inner.live_conns.load(Ordering::Relaxed) >= inner.cfg.max_conns {
            inner.net.errors_total.inc();
            refuse(&inner.cfg, stream, ErrorCode::Busy, "connection limit reached");
            continue;
        }
        // ORDERING: Relaxed — see above; paired decrement in the
        // connection thread.
        inner.live_conns.fetch_add(1, Ordering::Relaxed);
        inner.net.connections_total.inc();
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("dbep-net-conn".into())
            .spawn(move || {
                serve_connection(&conn_inner, stream);
                // ORDERING: Relaxed — paired with the accept-side
                // increment above.
                conn_inner.live_conns.fetch_sub(1, Ordering::Relaxed);
            });
        match spawned {
            Ok(h) => inner.conn_handles.lock().expect("conn handles").push(h),
            Err(_) => {
                // ORDERING: Relaxed — undo of the increment above.
                inner.live_conns.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Best-effort typed refusal of a connection the serve loop won't take.
fn refuse(cfg: &ServerConfig, mut stream: TcpStream, code: ErrorCode, message: &str) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let frame = Response::Error {
        code,
        message: message.to_string(),
    }
    .encode();
    let _ = write_frame(&mut stream, &frame);
}

/// One prepared handle held by a connection.
struct Handle {
    prepared: PreparedQuery,
}

fn serve_connection(inner: &Arc<ServerInner>, mut stream: TcpStream) {
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut handles: Vec<Handle> = Vec::new();
    loop {
        let (tag, payload) = match read_frame(&mut stream) {
            Ok(FrameRead::Frame { tag, payload }) => (tag, payload),
            Ok(FrameRead::Closed) => return,
            Ok(FrameRead::Idle) => {
                // ORDERING: Relaxed — shutdown latch, see
                // `initiate_shutdown`.
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            // The frame boundary is lost: answer a typed error, close.
            Err(e) => {
                let (code, message) = match e {
                    FrameReadError::Truncated => (ErrorCode::Truncated, "stream ended mid-frame".to_string()),
                    FrameReadError::Oversized(n) => (
                        ErrorCode::Oversized,
                        format!("frame length {n} exceeds {}", crate::MAX_FRAME_LEN),
                    ),
                    FrameReadError::Empty => (ErrorCode::BadFrame, "zero-length frame".to_string()),
                    FrameReadError::Io(_) => return,
                };
                inner.net.errors_total.inc();
                let frame = Response::Error { code, message }.encode();
                let _ = write_frame(&mut stream, &frame);
                return;
            }
        };
        inner.net.frames_total.inc();
        let t_read = Instant::now();
        // ORDERING: Relaxed — shutdown latch, see `initiate_shutdown`.
        if inner.shutdown.load(Ordering::Relaxed) {
            respond(
                inner,
                &mut stream,
                Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".to_string(),
                },
            );
            return;
        }
        let request = match Request::decode(tag, &payload) {
            Ok(r) => r,
            // The length prefix already advanced the stream past this
            // frame, so the connection survives a bad payload.
            Err(e) => {
                respond(
                    inner,
                    &mut stream,
                    Response::Error {
                        code: e.code(),
                        message: e.to_string(),
                    },
                );
                continue;
            }
        };
        match request {
            Request::Shutdown => {
                respond(inner, &mut stream, Response::Bye);
                initiate_shutdown(inner);
                return;
            }
            Request::Prepare { query, spec } => {
                let response = match prepare(inner, &query, &spec) {
                    Ok(prepared) => {
                        let params_fp = prepared.params_fp();
                        handles.push(Handle { prepared });
                        Response::Prepared {
                            handle: (handles.len() - 1) as u32,
                            params_fp,
                        }
                    }
                    Err(resp) => *resp,
                };
                respond(inner, &mut stream, response);
            }
            Request::Run { handle, engine } => {
                let response = match (parse_engine(&engine), handles.get(handle as usize)) {
                    (Err(resp), _) => *resp,
                    (Ok(_), None) => Response::Error {
                        code: ErrorCode::UnknownHandle,
                        message: format!("handle {handle} was never prepared here"),
                    },
                    (Ok(engine), Some(h)) => execute(inner, &h.prepared, engine, &peer, t_read),
                };
                respond(inner, &mut stream, response);
            }
            Request::RunParams { query, engine, spec } => {
                let response = match (parse_engine(&engine), prepare(inner, &query, &spec)) {
                    (Err(resp), _) | (_, Err(resp)) => *resp,
                    (Ok(engine), Ok(prepared)) => execute(inner, &prepared, engine, &peer, t_read),
                };
                respond(inner, &mut stream, response);
            }
        }
    }
}

/// Send `response`, ticking the outcome counters.
fn respond(inner: &ServerInner, stream: &mut TcpStream, response: Response) {
    match &response {
        Response::Result(_) => inner.net.results_total.inc(),
        Response::Retry { .. } => inner.net.retries_total.inc(),
        Response::Error { .. } => inner.net.errors_total.inc(),
        _ => {}
    }
    let frame = response.encode();
    let _ = write_frame(stream, &frame);
}

fn parse_engine(name: &str) -> Result<Engine, Box<Response>> {
    name.parse()
        .map_err(|_| err_resp(ErrorCode::UnknownEngine, format!("unknown engine {name:?}")))
}

/// Boxed typed error, keeping fallible helpers' `Err` variants small.
fn err_resp(code: ErrorCode, message: String) -> Box<Response> {
    Box::new(Response::Error { code, message })
}

/// Resolve the query, pick its session, validate the spec and prepare.
fn prepare(inner: &ServerInner, query: &str, spec: &str) -> Result<PreparedQuery, Box<Response>> {
    let id: QueryId = query
        .parse()
        .map_err(|_| err_resp(ErrorCode::UnknownQuery, format!("unknown query {query:?}")))?;
    let session = if QueryId::SSB.contains(&id) {
        &inner.ssb
    } else {
        &inner.tpch
    };
    let session = session.as_ref().ok_or_else(|| {
        err_resp(
            ErrorCode::UnknownQuery,
            format!("{} needs a database this server does not serve", id.name()),
        )
    })?;
    let params = dbep_core::queries::params::Params::from_spec(id, spec)
        .map_err(|e| err_resp(ErrorCode::BadParams, e.to_string()))?;
    Ok(session.prepare_params(params))
}

/// Run through the non-blocking admission path; saturation becomes a
/// RETRY frame. On success, append the query-log record with the wire
/// fields the in-process path cannot know.
fn execute(
    inner: &ServerInner,
    prepared: &PreparedQuery,
    engine: Engine,
    peer: &str,
    t_read: Instant,
) -> Response {
    let decode_ns = t_read.elapsed().as_nanos() as u64;
    let t_run = Instant::now();
    let Some((result, stats)) = prepared.try_run_with_stats(engine) else {
        let sched = inner.sched.as_deref();
        return Response::Retry {
            inflight: sched.map(|s| s.inflight()).unwrap_or(0) as u32,
            max_inflight: sched.map(|s| s.max_inflight()).unwrap_or(0) as u32,
        };
    };
    let latency_ns = t_run.elapsed().as_nanos() as u64;
    let t_encode = Instant::now();
    let mut outcome = RunOutcome {
        engine: engine.name().to_string(),
        cache_hit: prepared.cache_hit(),
        checksum: result.checksum64(),
        rows: result.len() as u64,
        params_fp: prepared.params_fp(),
        planning_ns: prepared.planning_ns(),
        latency_ns,
        wire_ns: 0,
        admission_wait_ns: stats.admission_wait_ns(),
        queue_wait_ns: stats.queue_wait_ns(),
        tasks: stats.tasks,
        morsels: stats.morsels_executed(),
        steals: stats.steals,
        bytes_scanned: stats.bytes_scanned,
    };
    // Wire overhead = decode side + the encode work done so far (the
    // result checksum above is the expensive part); the final socket
    // write is excluded — it cannot be known before it happens.
    let wire_ns = decode_ns + t_encode.elapsed().as_nanos() as u64;
    outcome.wire_ns = wire_ns;
    inner.net.wire_ns.record(wire_ns);
    if let Some(log) = &inner.cfg.query_log {
        log.append(QueryLogRecord {
            seq: 0,     // assigned by the log
            unix_ms: 0, // stamped by the log
            query: prepared.query().name().to_string(),
            engine: engine.name().to_string(),
            client: peer.to_string(),
            params_fp: outcome.params_fp,
            cache_hit: outcome.cache_hit,
            planning_ns: outcome.planning_ns,
            latency_ns,
            wire_ns,
            rows: outcome.rows,
            morsels_executed: outcome.morsels,
            queue_wait_ns: outcome.queue_wait_ns,
            admission_wait_ns: outcome.admission_wait_ns,
            tasks: outcome.tasks,
            steals: outcome.steals,
            bytes_scanned: outcome.bytes_scanned,
            stage_ns: Vec::new(),
        });
    }
    Response::Result(outcome)
}
