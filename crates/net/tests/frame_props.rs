//! Property tests for the frame codec: random damage never panics, and
//! whatever decodes must re-encode to the same bytes.

use dbep_net::frame::{encode_frame, read_frame, FrameRead, FrameReadError, Request, Response, RunOutcome};
use dbep_net::{ErrorCode, MAX_FRAME_LEN};
use dbep_runtime::SmallRng;

fn rng() -> SmallRng {
    SmallRng::seed_from_u64(0xF4A3_E000_0000_0001)
}

fn random_string(rng: &mut SmallRng, max_len: usize) -> String {
    let len = (rng.next_u64() as usize) % (max_len + 1);
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte codepoints to exercise UTF-8
            // length accounting in the u16-prefixed string codec.
            match rng.next_u64() % 8 {
                0 => 'é',
                1 => 'λ',
                2 => ';',
                3 => '=',
                _ => (b'a' + (rng.next_u64() % 26) as u8) as char,
            }
        })
        .collect()
}

fn random_request(rng: &mut SmallRng) -> Request {
    match rng.next_u64() % 4 {
        0 => Request::Prepare {
            query: random_string(rng, 24),
            spec: random_string(rng, 80),
        },
        1 => Request::Run {
            handle: rng.next_u64() as u32,
            engine: random_string(rng, 16),
        },
        2 => Request::RunParams {
            query: random_string(rng, 24),
            engine: random_string(rng, 16),
            spec: random_string(rng, 80),
        },
        _ => Request::Shutdown,
    }
}

fn random_response(rng: &mut SmallRng) -> Response {
    match rng.next_u64() % 5 {
        0 => Response::Prepared {
            handle: rng.next_u64() as u32,
            params_fp: rng.next_u64(),
        },
        1 => Response::Result(RunOutcome {
            engine: random_string(rng, 16),
            cache_hit: rng.next_u64().is_multiple_of(2),
            checksum: rng.next_u64(),
            rows: rng.next_u64(),
            params_fp: rng.next_u64(),
            planning_ns: rng.next_u64(),
            latency_ns: rng.next_u64(),
            wire_ns: rng.next_u64(),
            admission_wait_ns: rng.next_u64(),
            queue_wait_ns: rng.next_u64(),
            tasks: rng.next_u64(),
            morsels: rng.next_u64(),
            steals: rng.next_u64(),
            bytes_scanned: rng.next_u64(),
        }),
        2 => Response::Retry {
            inflight: rng.next_u64() as u32,
            max_inflight: rng.next_u64() as u32,
        },
        3 => Response::Error {
            code: ErrorCode::from_u8((rng.next_u64() % 10 + 1) as u8).unwrap(),
            message: random_string(rng, 120),
        },
        _ => Response::Bye,
    }
}

/// Split an encoded frame into (tag, payload) without the length word.
fn strip_header(frame: &[u8]) -> (u8, &[u8]) {
    (frame[4], &frame[5..])
}

#[test]
fn random_messages_round_trip() {
    let mut rng = rng();
    for _ in 0..500 {
        let req = random_request(&mut rng);
        let bytes = req.encode();
        let (tag, payload) = strip_header(&bytes);
        assert_eq!(Request::decode(tag, payload).unwrap(), req);

        let resp = random_response(&mut rng);
        let bytes = resp.encode();
        let (tag, payload) = strip_header(&bytes);
        assert_eq!(Response::decode(tag, payload).unwrap(), resp);
    }
}

#[test]
fn truncating_a_valid_frame_never_panics() {
    let mut rng = rng();
    for _ in 0..200 {
        let bytes = random_request(&mut rng).encode();
        for cut in 0..bytes.len() {
            let mut partial = std::io::Cursor::new(&bytes[..cut]);
            match read_frame(&mut partial) {
                // A clean cut at byte 0 is an orderly close; anywhere
                // else the codec must call it damage, never a frame.
                Ok(FrameRead::Closed) => assert_eq!(cut, 0),
                Ok(FrameRead::Frame { .. }) => {
                    panic!("decoded a frame from a {cut}-byte prefix of {}", bytes.len())
                }
                Ok(FrameRead::Idle) => panic!("Idle from a finite cursor"),
                Err(FrameReadError::Truncated) => {}
                Err(e) => panic!("unexpected classification {e:?} at cut {cut}"),
            }
        }
        // And the payload-level decoder must reject every proper prefix.
        let (tag, payload) = strip_header(&bytes);
        for cut in 0..payload.len() {
            assert!(
                Request::decode(tag, &payload[..cut]).is_err(),
                "prefix of length {cut} decoded"
            );
        }
    }
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    let mut rng = rng();
    for _ in 0..500 {
        let len = (rng.next_u64() as usize) % 256;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut cursor = std::io::Cursor::new(bytes.as_slice());
        // Whatever happens, it is a value, not a panic.
        let _ = read_frame(&mut cursor);
        if len > 1 {
            let _ = Request::decode(bytes[0], &bytes[1..]);
            let _ = Response::decode(bytes[0], &bytes[1..]);
        }
    }
}

#[test]
fn max_len_frames_are_accepted_and_one_more_is_not() {
    // Exactly MAX_FRAME_LEN (tag + payload) round-trips through the
    // stream reader.
    let payload = vec![0x5a_u8; MAX_FRAME_LEN as usize - 1];
    let frame = encode_frame(0x01, &payload);
    let mut cursor = std::io::Cursor::new(frame.as_slice());
    match read_frame(&mut cursor).unwrap() {
        FrameRead::Frame { tag, payload: p } => {
            assert_eq!(tag, 0x01);
            assert_eq!(p.len(), MAX_FRAME_LEN as usize - 1);
        }
        other => panic!("got {other:?}"),
    }
    // One byte over: rejected from the length word alone, before any
    // allocation of the body.
    let mut over = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    over.push(0x01);
    let mut cursor = std::io::Cursor::new(over.as_slice());
    match read_frame(&mut cursor) {
        Err(FrameReadError::Oversized(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
        other => panic!("got {other:?}"),
    }
}

#[test]
fn unknown_tags_are_typed_not_fatal() {
    for tag in [0x00_u8, 0x05, 0x7f, 0x86, 0xff] {
        let err = Request::decode(tag, &[]).unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnknownTag);
    }
}
