//! Loopback integration: real TCP, real concurrency, verified against
//! the in-process oracle.

use dbep_core::prelude::*;
use dbep_net::{Client, ErrorCode, Response, Server, ServerConfig};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn tpch() -> Arc<Database> {
    static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::tpch::generate(0.01, 42))))
}

fn ssb() -> Arc<Database> {
    static DB: std::sync::OnceLock<Arc<Database>> = std::sync::OnceLock::new();
    Arc::clone(DB.get_or_init(|| Arc::new(dbep_datagen::ssb::generate(0.01, 42))))
}

fn start(cfg: ServerConfig) -> Server {
    Server::serve("127.0.0.1:0", Some(tpch()), Some(ssb()), cfg).expect("bind loopback")
}

/// Single-threaded oracle checksums for every query's default binding.
fn oracle_checksums() -> HashMap<QueryId, u64> {
    QueryId::ALL
        .iter()
        .map(|&q| {
            let db = if QueryId::SSB.contains(&q) { ssb() } else { tpch() };
            let result = run(Engine::Typer, q, &db, &ExecCfg::default());
            (q, result.checksum64())
        })
        .collect()
}

#[test]
fn eight_clients_run_all_twelve_queries_against_the_oracle() {
    let server = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let oracle = oracle_checksums();
    std::thread::scope(|s| {
        for c in 0..8 {
            let oracle = &oracle;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for (k, &q) in QueryId::ALL.iter().enumerate() {
                    // Interleave the two exchange shapes across clients.
                    let engine = Engine::SELECTABLE[(c + k) % Engine::SELECTABLE.len()];
                    let response = if (c + k) % 2 == 0 {
                        match client.prepare(q.name(), "").expect("prepare") {
                            Response::Prepared { handle, .. } => {
                                client.run(handle, engine.name()).expect("run")
                            }
                            other => panic!("prepare answered {other:?}"),
                        }
                    } else {
                        client
                            .run_params(q.name(), engine.name(), "")
                            .expect("run_params")
                    };
                    match response {
                        Response::Result(o) => {
                            assert_eq!(
                                o.checksum,
                                oracle[&q],
                                "client {c}: {} on {} diverged from the oracle",
                                q.name(),
                                engine.name()
                            );
                            assert!(o.rows > 0, "{} returned rows", q.name());
                        }
                        Response::Retry { .. } => {
                            // Admission pushback is a legal answer under
                            // concurrency; the blocking re-run must agree.
                            let retried = client
                                .run_params(q.name(), Engine::Typer.name(), "")
                                .expect("retried run");
                            if let Response::Result(o) = retried {
                                assert_eq!(o.checksum, oracle[&q]);
                            }
                        }
                        other => panic!("run answered {other:?}"),
                    }
                }
            });
        }
    });
    let stats = server.net_metrics();
    assert_eq!(stats.connections_total.get(), 8);
    assert!(stats.results_total.get() >= 8, "results flowed");
}

#[test]
fn non_default_specs_round_trip_the_params_machinery() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // A non-default binding must give a *different* result than the
    // default, and match the oracle run with the same binding.
    let spec = "year=1995;discount=3;quantity=30";
    let params = dbep_queries::params::Params::from_spec(QueryId::Q6, spec).unwrap();
    let session = Session::new(tpch());
    let expected = session.prepare_params(params).run(Engine::Typer);
    match client.run_params("q6", "typer", spec).expect("non-default q6") {
        Response::Result(o) => {
            assert_eq!(o.checksum, expected.checksum64());
            assert_ne!(o.checksum, oracle_checksums()[&QueryId::Q6]);
        }
        other => panic!("got {other:?}"),
    }
    // PREPARE reports the same params_fp the run does.
    let fp = match client.prepare("q6", spec).expect("prepare") {
        Response::Prepared { handle, params_fp } => {
            match client.run(handle, "tectorwise").expect("run handle") {
                Response::Result(o) => assert_eq!(o.params_fp, params_fp),
                other => panic!("got {other:?}"),
            }
            params_fp
        }
        other => panic!("got {other:?}"),
    };
    assert_ne!(fp, 0);
}

#[test]
fn typed_errors_keep_the_connection_alive() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Unknown query.
    match client.run_params("q99", "typer", "").expect("exchange") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownQuery),
        other => panic!("got {other:?}"),
    }
    // Unknown engine.
    match client.run_params("q6", "warp-drive", "").expect("exchange") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownEngine),
        other => panic!("got {other:?}"),
    }
    // Out-of-domain spec rejected by the validating constructors.
    match client.run_params("q6", "typer", "year=2024;discount=6;quantity=24") {
        Ok(Response::Error { code, message }) => {
            assert_eq!(code, ErrorCode::BadParams);
            assert!(message.contains("year"), "constructor reason: {message}");
        }
        other => panic!("got {other:?}"),
    }
    // Handle never prepared on this connection.
    match client.run(42, "typer").expect("exchange") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownHandle),
        other => panic!("got {other:?}"),
    }
    // Unknown frame tag: payload skipped via the length prefix.
    let bogus = dbep_net::frame::encode_frame(0x7e, b"??");
    client.stream().write_all(&bogus).expect("send bogus tag");
    match read_one(&mut client) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownTag),
        other => panic!("got {other:?}"),
    }
    // After all that abuse, the same connection still serves queries.
    match client.run_params("q6", "typer", "").expect("exchange") {
        Response::Result(o) => assert!(o.rows > 0),
        other => panic!("got {other:?}"),
    }
}

/// Read one response frame off the client's raw stream.
fn read_one(client: &mut Client) -> Response {
    use dbep_net::frame::{read_frame, FrameRead};
    match read_frame(client.stream()).expect("readable") {
        FrameRead::Frame { tag, payload } => Response::decode(tag, &payload).expect("decodable response"),
        other => panic!("expected a frame, got {other:?}"),
    }
}

#[test]
fn oversized_frames_answer_a_typed_error_then_close() {
    let server = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let huge = (dbep_net::MAX_FRAME_LEN + 1).to_le_bytes();
    client.stream().write_all(&huge).expect("send length");
    match read_one(&mut client) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("got {other:?}"),
    }
    // The stream is unrecoverable: the server closes it.
    if let Ok(resp) = client.run_params("q6", "typer", "") {
        panic!("connection should be closed, got {resp:?}");
    }
}

#[test]
fn truncated_frames_do_not_pin_a_worker() {
    let server = start(ServerConfig {
        read_timeout: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Announce a 100-byte frame, send 3 bytes, stall. The server's
    // read timeout must classify this as truncation and respond.
    let mut partial = Vec::new();
    partial.extend_from_slice(&100u32.to_le_bytes());
    partial.extend_from_slice(&[1, 2, 3]);
    client.stream().write_all(&partial).expect("send partial");
    match read_one(&mut client) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Truncated),
        other => panic!("got {other:?}"),
    }
}

#[test]
fn retry_surfaces_admission_saturation() {
    // A gate of one in-flight query: concurrent clients must observe
    // RETRY frames (or succeed) — never hang, never protocol-error.
    let server = start(ServerConfig {
        threads: 1,
        max_inflight: Some(1),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let outcomes: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let (mut ok, mut retry) = (0u64, 0u64);
                    for _ in 0..10 {
                        match client.run_params("q1", "typer", "").expect("exchange") {
                            Response::Result(_) => ok += 1,
                            Response::Retry { max_inflight, .. } => {
                                assert_eq!(max_inflight, 1);
                                retry += 1;
                            }
                            other => panic!("got {other:?}"),
                        }
                    }
                    (ok, retry)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total_ok: u64 = outcomes.iter().map(|(ok, _)| ok).sum();
    let total_retry: u64 = outcomes.iter().map(|(_, r)| r).sum();
    assert_eq!(total_ok + total_retry, 60, "every exchange was answered");
    assert!(total_ok > 0, "some queries ran");
    assert_eq!(server.net_metrics().retries_total.get(), total_retry);
}

#[test]
fn shutdown_frame_drains_gracefully() {
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    // Work, then drain.
    assert!(matches!(
        client.run_params("q6", "typer", "").expect("run"),
        Response::Result(_)
    ));
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Bye));
    server.join();
    // The listener is gone: new connections fail (allow the OS a beat).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn bounded_accept_refuses_past_the_cap() {
    let server = start(ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut a = Client::connect(addr).expect("conn 1");
    let mut b = Client::connect(addr).expect("conn 2");
    assert!(matches!(
        a.run_params("q6", "typer", "").expect("a runs"),
        Response::Result(_)
    ));
    assert!(matches!(
        b.run_params("q6", "typer", "").expect("b runs"),
        Response::Result(_)
    ));
    // Third connection: accepted at the TCP level, refused with BUSY.
    let mut c = Client::connect(addr).expect("conn 3 tcp");
    match read_one(&mut c) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("got {other:?}"),
    }
    // Dropping a live connection frees a slot (give the server a beat).
    drop(a);
    std::thread::sleep(Duration::from_millis(300));
    let mut d = Client::connect(addr).expect("conn 4 tcp");
    assert!(matches!(
        d.run_params("q6", "typer", "").expect("d runs"),
        Response::Result(_)
    ));
}

#[test]
fn query_log_records_carry_client_and_wire_fields() {
    use std::sync::Mutex;

    /// Shared sink observable while the server still owns the log.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf::default();
    let metrics = EngineMetrics::new();
    let server = start(ServerConfig {
        query_log: Some(Arc::new(QueryLog::new(Box::new(buf.clone())))),
        metrics: Some(Arc::clone(&metrics)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for (q, engine) in [("q6", "typer"), ("ssb-q1.1", "tectorwise")] {
        assert!(matches!(
            client.run_params(q, engine, "").expect("run"),
            Response::Result(_)
        ));
    }
    drop(client);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let records: Vec<QueryLogRecord> = text
        .lines()
        .map(|l| QueryLogRecord::parse(l).expect("parseable record"))
        .collect();
    assert_eq!(records.len(), 2);
    for r in &records {
        assert!(
            r.client.starts_with("127.0.0.1:"),
            "client addr recorded, got {:?}",
            r.client
        );
        assert!(r.latency_ns > 0);
        assert!(r.params_fp != 0);
    }
    assert_eq!(records[0].query, "q6");
    assert_eq!(records[1].query, "ssb-q1.1");
    // The sessions fed the shared metrics bundle and the server's
    // net_* series joined the same registry.
    assert_eq!(metrics.queries_completed.get(), 2);
    let names = metrics.registry().names();
    assert!(names.iter().any(|n| n == "net_frames_total"));
}
