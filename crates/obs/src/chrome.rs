//! Export of a [`TraceSink`](crate::ring::TraceSink) snapshot as Chrome
//! `trace_event` JSON.
//!
//! The output is the JSON-object form (`{"traceEvents": [...]}`) of the
//! Trace Event Format, loadable in `chrome://tracing` and Perfetto.
//! Every span becomes one complete event (`"ph": "X"`) with
//! microsecond `ts`/`dur` (fractional, so nanosecond precision
//! survives); nesting is by time containment per `tid`, which both
//! viewers render as stacked slices. The sink records only small
//! integer ids, so the exporter takes a [`TraceNames`] table mapping
//! query/stage/engine ordinals back to names.

use crate::json_escape;
use crate::ring::{SpanEvent, SpanKind, NO_STAGE};

/// Name table for one query ordinal.
pub struct TraceQuery {
    /// Query name (the Chrome event name of its query spans).
    pub name: String,
    /// Stage names in `QueryPlan::stages` order.
    pub stages: Vec<String>,
}

/// Ordinal-to-name tables supplied by the caller at export time.
pub struct TraceNames {
    /// Indexed by [`SpanEvent::query`].
    pub queries: Vec<TraceQuery>,
    /// Indexed by [`SpanEvent::engine`].
    pub engines: Vec<String>,
}

impl TraceNames {
    fn query_name(&self, ord: u16) -> &str {
        self.queries.get(ord as usize).map_or("?", |q| q.name.as_str())
    }

    fn stage_name(&self, query: u16, stage: u16) -> &str {
        self.queries
            .get(query as usize)
            .and_then(|q| q.stages.get(stage as usize))
            .map_or("?", String::as_str)
    }

    fn engine_name(&self, ord: u8) -> &str {
        self.engines.get(ord as usize).map_or("?", String::as_str)
    }
}

/// Fractional-microsecond rendering of a nanosecond count (`trace_event`
/// timestamps are doubles in microseconds).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render `events` (a [`TraceSink::snapshot`]) as Chrome `trace_event`
/// JSON. Events are sorted by start time with longer spans first at
/// equal starts, so parents precede their children in the stream.
///
/// [`TraceSink::snapshot`]: crate::ring::TraceSink::snapshot
pub fn chrome_trace(events: &[SpanEvent], names: &TraceNames) -> String {
    let mut ordered: Vec<&SpanEvent> = events.iter().collect();
    ordered.sort_by(|a, b| a.t0_ns.cmp(&b.t0_ns).then(b.dur_ns.cmp(&a.dur_ns)));
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    for (i, ev) in ordered.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let name = match ev.kind {
            SpanKind::Query => names.query_name(ev.query).to_string(),
            SpanKind::Stage => names.stage_name(ev.query, ev.stage).to_string(),
            SpanKind::Morsel => "morsel".to_string(),
        };
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 1, \"tid\": {}, \"args\": {{\"query\": \"{}\", \"engine\": \"{}\", \"run\": {}",
            json_escape(&name),
            ev.kind.name(),
            us(ev.t0_ns),
            us(ev.dur_ns),
            ev.tid,
            json_escape(names.query_name(ev.query)),
            json_escape(names.engine_name(ev.engine)),
            ev.run_seq,
        ));
        if ev.stage != NO_STAGE {
            out.push_str(&format!(", \"stage\": {}", ev.stage));
        }
        if ev.kind == SpanKind::Morsel {
            out.push_str(&format!(", \"rows\": {}", ev.rows));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{QueryTrace, TraceSink};
    use crate::{json_field, json_str, json_u64};

    fn names() -> TraceNames {
        TraceNames {
            queries: vec![
                TraceQuery {
                    name: "q6".into(),
                    stages: vec!["scan-lineitem".into()],
                },
                TraceQuery {
                    name: "q3".into(),
                    stages: vec!["build-customer".into(), "probe-orders".into()],
                },
            ],
            engines: vec!["typer".into(), "tectorwise".into()],
        }
    }

    /// Split the traceEvents array into the individual event objects
    /// (events are flat objects with one nested `args` object).
    fn split_events(doc: &str) -> Vec<String> {
        let body = doc
            .split_once("\"traceEvents\": [")
            .expect("traceEvents array")
            .1
            .strip_suffix("]}")
            .expect("closing brackets");
        let mut events = Vec::new();
        let mut depth = 0usize;
        let mut start = None;
        for (i, c) in body.char_indices() {
            match c {
                '{' => {
                    if depth == 0 {
                        start = Some(i);
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        events.push(body[start.take().expect("open brace")..=i].to_string());
                    }
                }
                _ => {}
            }
        }
        events
    }

    #[test]
    fn export_has_valid_trace_event_fields() {
        let sink = TraceSink::new(64);
        let qt = QueryTrace::new(&sink, 1, 1);
        {
            let _q = qt.query_span();
            let _s = qt.stage_span(0);
            qt.record_morsel(qt.now_ns(), 128);
        }
        let doc = chrome_trace(&sink.snapshot(), &names());
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        let events = split_events(&doc);
        assert_eq!(events.len(), 3);
        for e in &events {
            // Every event carries the required trace_event fields.
            assert_eq!(json_str(e, "ph").as_deref(), Some("X"));
            assert!(json_str(e, "name").is_some());
            assert!(json_str(e, "cat").is_some());
            assert!(json_field(e, "ts").is_some());
            assert!(json_field(e, "dur").is_some());
            assert_eq!(json_u64(e, "pid"), Some(1));
            assert!(json_u64(e, "tid").is_some());
        }
        let cats: Vec<String> = events.iter().filter_map(|e| json_str(e, "cat")).collect();
        assert_eq!(cats, vec!["query", "stage", "morsel"], "parents precede children");
        assert!(events[1].contains("\"name\": \"build-customer\""));
        assert!(events[2].contains("\"rows\": 128"));
        assert!(events.iter().all(|e| e.contains("\"engine\": \"tectorwise\"")));
    }

    #[test]
    fn unknown_ordinals_render_as_placeholders() {
        let sink = TraceSink::new(8);
        let qt = QueryTrace::new(&sink, 42, 9);
        drop(qt.query_span());
        let doc = chrome_trace(&sink.snapshot(), &names());
        assert!(doc.contains("\"name\": \"?\""));
        assert!(doc.contains("\"engine\": \"?\""));
    }

    #[test]
    fn timestamps_are_fractional_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_007), "1000.007");
    }
}
