//! `dbep-obs` — the observability layer of the reproduction.
//!
//! The paper's whole argument is *measurement* (Table 1 attributes
//! cycles, instructions and cache misses per paradigm), yet a serving
//! engine needs more than offline benchmark tables: it needs to see
//! where inside a query time goes, how the shared scheduler behaves
//! under load, and what actually ran. This crate supplies the three
//! substrates, std-only and dependency-free like the rest of the
//! workspace:
//!
//! * [`ring`] — a lock-free ring-buffer **span sink** ([`TraceSink`])
//!   recording `query → stage → morsel-batch` spans via RAII guards,
//!   cheap enough to leave attached in serving paths.
//! * [`chrome`] — export of a sink snapshot as Chrome `trace_event`
//!   JSON, loadable in `chrome://tracing` / Perfetto.
//! * [`metrics`] — a **metrics registry** of named counters, gauges and
//!   fixed-bucket log-linear histograms, snapshot-exportable as JSON
//!   and Prometheus text exposition.
//! * [`log`] — the **structured query log**: one JSONL record per
//!   `Session` run (query, engine, parameter fingerprint, stage
//!   timings, scheduler stats), the capture substrate for workload
//!   mining (ROADMAP item 5).
//!
//! This crate sits below the scheduler in the dependency order: it
//! knows nothing about queries, engines or plans. Callers map their
//! enums to small integers when recording and supply name tables when
//! exporting ([`chrome::TraceNames`]).

pub mod chrome;
pub mod log;
pub mod metrics;
pub mod ring;

pub use chrome::{chrome_trace, TraceNames, TraceQuery};
pub use log::{QueryLog, QueryLogRecord};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use ring::{QueryTrace, SpanEvent, SpanGuard, SpanKind, TraceSink};

/// FNV-1a over `bytes`: the stable 64-bit fingerprint used to identify
/// parameter bindings in the query log (stable across runs and builds,
/// unlike `std`'s `DefaultHasher`).
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Minimal JSON string escaping shared by the exporters (the workspace
/// is dependency-free; values we emit are numbers, booleans and short
/// identifier-like strings).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract the raw text of `"key": <value>` from a flat JSON object
/// (no nested objects under the key). Returns the value token with
/// surrounding whitespace trimmed. This is *not* a JSON parser — it is
/// exactly enough to round-trip the flat records this crate writes.
pub(crate) fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut esc = false;
        let mut idx = None;
        for (i, c) in stripped.char_indices() {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                idx = Some(i + 2); // include both quotes
                break;
            }
        }
        idx?
    } else if let Some(stripped) = rest.strip_prefix('[') {
        stripped.find(']')? + 2
    } else {
        rest.find([',', '}'])?
    };
    Some(rest[..end].trim())
}

/// `json_field` for u64 values.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_field(line, key)?.parse().ok()
}

/// `json_field` for string values (unescapes the common escapes).
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// `json_field` for bool values.
pub fn json_bool(line: &str, key: &str) -> Option<bool> {
    match json_field(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// `json_field` for `[u64, ...]` arrays.
pub fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let raw = json_field(line, key)?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner.split(',').map(|t| t.trim().parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64(b"q6"), fingerprint64(b"q6"));
        assert_ne!(fingerprint64(b"q6"), fingerprint64(b"q9"));
    }

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn field_extraction_roundtrips() {
        let line = r#"{"a": 12, "s": "he\"llo", "b": true, "v": [1, 2, 3], "e": [], "last": 9}"#;
        assert_eq!(json_u64(line, "a"), Some(12));
        assert_eq!(json_str(line, "s").as_deref(), Some("he\"llo"));
        assert_eq!(json_bool(line, "b"), Some(true));
        assert_eq!(json_u64_array(line, "v"), Some(vec![1, 2, 3]));
        assert_eq!(json_u64_array(line, "e"), Some(vec![]));
        assert_eq!(json_u64(line, "last"), Some(9));
        assert_eq!(json_u64(line, "missing"), None);
    }
}
