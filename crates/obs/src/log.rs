//! The structured query log: one JSONL record per query execution.
//!
//! A serving session appends one flat JSON object per run — query,
//! engine, parameter fingerprint, cache/planning facts, latency, the
//! scheduler-side `RunStats`, and per-stage wall times when a trace was
//! attached. The format is the capture substrate for workload mining
//! (ROADMAP item 5): flat records, one per line, parseable with this
//! module's [`QueryLogRecord::parse`] (and by any JSON tooling), and
//! replayable — a record names everything needed to re-prepare and
//! re-run the execution it describes.

use crate::{json_bool, json_escape, json_str, json_u64, json_u64_array};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One query execution, as logged. All fields are owned values so a
/// record round-trips `to_json_line` → [`QueryLogRecord::parse`]
/// exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryLogRecord {
    /// Position in the log (assigned by [`QueryLog::append`]).
    pub seq: u64,
    /// Milliseconds since the Unix epoch at completion time.
    pub unix_ms: u64,
    /// Query name (`QueryId::name`).
    pub query: String,
    /// Engine name the run was requested under (`Engine::name`).
    pub engine: String,
    /// Peer address of the client the run was served to over the wire
    /// (empty for in-process runs).
    pub client: String,
    /// Stable fingerprint of the bound parameters
    /// ([`crate::fingerprint64`] over their debug rendering).
    pub params_fp: u64,
    /// Whether preparation hit the session plan cache.
    pub cache_hit: bool,
    /// Preparation wall time in nanoseconds.
    pub planning_ns: u64,
    /// End-to-end execution wall time in nanoseconds.
    pub latency_ns: u64,
    /// Server-side wire overhead in nanoseconds — request decode plus
    /// response encode, excluding execution (0 for in-process runs).
    pub wire_ns: u64,
    /// Result rows produced.
    pub rows: u64,
    /// Morsels executed on pool workers (`RunStats::morsels_executed`).
    pub morsels_executed: u64,
    /// Summed submit-to-first-morsel wait (`RunStats::queue_wait_ns`).
    pub queue_wait_ns: u64,
    /// Admission-gate wait (`RunStats::admission_wait_ns`).
    pub admission_wait_ns: u64,
    /// Pipelines submitted as pool tasks.
    pub tasks: u64,
    /// Cross-query task switches (`RunStats::steals`).
    pub steals: u64,
    /// Column-payload bytes scanned.
    pub bytes_scanned: u64,
    /// Per-stage wall times in nanoseconds (empty when no stage trace
    /// was attached to the run).
    pub stage_ns: Vec<u64>,
}

impl QueryLogRecord {
    /// Render as one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let stages: Vec<String> = self.stage_ns.iter().map(u64::to_string).collect();
        format!(
            "{{\"seq\": {}, \"unix_ms\": {}, \"query\": \"{}\", \"engine\": \"{}\", \
             \"client\": \"{}\", \"params_fp\": {}, \"cache_hit\": {}, \"planning_ns\": {}, \
             \"latency_ns\": {}, \"wire_ns\": {}, \
             \"rows\": {}, \"morsels_executed\": {}, \"queue_wait_ns\": {}, \
             \"admission_wait_ns\": {}, \"tasks\": {}, \"steals\": {}, \"bytes_scanned\": {}, \
             \"stage_ns\": [{}]}}",
            self.seq,
            self.unix_ms,
            json_escape(&self.query),
            json_escape(&self.engine),
            json_escape(&self.client),
            self.params_fp,
            self.cache_hit,
            self.planning_ns,
            self.latency_ns,
            self.wire_ns,
            self.rows,
            self.morsels_executed,
            self.queue_wait_ns,
            self.admission_wait_ns,
            self.tasks,
            self.steals,
            self.bytes_scanned,
            stages.join(", ")
        )
    }

    /// Parse one log line back into a record; `None` if any field is
    /// missing or malformed.
    pub fn parse(line: &str) -> Option<QueryLogRecord> {
        Some(QueryLogRecord {
            seq: json_u64(line, "seq")?,
            unix_ms: json_u64(line, "unix_ms")?,
            query: json_str(line, "query")?,
            engine: json_str(line, "engine")?,
            // Wire fields arrived with the network front-end; records
            // written before it simply default them, so old logs parse.
            client: json_str(line, "client").unwrap_or_default(),
            params_fp: json_u64(line, "params_fp")?,
            cache_hit: json_bool(line, "cache_hit")?,
            planning_ns: json_u64(line, "planning_ns")?,
            latency_ns: json_u64(line, "latency_ns")?,
            wire_ns: json_u64(line, "wire_ns").unwrap_or_default(),
            rows: json_u64(line, "rows")?,
            morsels_executed: json_u64(line, "morsels_executed")?,
            queue_wait_ns: json_u64(line, "queue_wait_ns")?,
            admission_wait_ns: json_u64(line, "admission_wait_ns")?,
            tasks: json_u64(line, "tasks")?,
            steals: json_u64(line, "steals")?,
            bytes_scanned: json_u64(line, "bytes_scanned")?,
            stage_ns: json_u64_array(line, "stage_ns")?,
        })
    }
}

/// An append-only JSONL sink for [`QueryLogRecord`]s, shareable across
/// serving threads. Sequence numbers are assigned at append time;
/// writes are line-atomic (one short mutex section per record) and
/// flushed per append, so a crashed process leaves whole records only.
pub struct QueryLog {
    seq: AtomicU64,
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl QueryLog {
    /// Log into any writer (tests use `Vec<u8>`-backed buffers; see
    /// [`QueryLog::create`] for the file path).
    pub fn new(out: Box<dyn Write + Send>) -> QueryLog {
        QueryLog {
            seq: AtomicU64::new(0),
            out: Mutex::new(BufWriter::new(out)),
        }
    }

    /// Create (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<QueryLog> {
        let file = std::fs::File::create(path)?;
        Ok(QueryLog::new(Box::new(file)))
    }

    /// Append one record, assigning its sequence number and completion
    /// timestamp. Returns the assigned sequence number.
    pub fn append(&self, mut record: QueryLogRecord) -> u64 {
        // ORDERING: Relaxed — unique-id dispenser; the mutex below
        // orders the actual writes.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        record.unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut out = self.out.lock().expect("query log writer");
        let _ = writeln!(out, "{}", record.to_json_line());
        let _ = out.flush();
        seq
    }

    /// Records appended so far.
    pub fn len(&self) -> u64 {
        // ORDERING: Relaxed — stats read.
        self.seq.load(Ordering::Relaxed)
    }

    /// True before the first append.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample() -> QueryLogRecord {
        QueryLogRecord {
            seq: 0,
            unix_ms: 0,
            query: "q3".into(),
            engine: "adaptive".into(),
            client: "127.0.0.1:50412".into(),
            params_fp: 0xdead_beef_cafe_f00d,
            cache_hit: true,
            planning_ns: 1200,
            latency_ns: 8_000_000,
            wire_ns: 4200,
            rows: 11620,
            morsels_executed: 42,
            queue_wait_ns: 900,
            admission_wait_ns: 30,
            tasks: 3,
            steals: 2,
            bytes_scanned: 123_456_789,
            stage_ns: vec![100, 200, 300],
        }
    }

    #[test]
    fn records_roundtrip() {
        let r = sample();
        assert_eq!(QueryLogRecord::parse(&r.to_json_line()), Some(r));
        let empty_stages = QueryLogRecord {
            stage_ns: vec![],
            ..sample()
        };
        assert_eq!(
            QueryLogRecord::parse(&empty_stages.to_json_line()),
            Some(empty_stages)
        );
        assert_eq!(QueryLogRecord::parse("{\"seq\": 1}"), None);
    }

    #[test]
    fn records_without_wire_fields_still_parse() {
        // A line written before the network front-end existed: no
        // `client`, no `wire_ns`. It must parse with defaults.
        let legacy = "{\"seq\": 7, \"unix_ms\": 5, \"query\": \"q6\", \"engine\": \"typer\", \
                      \"params_fp\": 9, \"cache_hit\": false, \"planning_ns\": 1, \
                      \"latency_ns\": 2, \"rows\": 1, \"morsels_executed\": 0, \
                      \"queue_wait_ns\": 0, \"admission_wait_ns\": 0, \"tasks\": 0, \
                      \"steals\": 0, \"bytes_scanned\": 0, \"stage_ns\": []}";
        let rec = QueryLogRecord::parse(legacy).expect("legacy line parses");
        assert_eq!(rec.client, "");
        assert_eq!(rec.wire_ns, 0);
        assert_eq!(rec.query, "q6");
    }

    /// A shared `Vec<u8>` sink observable after the log is dropped.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn appends_assign_seqs_and_write_lines() {
        let buf = SharedBuf::default();
        let log = QueryLog::new(Box::new(buf.clone()));
        assert!(log.is_empty());
        assert_eq!(log.append(sample()), 0);
        assert_eq!(log.append(sample()), 1);
        assert_eq!(log.len(), 2);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let rec = QueryLogRecord::parse(line).expect("parseable line");
            assert_eq!(rec.seq, i as u64);
            assert!(rec.unix_ms > 0, "timestamp stamped at append");
            assert_eq!(rec.query, "q3");
        }
    }

    #[test]
    fn concurrent_appends_keep_lines_whole() {
        let buf = SharedBuf::default();
        let log = QueryLog::new(Box::new(buf.clone()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        log.append(sample());
                    }
                });
            }
        });
        assert_eq!(log.len(), 200);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let mut seqs: Vec<u64> = text
            .lines()
            .map(|l| QueryLogRecord::parse(l).expect("whole line").seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
    }
}
