//! The metrics registry: named counters, gauges and log-linear
//! histograms, exportable as JSON and Prometheus text exposition.
//!
//! Registration takes one short mutex section and hands back an `Arc`
//! handle; updates on the handles are single relaxed atomic operations,
//! cheap enough for per-query (not per-tuple) call sites in serving
//! paths. Names must be `snake_case` and every metric carries a help
//! string — both enforced at registration (and by the `dbep-lint`
//! `metrics` rule over the call sites).
//!
//! Histograms use **fixed log-linear buckets**: values 0–7 get exact
//! buckets, then every power-of-two octave splits into 4 linear
//! sub-buckets, giving ≤ 25 % relative bucket width over the full
//! `u64` range with a fixed 252-slot table — no configuration, and any
//! two histograms can be merged bucket-wise.

use crate::json_escape;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — monotonic stats counter; snapshots are
        // approximate by design and publish no data.
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — stats read, as above.
        self.v.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value (queue depths, in-flight counts).
#[derive(Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        // ORDERING: Relaxed — last-writer-wins stats value.
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adjust by `d` (negative to decrement).
    #[inline]
    pub fn add(&self, d: i64) {
        // ORDERING: Relaxed — stats adjustment.
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ORDERING: Relaxed — stats read.
        self.v.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power-of-two octave (2 mantissa bits).
const SUB: usize = 4;
/// Exact buckets for values `0..2*SUB`.
const EXACT: usize = 2 * SUB;
/// Total fixed bucket count covering all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = EXACT + (64 - 3) * SUB;

/// Bucket index for `v` (log-linear; monotone in `v`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (octave - 2)) & 3) as usize;
    EXACT + (octave - 3) * SUB + sub
}

/// Largest value landing in bucket `i` (inclusive; saturates at
/// `u64::MAX` for the top buckets).
pub fn bucket_upper(i: usize) -> u64 {
    if i < EXACT {
        return i as u64;
    }
    let octave = (i - EXACT) / SUB + 3;
    let sub = ((i - EXACT) % SUB) as u128;
    let upper = (1u128 << octave) + (sub + 1) * (1u128 << (octave - 2)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A fixed-bucket log-linear histogram (see the module docs).
pub struct Histogram {
    buckets: Box<[AtomicU64; HISTOGRAM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        // ORDERING: Relaxed — stats counters (bucket, count, sum);
        // snapshots are approximate by design.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — stats read.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        // ORDERING: Relaxed — stats read.
        self.sum.load(Ordering::Relaxed)
    }

    /// Occupied buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                // ORDERING: Relaxed — stats read.
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(i), c))
            })
            .collect()
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket where the cumulative count crosses `q * count`. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (upper, c) in self.buckets() {
            seen += c;
            if seen >= rank {
                return upper;
            }
        }
        u64::MAX
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics. Registration is idempotent: asking
/// for an already-registered name of the same kind returns the
/// existing handle (so layered components can share metrics);
/// re-registering under a different kind panics.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T: Default>(
        &self,
        name: &str,
        help: &str,
        wrap: impl Fn(Arc<T>) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        assert!(valid_name(name), "metric name {name:?} is not snake_case");
        assert!(!help.trim().is_empty(), "metric {name:?} needs a help string");
        let mut entries = self.entries.lock().expect("metrics registry");
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return unwrap(&e.metric).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a {}", e.metric.type_name())
            });
        }
        let handle = Arc::new(T::default());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            metric: wrap(Arc::clone(&handle)),
        });
        handle
    }

    /// Register (or fetch) a counter. Panics unless `name` is
    /// snake_case and `help` is non-empty.
    pub fn register_counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(name, help, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Register (or fetch) a gauge. Same validation as counters.
    pub fn register_gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(name, help, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Register (or fetch) a histogram. Same validation as counters.
    pub fn register_histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register(name, help, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Registered metric names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.entries
            .lock()
            .expect("metrics registry")
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Snapshot as a JSON document:
    /// `{"metrics": [{"name", "type", "help", ...}, ...]}`.
    pub fn snapshot_json(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry");
        let mut out = String::from("{\"metrics\": [");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"type\": \"{}\", \"help\": \"{}\", ",
                json_escape(&e.name),
                e.metric.type_name(),
                json_escape(&e.help)
            ));
            match &e.metric {
                Metric::Counter(c) => out.push_str(&format!("\"value\": {}}}", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("\"value\": {}}}", g.get())),
                Metric::Histogram(h) => {
                    out.push_str("\"buckets\": [");
                    for (j, (upper, count)) in h.buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("{{\"le\": {upper}, \"count\": {count}}}"));
                    }
                    out.push_str(&format!(
                        "], \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99)
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Snapshot in the Prometheus text exposition format (one
    /// `# HELP`/`# TYPE` pair per metric; histograms as cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`).
    pub fn prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry");
        let mut out = String::new();
        for e in entries.iter() {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
            match &e.metric {
                Metric::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Metric::Histogram(h) => {
                    let mut cumulative = 0;
                    for (upper, count) in h.buckets() {
                        cumulative += count;
                        out.push_str(&format!("{}_bucket{{le=\"{upper}\"}} {cumulative}\n", e.name));
                    }
                    out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", e.name, h.count()));
                    out.push_str(&format!("{}_sum {}\n", e.name, h.sum()));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update() {
        let r = Registry::new();
        let c = r.register_counter("queries_started", "Query executions begun.");
        let g = r.register_gauge("queue_depth", "Tasks queued on the pool.");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 5);
        // Idempotent re-registration returns the same handle.
        assert_eq!(
            r.register_counter("queries_started", "Query executions begun.")
                .get(),
            5
        );
        assert_eq!(r.names(), vec!["queries_started", "queue_depth"]);
    }

    #[test]
    #[should_panic(expected = "not snake_case")]
    fn camel_case_names_are_rejected() {
        Registry::new().register_counter("queriesStarted", "help text");
    }

    #[test]
    #[should_panic(expected = "needs a help string")]
    fn empty_help_is_rejected() {
        Registry::new().register_gauge("queue_depth", "  ");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.register_counter("x_total", "help");
        r.register_gauge("x_total", "help");
    }

    #[test]
    fn bucket_boundaries_are_exact_and_monotone() {
        // Property sweep: indices are monotone in v, every v lands at or
        // below its bucket's upper bound, and the next bucket's upper
        // bound is strictly larger.
        let mut probes: Vec<u64> = (0..200).collect();
        for shift in 3..63 {
            for delta in [-1i64, 0, 1] {
                probes.push(((1u64 << shift) as i64 + delta) as u64);
            }
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev_idx = 0;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < HISTOGRAM_BUCKETS, "index {idx} out of table for {v}");
            assert!(idx >= prev_idx, "index not monotone at {v}");
            assert!(
                v <= bucket_upper(idx),
                "{v} above its bucket bound {}",
                bucket_upper(idx)
            );
            if idx > 0 {
                assert!(
                    v > bucket_upper(idx - 1),
                    "{v} also fits the previous bucket (upper {})",
                    bucket_upper(idx - 1)
                );
            }
            prev_idx = idx;
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Log-linear with 4 sub-buckets: bucket width / lower bound
        // <= 25% for values past the exact range.
        for i in EXACT..HISTOGRAM_BUCKETS - SUB {
            let lo = bucket_upper(i - 1) as f64 + 1.0;
            let hi = bucket_upper(i) as f64;
            assert!((hi - lo) / lo <= 0.25 + 1e-9, "bucket {i}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..EXACT as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn histogram_counts_sums_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        assert!((450..=600).contains(&p50), "p50 {p50} off the median");
        let p99 = h.quantile(0.99);
        assert!((950..=1100).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= 1000);
        let total: u64 = h.buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn histogram_concurrent_records_sum() {
        let h = Histogram::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..1000 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8 * 999 * 1000 / 2);
    }

    #[test]
    fn exports_are_well_formed() {
        let r = Registry::new();
        r.register_counter("queries_total", "Total query executions.")
            .add(3);
        r.register_gauge("inflight", "Queries past admission.").set(-1);
        let h = r.register_histogram("latency_us", "Query latency in microseconds.");
        h.record(10);
        h.record(5000);
        let json = r.snapshot_json();
        assert!(json.starts_with("{\"metrics\": ["));
        assert!(json.contains("\"name\": \"queries_total\""));
        assert!(json.contains("\"value\": 3"));
        assert!(json.contains("\"value\": -1"));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"count\": 2"));
        let prom = r.prometheus();
        assert!(prom.contains("# HELP queries_total Total query executions.\n"));
        assert!(prom.contains("# TYPE queries_total counter\n"));
        assert!(prom.contains("queries_total 3\n"));
        assert!(prom.contains("inflight -1\n"));
        assert!(prom.contains("latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("latency_us_sum 5010\n"));
        assert!(prom.contains("latency_us_count 2\n"));
    }
}
