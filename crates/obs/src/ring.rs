//! The lock-free span sink: a fixed-capacity ring of seqlock slots.
//!
//! Execution code (scheduler workers, spawn-per-query scoped threads,
//! client threads driving pipelines) records [`SpanEvent`]s into a
//! shared [`TraceSink`] without locks: a writer claims a ticket with
//! one `fetch_add`, then publishes the event into `ticket % capacity`
//! under a per-slot sequence word (seqlock protocol). When the ring
//! wraps, the **newest events win** — like Chrome's own trace ring, the
//! sink keeps the most recent window and counts what it overwrote
//! ([`TraceSink::dropped`]).
//!
//! Overhead budget: recording one event is one `fetch_add` plus six
//! relaxed stores (and one clock read at span start) — a handful of
//! atomics per *morsel batch*, not per tuple, and nothing at all when
//! no sink is attached (one `Option` test).
//!
//! Readers ([`TraceSink::snapshot`]) validate each slot's sequence word
//! before and after copying it and discard torn slots, so a snapshot
//! taken while writers are live yields only consistent events. The
//! intended use reads after the traced work quiesced (end of run), when
//! every published event is consistent by the thread-join edge.

use std::sync::atomic::{fence, AtomicU16, AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// What a span covers, coarse-to-fine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One full query execution (admission to result).
    Query,
    /// One pipeline stage of a plan (a `QueryPlan::stages` index).
    Stage,
    /// One executed morsel batch inside a stage.
    Morsel,
}

impl SpanKind {
    /// Stable lowercase label (the Chrome export's `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Stage => "stage",
            SpanKind::Morsel => "morsel",
        }
    }

    fn from_u8(v: u8) -> SpanKind {
        match v {
            0 => SpanKind::Query,
            1 => SpanKind::Stage,
            _ => SpanKind::Morsel,
        }
    }
}

/// Stage index used when a span has no stage (query spans).
pub const NO_STAGE: u16 = u16::MAX;

/// One recorded span. Identity fields are small integers — the sink
/// knows nothing about queries or engines; callers map their enums and
/// supply name tables at export time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    pub kind: SpanKind,
    /// Caller-side query ordinal (e.g. index into `QueryId::ALL`).
    pub query: u16,
    /// Caller-side engine ordinal.
    pub engine: u8,
    /// Stage index, [`NO_STAGE`] for query spans.
    pub stage: u16,
    /// Small per-OS-thread id (see [`thread_tid`]).
    pub tid: u16,
    /// Per-sink query-run sequence number tying spans of one run.
    pub run_seq: u32,
    /// Rows covered (morsel batches; 0 otherwise).
    pub rows: u32,
    /// Span start, nanoseconds since the sink's epoch.
    pub t0_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanEvent {
    fn pack(&self) -> [u64; 4] {
        let w0 = (self.kind as u64)
            | ((self.engine as u64) << 8)
            | ((self.stage as u64) << 16)
            | ((self.query as u64) << 32)
            | ((self.tid as u64) << 48);
        let w1 = (self.run_seq as u64) | ((self.rows as u64) << 32);
        [w0, w1, self.t0_ns, self.dur_ns]
    }

    fn unpack(w: [u64; 4]) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::from_u8((w[0] & 0xff) as u8),
            engine: ((w[0] >> 8) & 0xff) as u8,
            stage: ((w[0] >> 16) & 0xffff) as u16,
            query: ((w[0] >> 32) & 0xffff) as u16,
            tid: ((w[0] >> 48) & 0xffff) as u16,
            run_seq: (w[1] & 0xffff_ffff) as u32,
            rows: (w[1] >> 32) as u32,
            t0_ns: w[2],
            dur_ns: w[3],
        }
    }
}

/// Slot states below this are not published events: 0 = never written,
/// 1 = write in progress. Published slots store `ticket + SEQ_BASE`.
const SEQ_BASE: u64 = 2;
const SEQ_EMPTY: u64 = 0;
const SEQ_WRITING: u64 = 1;

struct Slot {
    /// Seqlock word: [`SEQ_EMPTY`], [`SEQ_WRITING`], or
    /// `ticket + SEQ_BASE` once the event at that ticket is published.
    seq: AtomicU64,
    data: [AtomicU64; 4],
}

/// The shared event sink. See the module docs for the protocol.
pub struct TraceSink {
    slots: Box<[Slot]>,
    /// Next write ticket; `ticket % slots.len()` addresses the slot.
    head: AtomicU64,
    /// Per-sink query-run sequence source (see [`QueryTrace::new`]).
    next_run: AtomicU64,
    epoch: Instant,
}

impl TraceSink {
    /// Sink holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn new(capacity: usize) -> TraceSink {
        let cap = capacity.max(8).next_power_of_two();
        TraceSink {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(SEQ_EMPTY),
                    data: Default::default(),
                })
                .collect(),
            head: AtomicU64::new(0),
            next_run: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Default capacity: 64K events (~2.5 MiB), several seconds of
    /// serving traffic at morsel-batch granularity.
    pub fn with_default_capacity() -> TraceSink {
        TraceSink::new(1 << 16)
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds since the sink's epoch (the time base of every
    /// recorded span).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Events recorded so far (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        // ORDERING: Relaxed — monotonic stats read; no data is
        // published through the head counter.
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to wrap-around: the ring keeps the newest
    /// `capacity()` events, so this is how many old ones were
    /// overwritten (the drop-on-full counter).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Record one event (lock-free; callable from any thread).
    pub fn push(&self, ev: SpanEvent) {
        // ORDERING: Relaxed — the ticket only picks a slot; the slot's
        // own seq word publishes the payload.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        let words = ev.pack();
        // ORDERING: Release on both seq stores — the WRITING marker
        // must be visible before any payload word changes (so a
        // concurrent reader's first seq load flags the slot as torn),
        // and the final store must order after the payload stores (so a
        // reader that sees the published ticket sees the full payload).
        slot.seq.store(SEQ_WRITING, Ordering::Release);
        for (d, w) in slot.data.iter().zip(words) {
            // ORDERING: Relaxed — payload words; the seq word's
            // release/acquire pair carries them.
            d.store(w, Ordering::Relaxed);
        }
        slot.seq.store(ticket + SEQ_BASE, Ordering::Release);
    }

    /// Copy out every consistent published event, oldest first. Slots
    /// mid-write (or overwritten during the copy) are skipped — with
    /// quiesced writers the snapshot is exact.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // ORDERING: Acquire — pairs with the writer's publishing
            // release store so the payload reads below see the words
            // that belong to this sequence value.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 < SEQ_BASE {
                continue;
            }
            let mut words = [0u64; 4];
            for (w, d) in words.iter_mut().zip(&slot.data) {
                // ORDERING: Relaxed — validated by the seq re-check.
                *w = d.load(Ordering::Relaxed);
            }
            // ORDERING: Acquire fence + relaxed re-load — the seqlock
            // validation read: the fence keeps the payload loads above
            // from drifting past the re-check (crossbeam's pattern).
            fence(Ordering::Acquire);
            // ORDERING: Relaxed — ordered by the fence directly above.
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn: overwritten while copying
            }
            out.push((s1 - SEQ_BASE, SpanEvent::unpack(words)));
        }
        out.sort_by_key(|(ticket, _)| *ticket);
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

/// Small dense per-OS-thread id for trace attribution (Chrome `tid`).
/// Assigned on first use per thread; wraps at 65536 threads.
pub fn thread_tid() -> u16 {
    static NEXT: AtomicU16 = AtomicU16::new(0);
    thread_local! {
        static TID: u16 =
            // ORDERING: Relaxed — a unique-id dispenser; no data is
            // published through it.
            NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Per-run recording handle: carries the identity every span of one
/// query execution shares (run sequence, query ordinal, engine) plus
/// the *current stage* morsel batches attribute themselves to.
///
/// Stages of one run execute sequentially (pipeline breakers are
/// barriers), so a single current-stage word per run is race-free in
/// practice; morsel events racing a stage transition would at worst
/// carry the neighbouring stage index — attribution noise, not
/// corruption.
pub struct QueryTrace<'a> {
    sink: &'a TraceSink,
    run_seq: u32,
    query: u16,
    engine: AtomicU8,
    cur_stage: AtomicU16,
}

impl<'a> QueryTrace<'a> {
    /// New handle for one query run; draws the next run sequence
    /// number from the sink.
    pub fn new(sink: &'a TraceSink, query: u16, engine: u8) -> QueryTrace<'a> {
        // ORDERING: Relaxed — unique-id dispenser.
        let run_seq = sink.next_run.fetch_add(1, Ordering::Relaxed) as u32;
        QueryTrace {
            sink,
            run_seq,
            query,
            engine: AtomicU8::new(engine),
            cur_stage: AtomicU16::new(NO_STAGE),
        }
    }

    /// The sink spans are recorded into.
    pub fn sink(&self) -> &'a TraceSink {
        self.sink
    }

    /// This run's sequence number within the sink.
    pub fn run_seq(&self) -> u32 {
        self.run_seq
    }

    /// Re-label the engine after dispatch resolves it (the adaptive
    /// driver decides per run; spans recorded before the call keep the
    /// provisional label).
    pub fn set_engine(&self, engine: u8) {
        // ORDERING: Relaxed — a label, read only when recording spans.
        self.engine.store(engine, Ordering::Relaxed);
    }

    fn record(&self, kind: SpanKind, stage: u16, rows: u32, t0_ns: u64) {
        self.sink.push(SpanEvent {
            kind,
            query: self.query,
            // ORDERING: Relaxed — label read, see `set_engine`.
            engine: self.engine.load(Ordering::Relaxed),
            stage,
            tid: thread_tid(),
            run_seq: self.run_seq,
            rows,
            t0_ns,
            dur_ns: self.sink.now_ns().saturating_sub(t0_ns),
        });
    }

    /// RAII span covering the whole query execution.
    pub fn query_span<'t>(&'t self) -> SpanGuard<'t, 'a> {
        SpanGuard {
            trace: self,
            kind: SpanKind::Query,
            stage: NO_STAGE,
            t0_ns: self.sink.now_ns(),
        }
    }

    /// RAII span covering pipeline stage `idx`; morsel batches recorded
    /// while it is live attribute themselves to this stage.
    pub fn stage_span<'t>(&'t self, idx: u16) -> SpanGuard<'t, 'a> {
        // ORDERING: Relaxed — attribution label (see the type docs).
        self.cur_stage.store(idx, Ordering::Relaxed);
        SpanGuard {
            trace: self,
            kind: SpanKind::Stage,
            stage: idx,
            t0_ns: self.sink.now_ns(),
        }
    }

    /// Record one executed morsel batch of `rows` rows that started at
    /// `t0_ns` (from [`TraceSink::now_ns`] via [`QueryTrace::now_ns`]).
    #[inline]
    pub fn record_morsel(&self, t0_ns: u64, rows: u32) {
        // ORDERING: Relaxed — attribution label.
        let stage = self.cur_stage.load(Ordering::Relaxed);
        self.record(SpanKind::Morsel, stage, rows, t0_ns);
    }

    /// The sink's clock (span start timestamps).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.sink.now_ns()
    }
}

/// RAII guard of one span: records the event (with the elapsed
/// duration) into the sink when dropped.
pub struct SpanGuard<'t, 'a> {
    trace: &'t QueryTrace<'a>,
    kind: SpanKind,
    stage: u16,
    t0_ns: u64,
}

impl Drop for SpanGuard<'_, '_> {
    fn drop(&mut self) {
        self.trace.record(self.kind, self.stage, 0, self.t0_ns);
        if self.kind == SpanKind::Stage {
            // ORDERING: Relaxed — attribution label reset.
            self.trace.cur_stage.store(NO_STAGE, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(run_seq: u32, t0: u64) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::Morsel,
            query: 3,
            engine: 1,
            stage: 2,
            tid: thread_tid(),
            run_seq,
            rows: 1024,
            t0_ns: t0,
            dur_ns: 5,
        }
    }

    #[test]
    fn events_pack_roundtrip() {
        let e = SpanEvent {
            kind: SpanKind::Stage,
            query: 11,
            engine: 2,
            stage: 4,
            tid: 7,
            run_seq: 123_456,
            rows: 0,
            t0_ns: u64::MAX / 3,
            dur_ns: 42,
        };
        assert_eq!(SpanEvent::unpack(e.pack()), e);
    }

    #[test]
    fn snapshot_returns_events_in_order() {
        let sink = TraceSink::new(16);
        for i in 0..10 {
            sink.push(ev(i, i as u64 * 100));
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 10);
        assert!(snap.windows(2).all(|w| w[0].run_seq < w[1].run_seq));
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.recorded(), 10);
    }

    #[test]
    fn wrap_around_keeps_newest_and_counts_dropped() {
        let sink = TraceSink::new(8); // capacity rounds to 8
        assert_eq!(sink.capacity(), 8);
        for i in 0..20 {
            sink.push(ev(i, i as u64));
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 8, "ring keeps exactly capacity events");
        let seqs: Vec<u32> = snap.iter().map(|e| e.run_seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u32>>(), "newest window wins");
        assert_eq!(sink.dropped(), 12);
        assert_eq!(sink.recorded(), 20);
    }

    #[test]
    fn concurrent_writers_publish_consistent_events() {
        let sink = TraceSink::new(1 << 12);
        let threads = 8;
        let per = 400; // 3200 < 4096: nothing wraps, all must survive
        std::thread::scope(|s| {
            for t in 0..threads {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..per {
                        sink.push(SpanEvent {
                            kind: SpanKind::Morsel,
                            query: t as u16,
                            engine: t as u8,
                            stage: i as u16,
                            tid: thread_tid(),
                            run_seq: t,
                            rows: i,
                            t0_ns: (t as u64) << 32 | i as u64,
                            dur_ns: i as u64,
                        });
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.len(), (threads * per) as usize);
        assert_eq!(sink.dropped(), 0);
        for e in &snap {
            // Self-consistency: every field derives from (t, i); torn
            // mixes of two writers would break the relations.
            assert_eq!(e.query as u32, e.run_seq);
            assert_eq!(e.engine as u32, e.run_seq);
            assert_eq!(e.stage as u32, e.rows);
            assert_eq!(e.t0_ns, (e.run_seq as u64) << 32 | e.rows as u64);
        }
    }

    #[test]
    fn concurrent_wrapping_writers_never_yield_torn_events() {
        // Tiny ring, heavy overwrite pressure, snapshots racing pushes.
        let sink = TraceSink::new(8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..5_000u32 {
                        let v = (t << 16) | (i & 0xffff);
                        sink.push(SpanEvent {
                            kind: SpanKind::Morsel,
                            query: 0,
                            engine: 0,
                            stage: 0,
                            tid: 0,
                            run_seq: v,
                            rows: v,
                            t0_ns: v as u64,
                            dur_ns: v as u64,
                        });
                    }
                });
            }
            let sink = &sink;
            s.spawn(move || {
                for _ in 0..200 {
                    for e in sink.snapshot() {
                        assert_eq!(e.run_seq, e.rows, "torn event escaped the seqlock");
                        assert_eq!(e.t0_ns, e.run_seq as u64);
                        assert_eq!(e.dur_ns, e.run_seq as u64);
                    }
                }
            });
        });
        assert_eq!(sink.recorded(), 20_000);
        assert_eq!(sink.dropped(), 20_000 - 8);
    }

    #[test]
    fn guards_record_nested_spans() {
        let sink = TraceSink::new(64);
        let qt = QueryTrace::new(&sink, 2, 0);
        {
            let _q = qt.query_span();
            {
                let _s = qt.stage_span(0);
                let t0 = qt.now_ns();
                qt.record_morsel(t0, 500);
            }
            {
                let _s = qt.stage_span(1);
                let t0 = qt.now_ns();
                qt.record_morsel(t0, 300);
            }
        }
        let snap = sink.snapshot();
        // Drop order: morsel(0), stage(0), morsel(1), stage(1), query.
        let kinds: Vec<SpanKind> = snap.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Morsel,
                SpanKind::Stage,
                SpanKind::Morsel,
                SpanKind::Stage,
                SpanKind::Query
            ]
        );
        let query = snap[4];
        assert_eq!(query.stage, NO_STAGE);
        for stage in [snap[1], snap[3]] {
            assert!(stage.t0_ns >= query.t0_ns);
            assert!(stage.t0_ns + stage.dur_ns <= query.t0_ns + query.dur_ns);
        }
        // Morsel events inherit the live stage index.
        assert_eq!(snap[0].stage, 0);
        assert_eq!(snap[0].rows, 500);
        assert_eq!(snap[2].stage, 1);
        assert!(snap.iter().all(|e| e.run_seq == qt.run_seq()));
    }

    #[test]
    fn run_seqs_are_distinct_per_trace() {
        let sink = TraceSink::new(8);
        let a = QueryTrace::new(&sink, 0, 0);
        let b = QueryTrace::new(&sink, 0, 0);
        assert_ne!(a.run_seq(), b.run_seq());
    }
}
