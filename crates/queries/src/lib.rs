//! Physical query plans for the paper's workload, in **all three**
//! engines.
//!
//! Per the methodology (§3), every query uses *the same physical plan*
//! in Typer and Tectorwise — same join order, same build sides, same
//! hash functions, same data structures — so the execution paradigm is
//! the only variable. The Volcano implementations run the same plans
//! tuple-at-a-time for the interpretation baseline and for result
//! cross-validation.
//!
//! * [`tpch`] — Q1, Q6, Q3, Q9, Q18 (the paper's representative subset,
//!   §3.3 lists each query's bottleneck).
//! * [`ssb`] — Star Schema Benchmark Q1.1, Q2.1, Q3.1, Q4.1 (§4.4).
//! * [`oltp`] — the stored-procedure-style point-lookup workload used to
//!   discuss OLTP behaviour (§8.1).
//! * [`result`] — engine-independent result rows with deterministic
//!   ordering, so `typer == tectorwise == volcano` is a meaningful
//!   assertion.

pub mod oltp;
pub mod result;
pub mod ssb;
pub mod tpch;

use dbep_runtime::hash::HashFn;
use dbep_storage::throttle::Throttle;
use dbep_vectorized::SimdPolicy;

/// Execution configuration shared by all engines.
///
/// `vector_size` and `policy` only affect Tectorwise; `hash` defaults to
/// each engine's §4.1 choice (Murmur2 for TW, CRC for Typer) unless
/// overridden for the ablation.
#[derive(Clone, Copy)]
pub struct ExecCfg<'a> {
    pub threads: usize,
    pub vector_size: usize,
    pub policy: SimdPolicy,
    /// `None` = engine default (§4.1); `Some` = force for both engines.
    pub hash: Option<HashFn>,
    /// Optional bandwidth-limited storage device (Table 5).
    pub throttle: Option<&'a Throttle>,
}

impl Default for ExecCfg<'_> {
    fn default() -> Self {
        ExecCfg {
            threads: 1,
            vector_size: dbep_vectorized::DEFAULT_VECTOR_SIZE,
            policy: SimdPolicy::Scalar,
            hash: None,
            throttle: None,
        }
    }
}

impl<'a> ExecCfg<'a> {
    pub fn with_threads(threads: usize) -> Self {
        ExecCfg { threads, ..Default::default() }
    }

    /// The hash function Typer uses under this configuration.
    pub fn typer_hash(&self) -> HashFn {
        self.hash.unwrap_or(HashFn::Crc)
    }

    /// The hash function Tectorwise uses under this configuration.
    pub fn tw_hash(&self) -> HashFn {
        self.hash.unwrap_or(HashFn::Murmur2)
    }

    /// Pace a scan morsel against the configured storage device.
    #[inline]
    pub fn pace(&self, rows: usize, bytes_per_row: usize) {
        if let Some(t) = self.throttle {
            t.consume(rows * bytes_per_row);
        }
    }
}

/// The three execution paradigms (Table 6 taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Push + compiled (HyPer model).
    Typer,
    /// Pull + vectorized (VectorWise model).
    Tectorwise,
    /// Pull + interpreted (System R model).
    Volcano,
}

/// Identifiers for every benchmark query in the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryId {
    Q1,
    Q6,
    Q3,
    Q9,
    Q18,
    Ssb1_1,
    Ssb2_1,
    Ssb3_1,
    Ssb4_1,
}

impl QueryId {
    /// The TPC-H subset in the paper's presentation order (§3.3).
    pub const TPCH: [QueryId; 5] = [QueryId::Q1, QueryId::Q6, QueryId::Q3, QueryId::Q9, QueryId::Q18];
    /// The SSB flights of §4.4.
    pub const SSB: [QueryId; 4] = [QueryId::Ssb1_1, QueryId::Ssb2_1, QueryId::Ssb3_1, QueryId::Ssb4_1];

    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "q1",
            QueryId::Q6 => "q6",
            QueryId::Q3 => "q3",
            QueryId::Q9 => "q9",
            QueryId::Q18 => "q18",
            QueryId::Ssb1_1 => "ssb-q1.1",
            QueryId::Ssb2_1 => "ssb-q2.1",
            QueryId::Ssb3_1 => "ssb-q3.1",
            QueryId::Ssb4_1 => "ssb-q4.1",
        }
    }

    /// Total tuples scanned by this query's plan — the paper's
    /// normalization denominator ("the sum of the cardinalities of all
    /// tables scanned", §3.4).
    pub fn tuples_scanned(self, db: &dbep_storage::Database) -> usize {
        let t = |n: &str| db.table(n).len();
        match self {
            QueryId::Q1 | QueryId::Q6 => t("lineitem"),
            QueryId::Q3 => t("customer") + t("orders") + t("lineitem"),
            QueryId::Q9 => t("part") + t("partsupp") + t("supplier") + t("lineitem") + t("orders"),
            QueryId::Q18 => t("lineitem") * 2 + t("orders") + t("customer"),
            QueryId::Ssb1_1 => t("lineorder") + t("date"),
            QueryId::Ssb2_1 => t("lineorder") + t("date") + t("ssb_part") + t("ssb_supplier"),
            QueryId::Ssb3_1 => t("lineorder") + t("date") + t("ssb_customer") + t("ssb_supplier"),
            QueryId::Ssb4_1 => {
                t("lineorder") + t("date") + t("ssb_customer") + t("ssb_supplier") + t("ssb_part")
            }
        }
    }
}

/// Run any benchmark query on any engine (harness entry point).
pub fn run(engine: Engine, query: QueryId, db: &dbep_storage::Database, cfg: &ExecCfg) -> result::QueryResult {
    use Engine::*;
    use QueryId::*;
    match (engine, query) {
        (Typer, Q1) => tpch::q1::typer(db, cfg),
        (Typer, Q6) => tpch::q6::typer(db, cfg),
        (Typer, Q3) => tpch::q3::typer(db, cfg),
        (Typer, Q9) => tpch::q9::typer(db, cfg),
        (Typer, Q18) => tpch::q18::typer(db, cfg),
        (Typer, Ssb1_1) => ssb::q1_1::typer(db, cfg),
        (Typer, Ssb2_1) => ssb::q2_1::typer(db, cfg),
        (Typer, Ssb3_1) => ssb::q3_1::typer(db, cfg),
        (Typer, Ssb4_1) => ssb::q4_1::typer(db, cfg),
        (Tectorwise, Q1) => tpch::q1::tectorwise(db, cfg),
        (Tectorwise, Q6) => tpch::q6::tectorwise(db, cfg),
        (Tectorwise, Q3) => tpch::q3::tectorwise(db, cfg),
        (Tectorwise, Q9) => tpch::q9::tectorwise(db, cfg),
        (Tectorwise, Q18) => tpch::q18::tectorwise(db, cfg),
        (Tectorwise, Ssb1_1) => ssb::q1_1::tectorwise(db, cfg),
        (Tectorwise, Ssb2_1) => ssb::q2_1::tectorwise(db, cfg),
        (Tectorwise, Ssb3_1) => ssb::q3_1::tectorwise(db, cfg),
        (Tectorwise, Ssb4_1) => ssb::q4_1::tectorwise(db, cfg),
        (Volcano, Q1) => tpch::q1::volcano(db),
        (Volcano, Q6) => tpch::q6::volcano(db),
        (Volcano, Q3) => tpch::q3::volcano(db),
        (Volcano, Q9) => tpch::q9::volcano(db),
        (Volcano, Q18) => tpch::q18::volcano(db),
        (Volcano, Ssb1_1) => ssb::q1_1::volcano(db),
        (Volcano, Ssb2_1) => ssb::q2_1::volcano(db),
        (Volcano, Ssb3_1) => ssb::q3_1::volcano(db),
        (Volcano, Ssb4_1) => ssb::q4_1::volcano(db),
    }
}
