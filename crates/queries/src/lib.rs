//! Physical query plans for the paper's workload, in **all three**
//! engines.
//!
//! Per the methodology (§3), every query uses *the same physical plan*
//! in Typer and Tectorwise — same join order, same build sides, same
//! hash functions, same data structures — so the execution paradigm is
//! the only variable. The Volcano implementations run the same plans
//! tuple-at-a-time for the interpretation baseline and for result
//! cross-validation.
//!
//! * [`tpch`] — Q1, Q6, Q3, Q9, Q18 (the paper's representative subset,
//!   §3.3 lists each query's bottleneck), plus Q4, Q12 and Q14 for the
//!   semi-join, string-predicate and conditional-aggregation shapes.
//! * [`ssb`] — Star Schema Benchmark Q1.1, Q2.1, Q3.1, Q4.1 (§4.4).
//! * [`oltp`] — the stored-procedure-style point-lookup workload used to
//!   discuss OLTP behaviour (§8.1).
//! * [`params`] — typed, validated substitution parameters per query;
//!   `Default` is the paper's instance (§3.3), so `run()` reproduces the
//!   paper while `run_with`/`Session::prepare_params` open the full
//!   substitution family.
//! * [`result`] — engine-independent result rows with deterministic
//!   ordering, so `typer == tectorwise == volcano` is a meaningful
//!   assertion.

pub mod oltp;
pub mod params;
pub mod result;
pub mod ssb;
pub mod tpch;

pub use params::Params;

use dbep_obs::QueryTrace;
use dbep_runtime::counters::{StageCounterGuard, StageCounters};
use dbep_runtime::hash::HashFn;
use dbep_runtime::{ExecCtx, Morsels};
use dbep_scheduler::{QueryRun, StageTimer, StageTrace};
use dbep_storage::throttle::Throttle;
use dbep_vectorized::SimdPolicy;
use std::ops::Range;

pub use dbep_scheduler::StageKind;

/// Execution configuration shared by all engines.
///
/// `vector_size` and `policy` only affect Tectorwise; `hash` defaults to
/// each engine's §4.1 choice (Murmur2 for TW, CRC for Typer) unless
/// overridden for the ablation. `sched` attaches the run to a shared
/// [`dbep_scheduler::Scheduler`] pool (set by `dbep_core::Session` per
/// execution); without it, parallel regions fall back to
/// spawn-per-query scoped threads.
#[derive(Clone, Copy)]
pub struct ExecCfg<'a> {
    pub threads: usize,
    pub vector_size: usize,
    pub policy: SimdPolicy,
    /// `None` = engine default (§4.1); `Some` = force for both engines.
    pub hash: Option<HashFn>,
    /// Optional bandwidth-limited storage device (Table 5).
    pub throttle: Option<&'a Throttle>,
    /// Admitted scheduler run this execution submits its pipelines to.
    pub sched: Option<&'a QueryRun>,
    /// Per-pipeline-stage wall-time trace (attached by the adaptive
    /// driver when instrumenting a candidate engine; `None` otherwise).
    pub stage_trace: Option<&'a StageTrace>,
    /// Span tracing for this execution: stage and morsel spans are
    /// recorded into the trace's ring-buffer sink. `None` (the default)
    /// costs nothing — not even a clock read — on the hot paths.
    pub trace: Option<&'a QueryTrace<'a>>,
    /// Per-stage hardware-counter accumulators (Table-1 attribution by
    /// stage); attached by `experiments table1 --per-stage`.
    pub stage_counters: Option<&'a StageCounters>,
}

impl Default for ExecCfg<'_> {
    fn default() -> Self {
        ExecCfg {
            threads: 1,
            vector_size: dbep_vectorized::DEFAULT_VECTOR_SIZE,
            policy: SimdPolicy::Scalar,
            hash: None,
            throttle: None,
            sched: None,
            stage_trace: None,
            trace: None,
            stage_counters: None,
        }
    }
}

/// Compound RAII guard for one pipeline stage: wall-time into the
/// attached [`StageTrace`], a stage span into the attached
/// [`QueryTrace`], and a hardware-counter delta into the attached
/// [`StageCounters`] — whichever of the three are present. All fields
/// are `None` on untraced runs and the guard is free. Fields drop in
/// declaration order: counters close first so the span's duration
/// covers the whole instrumented region.
#[derive(Default)]
pub struct StageGuard<'a> {
    // RAII-only fields: never read, their Drop impls do the recording.
    _counters: Option<StageCounterGuard<'a>>,
    _span: Option<dbep_obs::SpanGuard<'a, 'a>>,
    _timer: Option<StageTimer<'a>>,
}

impl<'a> ExecCfg<'a> {
    pub fn with_threads(threads: usize) -> Self {
        ExecCfg {
            threads,
            ..Default::default()
        }
    }

    /// The hash function Typer uses under this configuration.
    pub fn typer_hash(&self) -> HashFn {
        self.hash.unwrap_or(HashFn::Crc)
    }

    /// The hash function Tectorwise uses under this configuration.
    pub fn tw_hash(&self) -> HashFn {
        self.hash.unwrap_or(HashFn::Murmur2)
    }

    /// Account a scan morsel: record the touched bytes into the run's
    /// scheduler stats and pace against the configured storage device.
    ///
    /// `row_bits` is the per-row payload width in **bits** — encoded
    /// companions contribute their packed width (`Table::row_bits`),
    /// flat columns their byte width × 8.
    #[inline]
    pub fn pace(&self, rows: usize, row_bits: usize) {
        let bytes = rows * row_bits / 8;
        if let Some(run) = self.sched {
            run.add_bytes(bytes as u64);
        }
        if let Some(t) = self.throttle {
            t.consume(bytes);
        }
    }

    /// Enter pipeline stage `idx` (index into the plan's
    /// [`QueryPlan::stages`]): when the returned guard drops, elapsed
    /// wall time is recorded into the attached [`StageTrace`], a stage
    /// span into the attached [`QueryTrace`], and a hardware-counter
    /// delta into the attached [`StageCounters`] — for whichever are
    /// attached. No-op (empty guard, nothing recorded, no clock read)
    /// when the run is uninstrumented — plans bracket every pipeline
    /// unconditionally and only instrumented runs pay for it. Bind the
    /// guard for the pipeline's scope: `let _stage = cfg.stage(0);`.
    #[inline]
    pub fn stage(&self, idx: usize) -> StageGuard<'a> {
        // Span opens before the counter region and (by field order)
        // closes after it, so the span brackets the counted work.
        let span = self.trace.map(|t| t.stage_span(idx as u16));
        StageGuard {
            _counters: self.stage_counters.and_then(|c| c.start_stage(idx)),
            _span: span,
            _timer: self.stage_trace.map(|t| t.start(idx)),
        }
    }

    /// The execution context parallel regions run on: pooled when a
    /// scheduler run is attached, spawn-per-query otherwise.
    pub fn exec(&self) -> ExecCtx<'a> {
        ExecCtx {
            threads: self.threads,
            run: self.sched,
        }
    }

    /// **The** morsel-driven scan loop every plan runs on, replacing the
    /// per-query `scope_workers` + `while let Some(r) = morsels.claim()`
    /// idiom the plans used to hand-roll: `fold(state, range)` runs for
    /// every morsel of `0..total`, paced against the configured storage
    /// device, on the shared pool when a scheduler run is attached.
    /// Per-worker state (build shards, pre-aggregation shards, vector
    /// scratch, local accumulators) lives in slots: `init(worker)`
    /// creates a slot's state on its first morsel, and the
    /// participating workers' states come back for the merge step.
    ///
    /// Note on throttling: [`ExecCfg::pace`] sleeps inside the morsel
    /// body, i.e. **on the pool workers** when pooled — an emulated
    /// IO-stalled morsel occupies its worker just like a real blocking
    /// read would, so a throttled query slows co-scheduled queries the
    /// way a saturated shared device does.
    pub fn map_scan<T: Send>(
        &self,
        total: usize,
        row_bits: usize,
        init: impl Fn(usize) -> T + Sync,
        fold: impl Fn(&mut T, Range<usize>) + Sync,
    ) -> Vec<T> {
        self.exec().map_slots(Morsels::new(total), init, |state, r| {
            // Morsel spans read the clock only when a trace is attached;
            // untraced serving runs pay nothing here.
            let t0 = self.trace.map(|t| t.now_ns());
            self.pace(r.len(), row_bits);
            let rows = r.len();
            fold(state, r);
            if let (Some(trace), Some(t0)) = (self.trace, t0) {
                trace.record_morsel(t0, rows.min(u32::MAX as usize) as u32);
            }
        })
    }
}

/// The three execution paradigms (Table 6 taxonomy), plus the hybrid
/// driver that mixes them per pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Push + compiled (HyPer model).
    Typer,
    /// Pull + vectorized (VectorWise model).
    Tectorwise,
    /// Pull + interpreted (System R model).
    Volcano,
    /// Per-pipeline-stage hybrid of Typer and Tectorwise (the
    /// Kashuba & Mühleisen direction): each stage of
    /// [`QueryPlan::stages`] runs under whichever paradigm is expected
    /// to win it. Outside a `dbep_core::Session` this uses the static
    /// paper heuristic ([`Engine::heuristic_choices`]); inside a
    /// session, the plan cache learns the choice from instrumented
    /// runs of both candidates.
    Adaptive,
}

impl Engine {
    /// Every *paradigm*, in the paper's presentation order. `Adaptive`
    /// is deliberately excluded: it composes these three and would make
    /// cross-engine equivalence sweeps self-referential.
    pub const ALL: [Engine; 3] = [Engine::Typer, Engine::Tectorwise, Engine::Volcano];

    /// Everything `--engine` accepts: the paradigms plus `adaptive`.
    pub const SELECTABLE: [Engine; 4] = [
        Engine::Typer,
        Engine::Tectorwise,
        Engine::Volcano,
        Engine::Adaptive,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Engine::Typer => "typer",
            Engine::Tectorwise => "tectorwise",
            Engine::Volcano => "volcano",
            Engine::Adaptive => "adaptive",
        }
    }

    /// Position in [`Engine::SELECTABLE`] — the small integer id span
    /// traces record an engine as (`dbep_obs` name tables index by it).
    pub fn ordinal(self) -> u8 {
        Engine::SELECTABLE
            .iter()
            .position(|e| *e == self)
            .expect("every engine is selectable") as u8
    }

    /// The static per-stage choice (§4's findings as a rule): hash-table
    /// probes are cache-miss-bound and go to Tectorwise, whose batched
    /// probes overlap misses; everything else (fused scan/filter,
    /// builds, aggregation) goes to Typer, which keeps tuples in
    /// registers. Used by `Engine::Adaptive` before any instrumented
    /// run has been observed.
    pub fn heuristic_choices(stages: &[StageDesc]) -> Vec<Engine> {
        stages
            .iter()
            .map(|s| match s.kind {
                StageKind::JoinProbe => Engine::Tectorwise,
                _ => Engine::Typer,
            })
            .collect()
    }

    /// The static whole-plan fallback when a plan cannot execute a
    /// mixed stage assignment ([`QueryPlan::run_mix`] returns `None`):
    /// probe-heavy plans run Tectorwise, computation-heavy plans Typer.
    pub fn heuristic_pure(stages: &[StageDesc]) -> Engine {
        if stages.iter().any(|s| s.kind == StageKind::JoinProbe) {
            Engine::Tectorwise
        } else {
            Engine::Typer
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Engine::SELECTABLE
            .into_iter()
            .find(|e| e.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown engine {s:?} (expected typer|tectorwise|volcano|adaptive)"))
    }
}

/// Identifiers for every benchmark query in the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    Q1,
    Q6,
    Q3,
    Q9,
    Q18,
    Q4,
    Q12,
    Q14,
    Ssb1_1,
    Ssb2_1,
    Ssb3_1,
    Ssb4_1,
}

impl QueryId {
    /// The paper's TPC-H subset in its presentation order (§3.3) —
    /// use this for reproducing the paper's figures/tables row-for-row.
    pub const TPCH_PAPER: [QueryId; 5] = [QueryId::Q1, QueryId::Q6, QueryId::Q3, QueryId::Q9, QueryId::Q18];
    /// All TPC-H queries: the paper's subset in its presentation order
    /// (§3.3), then the workload-broadening additions (Q4 semi-join,
    /// Q12 IN-list + CASE counters, Q14 prefix-match ratio).
    pub const TPCH: [QueryId; 8] = [
        QueryId::Q1,
        QueryId::Q6,
        QueryId::Q3,
        QueryId::Q9,
        QueryId::Q18,
        QueryId::Q4,
        QueryId::Q12,
        QueryId::Q14,
    ];
    /// The SSB flights of §4.4.
    pub const SSB: [QueryId; 4] = [QueryId::Ssb1_1, QueryId::Ssb2_1, QueryId::Ssb3_1, QueryId::Ssb4_1];
    /// Every query of the study (registry order).
    pub const ALL: [QueryId; 12] = [
        QueryId::Q1,
        QueryId::Q6,
        QueryId::Q3,
        QueryId::Q9,
        QueryId::Q18,
        QueryId::Q4,
        QueryId::Q12,
        QueryId::Q14,
        QueryId::Ssb1_1,
        QueryId::Ssb2_1,
        QueryId::Ssb3_1,
        QueryId::Ssb4_1,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "q1",
            QueryId::Q6 => "q6",
            QueryId::Q3 => "q3",
            QueryId::Q9 => "q9",
            QueryId::Q18 => "q18",
            QueryId::Q4 => "q4",
            QueryId::Q12 => "q12",
            QueryId::Q14 => "q14",
            QueryId::Ssb1_1 => "ssb-q1.1",
            QueryId::Ssb2_1 => "ssb-q2.1",
            QueryId::Ssb3_1 => "ssb-q3.1",
            QueryId::Ssb4_1 => "ssb-q4.1",
        }
    }

    /// Inverse of [`QueryId::name`] (the single place names map back to
    /// ids — harnesses must not re-implement this with string matches).
    pub fn from_name(name: &str) -> Option<QueryId> {
        QueryId::ALL.into_iter().find(|q| q.name() == name)
    }

    /// Position in [`QueryId::ALL`] (== [`REGISTRY`] order, held there
    /// by test) — the small integer id span traces record a query as.
    pub fn ordinal(self) -> u16 {
        QueryId::ALL
            .iter()
            .position(|q| *q == self)
            .expect("QueryId::ALL is exhaustive") as u16
    }

    /// Total tuples scanned by this query's plan — the paper's
    /// normalization denominator ("the sum of the cardinalities of all
    /// tables scanned", §3.4). Delegates to the registered plan.
    pub fn tuples_scanned(self, db: &dbep_storage::Database) -> usize {
        plan(self).tuples_scanned(db)
    }
}

impl std::str::FromStr for QueryId {
    type Err = String;

    /// Case-insensitive (like `Engine::from_str` — the two feed the
    /// same CLI flags); [`QueryId::from_name`] stays the exact inverse
    /// of [`QueryId::name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        QueryId::ALL
            .into_iter()
            .find(|q| q.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                let known: Vec<&str> = QueryId::ALL.iter().map(|q| q.name()).collect();
                format!("unknown query {s:?} (expected one of {})", known.join(" "))
            })
    }
}

/// One named pipeline stage of a physical plan — the granularity the
/// adaptive engine chooses paradigms at. Stages are separated by
/// pipeline breakers (hash-table builds, aggregation merges) and listed
/// in execution order; [`ExecCfg::stage`] indices refer to this order.
#[derive(Clone, Copy, Debug)]
pub struct StageDesc {
    /// Short stable label for reports (e.g. `"probe-lineitem"`).
    pub name: &'static str,
    /// The stage's dominant operation, driving the static heuristic.
    pub kind: StageKind,
}

impl StageDesc {
    pub const fn new(name: &'static str, kind: StageKind) -> Self {
        StageDesc { name, kind }
    }
}

/// One physical query plan of the study, implemented under every
/// execution paradigm.
///
/// Per the methodology (§3) all three implementations share the plan —
/// join order, build sides, hash functions, data structures — so the
/// paradigm is the only variable. Every engine entry point receives the
/// query's bound substitution [`Params`] (see [`params`]); with
/// [`Params::default_for`] the plan reproduces the paper's instance
/// byte-for-byte. Adding a query to the harness is one struct
/// implementing this trait plus a [`REGISTRY`] entry; the dispatcher,
/// benchmarks and equivalence tests pick it up from there.
pub trait QueryPlan: Sync {
    /// The identifier this plan is registered under.
    fn id(&self) -> QueryId;

    /// Total tuples scanned by the plan (the §3.4 normalization
    /// denominator).
    fn tuples_scanned(&self, db: &dbep_storage::Database) -> usize;

    /// The plan's pipeline stages in execution order. Typer and
    /// Tectorwise bodies bracket each stage with [`ExecCfg::stage`]
    /// using these indices, so an attached [`StageTrace`] decomposes a
    /// run into per-stage wall times. Volcano is the interpretation
    /// baseline and is never an adaptive candidate, so its bodies stay
    /// uninstrumented.
    fn stages(&self) -> &'static [StageDesc];

    /// Data-centric compiled execution (push, fused pipelines).
    fn typer(&self, db: &dbep_storage::Database, cfg: &ExecCfg, params: &Params) -> result::QueryResult;

    /// Vector-at-a-time execution (pull, primitives).
    fn tectorwise(&self, db: &dbep_storage::Database, cfg: &ExecCfg, params: &Params) -> result::QueryResult;

    /// Tuple-at-a-time interpretation (pull, boxed operators). Takes the
    /// same [`ExecCfg`] as the other engines: `threads` runs an
    /// exchange-style parallel union, `throttle` paces every scan.
    fn volcano(&self, db: &dbep_storage::Database, cfg: &ExecCfg, params: &Params) -> result::QueryResult;

    /// Execute with a per-stage engine assignment (`choices[i]` runs
    /// stage `i`; only `Typer`/`Tectorwise` are valid choices). Plans
    /// that support genuinely mixed execution override this; the
    /// default returns `None`, telling the adaptive driver to fall back
    /// to the best whole-plan engine. A uniform assignment must produce
    /// exactly the corresponding pure engine's execution.
    fn run_mix(
        &self,
        db: &dbep_storage::Database,
        cfg: &ExecCfg,
        params: &Params,
        choices: &[Engine],
    ) -> Option<result::QueryResult> {
        let _ = (db, cfg, params, choices);
        None
    }

    /// Dispatch on the execution paradigm. `Engine::Adaptive` here (the
    /// session-less path — no learned state available) applies the
    /// static paper heuristic: per-stage choices via
    /// [`Engine::heuristic_choices`] when the plan supports mixing,
    /// otherwise the whole-plan [`Engine::heuristic_pure`] pick.
    fn run(
        &self,
        engine: Engine,
        db: &dbep_storage::Database,
        cfg: &ExecCfg,
        params: &Params,
    ) -> result::QueryResult {
        match engine {
            Engine::Typer => self.typer(db, cfg, params),
            Engine::Tectorwise => self.tectorwise(db, cfg, params),
            Engine::Volcano => self.volcano(db, cfg, params),
            Engine::Adaptive => {
                let choices = Engine::heuristic_choices(self.stages());
                match self.run_mix(db, cfg, params, &choices) {
                    Some(r) => r,
                    None => self.run(Engine::heuristic_pure(self.stages()), db, cfg, params),
                }
            }
        }
    }
}

/// Every registered query plan, in the paper's presentation order.
pub static REGISTRY: &[&dyn QueryPlan] = &[
    &tpch::q1::Q1,
    &tpch::q6::Q6,
    &tpch::q3::Q3,
    &tpch::q9::Q9,
    &tpch::q18::Q18,
    &tpch::q4::Q4,
    &tpch::q12::Q12,
    &tpch::q14::Q14,
    &ssb::q1_1::Q11,
    &ssb::q2_1::Q21,
    &ssb::q3_1::Q31,
    &ssb::q4_1::Q41,
];

/// Look up the registered plan for a query.
pub fn plan(query: QueryId) -> &'static dyn QueryPlan {
    REGISTRY
        .iter()
        .copied()
        .find(|p| p.id() == query)
        .unwrap_or_else(|| panic!("no registered plan for {:?}", query))
}

/// Name tables for exporting span traces recorded against this
/// registry's ordinals ([`QueryId::ordinal`] / [`Engine::ordinal`] /
/// stage indices) — the bridge between the id-only `dbep_obs` sink and
/// human-readable Chrome trace output.
pub fn trace_names() -> dbep_obs::TraceNames {
    dbep_obs::TraceNames {
        queries: REGISTRY
            .iter()
            .map(|p| dbep_obs::TraceQuery {
                name: p.id().name().to_string(),
                stages: p.stages().iter().map(|s| s.name.to_string()).collect(),
            })
            .collect(),
        engines: Engine::SELECTABLE.iter().map(|e| e.name().to_string()).collect(),
    }
}

/// Run any benchmark query on any engine with the paper's default
/// parameters (harness entry point; see [`run_with`] for bound
/// parameters and `dbep_core::Session` for the prepare-once API).
pub fn run(
    engine: Engine,
    query: QueryId,
    db: &dbep_storage::Database,
    cfg: &ExecCfg,
) -> result::QueryResult {
    run_with(engine, query, db, cfg, &Params::default_for(query))
}

/// Run a query with explicitly bound [`Params`].
///
/// Panics if `params` binds a different query than `query` — prepared
/// queries (`dbep_core::Session::prepare`) rule this out statically.
pub fn run_with(
    engine: Engine,
    query: QueryId,
    db: &dbep_storage::Database,
    cfg: &ExecCfg,
    params: &Params,
) -> result::QueryResult {
    assert_eq!(
        params.query(),
        query,
        "params bind {} but {} was requested",
        params.query().name(),
        query.name()
    );
    plan(query).run(engine, db, cfg, params)
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    /// `QueryId::ALL` is documented as "registry order" — hold the two
    /// to it so they cannot drift when a query is added.
    #[test]
    fn query_id_all_matches_registry_order() {
        assert_eq!(REGISTRY.len(), QueryId::ALL.len());
        for (i, p) in REGISTRY.iter().enumerate() {
            assert_eq!(
                p.id(),
                QueryId::ALL[i],
                "REGISTRY[{i}] is {} but QueryId::ALL[{i}] is {}",
                p.id().name(),
                QueryId::ALL[i].name()
            );
        }
    }

    #[test]
    fn names_roundtrip() {
        for q in QueryId::ALL {
            assert_eq!(QueryId::from_name(q.name()), Some(q));
            assert_eq!(q.name().parse::<QueryId>(), Ok(q));
        }
        assert!(QueryId::from_name("q99").is_none());
        assert!("q99".parse::<QueryId>().is_err());
        // FromStr is case-insensitive (like Engine's); from_name exact.
        assert_eq!("Q6".parse::<QueryId>(), Ok(QueryId::Q6));
        assert!(QueryId::from_name("Q6").is_none());
        for e in Engine::SELECTABLE {
            assert_eq!(e.name().parse::<Engine>(), Ok(e));
        }
        assert_eq!("TYPER".parse::<Engine>(), Ok(Engine::Typer));
        assert_eq!("adaptive".parse::<Engine>(), Ok(Engine::Adaptive));
        assert!("spark".parse::<Engine>().is_err());
        assert!(!Engine::ALL.contains(&Engine::Adaptive));
    }

    /// Every plan declares at least one stage, with names unique within
    /// the plan (stage labels key per-stage reports).
    #[test]
    fn all_plans_declare_stages() {
        for p in REGISTRY {
            let stages = p.stages();
            assert!(!stages.is_empty(), "{} declares no stages", p.id().name());
            for (i, a) in stages.iter().enumerate() {
                for b in &stages[..i] {
                    assert_ne!(a.name, b.name, "{} repeats stage name {}", p.id().name(), a.name);
                }
            }
        }
    }

    /// Ordinals are positions in the canonical arrays, and the exported
    /// name tables line up with them — a span recorded with
    /// `(q.ordinal(), e.ordinal(), stage_idx)` names back correctly.
    #[test]
    fn ordinals_and_trace_names_line_up() {
        let names = trace_names();
        assert_eq!(names.queries.len(), QueryId::ALL.len());
        assert_eq!(names.engines.len(), Engine::SELECTABLE.len());
        for q in QueryId::ALL {
            assert_eq!(names.queries[q.ordinal() as usize].name, q.name());
            let stages = plan(q).stages();
            assert_eq!(names.queries[q.ordinal() as usize].stages.len(), stages.len());
        }
        for e in Engine::SELECTABLE {
            assert_eq!(names.engines[e.ordinal() as usize], e.name());
        }
        assert_eq!(QueryId::Q1.ordinal(), 0);
        assert_eq!(Engine::Typer.ordinal(), 0);
    }

    /// `ExecCfg::stage` with traces attached records into all three
    /// instruments; without, the guard is inert.
    #[test]
    fn stage_guard_feeds_attached_instruments() {
        let cfg = ExecCfg::default();
        drop(cfg.stage(0)); // inert guard on an uninstrumented cfg

        let sink = dbep_obs::TraceSink::new(64);
        let qt = QueryTrace::new(&sink, QueryId::Q6.ordinal(), Engine::Typer.ordinal());
        let st = StageTrace::new(2);
        let sc = StageCounters::new(2);
        let cfg = ExecCfg {
            stage_trace: Some(&st),
            trace: Some(&qt),
            stage_counters: Some(&sc),
            ..ExecCfg::default()
        };
        {
            let _g = cfg.stage(1);
            std::hint::black_box(std::time::Instant::now());
        }
        assert!(st.snapshot()[1] > 0, "stage timer recorded");
        let events = sink.snapshot();
        assert_eq!(events.len(), 1, "one stage span recorded");
        assert_eq!(events[0].stage, 1);
        // Counter samples appear only where perf is available.
        let samples = sc.snapshot()[1].samples;
        assert!(samples <= 1);
    }

    /// Morsel spans from `map_scan` carry rows and land under the
    /// current stage.
    #[test]
    fn map_scan_emits_morsel_spans_when_traced() {
        let sink = dbep_obs::TraceSink::new(256);
        let qt = QueryTrace::new(&sink, QueryId::Q6.ordinal(), Engine::Tectorwise.ordinal());
        let cfg = ExecCfg {
            trace: Some(&qt),
            ..ExecCfg::default()
        };
        let total = 10_000;
        let states = {
            let _stage = cfg.stage(0);
            cfg.map_scan(total, 64, |_| 0usize, |acc, r| *acc += r.len())
        };
        assert_eq!(states.iter().sum::<usize>(), total);
        let events = sink.snapshot();
        let morsels: Vec<_> = events
            .iter()
            .filter(|e| e.kind == dbep_obs::SpanKind::Morsel)
            .collect();
        assert!(!morsels.is_empty());
        assert_eq!(morsels.iter().map(|e| e.rows as usize).sum::<usize>(), total);
        assert!(morsels.iter().all(|e| e.stage == 0), "attributed to stage 0");

        // Untraced cfg: same scan still works with no trace attached.
        let cfg = ExecCfg::default();
        let states = cfg.map_scan(total, 64, |_| 0usize, |acc, r| *acc += r.len());
        assert_eq!(states.iter().sum::<usize>(), total);
    }

    #[test]
    fn heuristic_prefers_tw_for_probes() {
        let probe_heavy = [
            StageDesc::new("build", StageKind::JoinBuild),
            StageDesc::new("probe", StageKind::JoinProbe),
        ];
        assert_eq!(
            Engine::heuristic_choices(&probe_heavy),
            vec![Engine::Typer, Engine::Tectorwise]
        );
        assert_eq!(Engine::heuristic_pure(&probe_heavy), Engine::Tectorwise);
        let fused = [StageDesc::new("scan", StageKind::ScanFilter)];
        assert_eq!(Engine::heuristic_choices(&fused), vec![Engine::Typer]);
        assert_eq!(Engine::heuristic_pure(&fused), Engine::Typer);
    }
}
