//! OLTP-style point lookups (§8.1).
//!
//! "For OLTP workloads, vectorization has little benefit over
//! traditional Volcano-style iteration. With compilation, in contrast,
//! it is possible to compile all queries of a stored procedure into a
//! single, efficient machine code fragment."
//!
//! The workload: given an order key, fetch the order's header and
//! aggregate its lineitems (quantity and revenue) — a read-only stored
//! procedure. Three implementations:
//!
//! * [`lookup_typer`] — the compiled stored procedure: one fused
//!   fragment, index probe + tight loop.
//! * [`lookup_tectorwise`] — the vectorized engine forced to run with a
//!   "vector" of one tuple per operator step (primitive-call overhead
//!   per single value).
//! * [`lookup_volcano`] — classic interpretation: an expression-driven
//!   plan constructed and pulled per statement.
//!
//! All three share the same hash index ([`OltpIndex`]), built once.

use dbep_runtime::hash::HashFn;
use dbep_runtime::JoinHt;
use dbep_storage::Database;
use dbep_vectorized as tw;
use dbep_vectorized::SimdPolicy;

/// Primary-key hash indexes: orderkey → orders row, orderkey → first
/// lineitem row + count (lineitems of one order are stored
/// contiguously).
pub struct OltpIndex {
    orders: JoinHt<(i32, u32)>,
    lineitem_ranges: JoinHt<(i32, u32, u32)>,
    hf: HashFn,
}

/// The stored procedure's result row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderDetails {
    pub orderkey: i32,
    pub custkey: i32,
    pub totalprice: i64,
    pub line_count: i64,
    pub sum_qty: i64,
    pub sum_revenue: i64,
}

impl OltpIndex {
    /// Build both indexes (the OLTP database's primary-key structures).
    pub fn build(db: &Database, hf: HashFn) -> Self {
        let ord = db.table("orders");
        let okey = ord.col("o_orderkey").i32s();
        let orders = JoinHt::build((0..ord.len()).map(|i| (hf.hash(okey[i] as u64), (okey[i], i as u32))));
        let li = db.table("lineitem");
        let lok = li.col("l_orderkey").i32s();
        let mut ranges: Vec<(i32, u32, u32)> = Vec::new();
        let mut i = 0usize;
        while i < li.len() {
            let k = lok[i];
            let start = i;
            while i < li.len() && lok[i] == k {
                i += 1;
            }
            ranges.push((k, start as u32, (i - start) as u32));
        }
        let lineitem_ranges = JoinHt::build(ranges.into_iter().map(|r| (hf.hash(r.0 as u64), r)));
        OltpIndex {
            orders,
            lineitem_ranges,
            hf,
        }
    }
}

/// Typer: the whole procedure is one fused fragment.
pub fn lookup_typer(db: &Database, idx: &OltpIndex, orderkey: i32) -> Option<OrderDetails> {
    let h = idx.hf.hash(orderkey as u64);
    let ord_row = idx.orders.probe(h).find(|e| e.row.0 == orderkey)?.row.1 as usize;
    let ord = db.table("orders");
    let mut out = OrderDetails {
        orderkey,
        custkey: ord.col("o_custkey").i32s()[ord_row],
        totalprice: ord.col("o_totalprice").i64s()[ord_row],
        ..Default::default()
    };
    let li = db.table("lineitem");
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    if let Some(e) = idx.lineitem_ranges.probe(h).find(|e| e.row.0 == orderkey) {
        let (start, cnt) = (e.row.1 as usize, e.row.2 as usize);
        for i in start..start + cnt {
            out.line_count += 1;
            out.sum_qty += qty[i];
            out.sum_revenue += ext[i] * (100 - disc[i]);
        }
    }
    Some(out)
}

/// Tectorwise: the same procedure through vector primitives with a
/// single-tuple "vector" for the probe and tiny vectors for the line
/// aggregation — the §8.1 overhead regime.
pub fn lookup_tectorwise(
    db: &Database,
    idx: &OltpIndex,
    orderkey: i32,
    scratch: &mut TwLookupScratch,
) -> Option<OrderDetails> {
    let keys = [orderkey];
    tw::hashp::hash_i32(&keys, &[0], idx.hf, &mut scratch.hashes);
    let n = tw::probe::probe_join(
        &idx.orders,
        &scratch.hashes,
        &[0],
        |row, _| row.0 == orderkey,
        SimdPolicy::Scalar,
        &mut scratch.bufs,
    );
    if n == 0 {
        return None;
    }
    let ord_row = {
        let mut rows = Vec::new();
        tw::gather::gather_build(&idx.orders, &scratch.bufs.match_entry, |r| r.1, &mut rows);
        rows[0] as usize
    };
    let ord = db.table("orders");
    let mut out = OrderDetails {
        orderkey,
        custkey: ord.col("o_custkey").i32s()[ord_row],
        totalprice: ord.col("o_totalprice").i64s()[ord_row],
        ..Default::default()
    };
    let nli = tw::probe::probe_join(
        &idx.lineitem_ranges,
        &scratch.hashes,
        &[0],
        |row, _| row.0 == orderkey,
        SimdPolicy::Scalar,
        &mut scratch.bufs,
    );
    if nli == 0 {
        return Some(out);
    }
    let mut range = Vec::new();
    tw::gather::gather_build(
        &idx.lineitem_ranges,
        &scratch.bufs.match_entry,
        |r| (r.1, r.2),
        &mut range,
    );
    let (start, cnt) = (range[0].0, range[0].1 as usize);
    let li = db.table("lineitem");
    tw::hashp::iota(start, cnt, &mut scratch.sel);
    tw::gather::gather_i64(
        li.col("l_quantity").i64s(),
        &scratch.sel,
        SimdPolicy::Scalar,
        &mut scratch.v_qty,
    );
    tw::gather::gather_i64(
        li.col("l_extendedprice").i64s(),
        &scratch.sel,
        SimdPolicy::Scalar,
        &mut scratch.v_ext,
    );
    tw::gather::gather_i64(
        li.col("l_discount").i64s(),
        &scratch.sel,
        SimdPolicy::Scalar,
        &mut scratch.v_disc,
    );
    tw::map::map_rsub_const_i64(100, &scratch.v_disc, &mut scratch.v_om);
    tw::map::map_mul_i64(&scratch.v_ext, &scratch.v_om, &mut scratch.v_rev);
    out.line_count = cnt as i64;
    out.sum_qty = tw::map::sum_i64(&scratch.v_qty, SimdPolicy::Scalar);
    out.sum_revenue = tw::map::sum_i64(&scratch.v_rev, SimdPolicy::Scalar);
    Some(out)
}

/// Reusable buffers for [`lookup_tectorwise`].
#[derive(Default)]
pub struct TwLookupScratch {
    hashes: Vec<u64>,
    bufs: tw::ProbeBuffers,
    sel: Vec<u32>,
    v_qty: Vec<i64>,
    v_ext: Vec<i64>,
    v_disc: Vec<i64>,
    v_om: Vec<i64>,
    v_rev: Vec<i64>,
}

impl TwLookupScratch {
    pub fn new() -> Self {
        TwLookupScratch {
            bufs: tw::ProbeBuffers::new(),
            ..Default::default()
        }
    }
}

/// Volcano: a fresh interpreted plan per statement (plan construction +
/// per-tuple interpretation are the measured overhead).
pub fn lookup_volcano(db: &Database, orderkey: i32) -> Option<OrderDetails> {
    use dbep_volcano::{AggSpec, Aggregate, BinOp, CmpOp, Expr, Scan, Select};
    let ord_rows = dbep_volcano::ops::collect(Box::new(Select {
        input: Box::new(Scan::new(
            db.table("orders"),
            &["o_orderkey", "o_custkey", "o_totalprice"],
        )),
        pred: Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit_i32(orderkey)),
    }));
    let ord = ord_rows.first()?;
    let agg = Aggregate::new(
        Box::new(Select {
            input: Box::new(Scan::new(
                db.table("lineitem"),
                &["l_orderkey", "l_quantity", "l_extendedprice", "l_discount"],
            )),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit_i32(orderkey)),
        }),
        vec![],
        vec![
            AggSpec::Count,
            AggSpec::SumI64(Expr::col(1)),
            AggSpec::SumI64(Expr::arith(
                BinOp::Mul,
                Expr::col(2),
                Expr::arith(BinOp::Sub, Expr::lit_i64(100), Expr::col(3)),
            )),
        ],
    );
    let sums = dbep_volcano::ops::collect(Box::new(agg));
    let mut out = OrderDetails {
        orderkey,
        custkey: match &ord[1] {
            dbep_volcano::Val::I32(v) => *v,
            other => panic!("unexpected custkey {other:?}"),
        },
        totalprice: ord[2].as_i64(),
        ..Default::default()
    };
    if let Some(s) = sums.first() {
        out.line_count = s[0].as_i64();
        out.sum_qty = s[1].as_i64();
        out.sum_revenue = s[2].as_i64();
    }
    Some(out)
}
