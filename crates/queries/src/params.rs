//! Typed substitution parameters for every query of the study.
//!
//! The paper fixes each TPC-H/SSB substitution parameter to one constant
//! (§3.3); this module makes them first-class instead. Each query
//! declares a typed parameter struct whose [`Default`] reproduces the
//! paper's instance exactly, and whose validating constructor accepts
//! the benchmark's substitution domain. Constructors **bind** at
//! construction time — calendar dates become epoch-day ints, decimals
//! become fixed-point ints at the column scale, dictionary strings
//! become codes — so the engine bodies read pre-normalized scalars and
//! pay no per-tuple translation cost.
//!
//! The [`Params`] enum ties a parameter struct to its query; plan bodies
//! receive `&Params` through [`crate::QueryPlan`] and extract their
//! variant with the typed accessors ([`Params::q6`], …).

use crate::QueryId;
use dbep_datagen::ssb::REGIONS;
use dbep_datagen::tpch::{COLORS, SEGMENTS, SHIPMODES};
use dbep_storage::types::{civil, date, format_date, parse_date, Date};
use std::fmt;

/// A rejected parameter binding: which query, and why.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamError {
    pub query: QueryId,
    pub what: String,
}

impl ParamError {
    fn new(query: QueryId, what: impl Into<String>) -> Self {
        ParamError {
            query,
            what: what.into(),
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parameters for {}: {}", self.query.name(), self.what)
    }
}

impl std::error::Error for ParamError {}

type Result<T> = std::result::Result<T, ParamError>;

/// First day of the month after `(year, month)`.
fn next_month(year: i32, month: u32) -> Date {
    if month == 12 {
        date(year + 1, 1, 1)
    } else {
        date(year, month + 1, 1)
    }
}

// ---------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------

/// Q1: `l_shipdate <= DATE '1998-12-01' - DELTA days`.
///
/// Spec domain: DELTA ∈ [60, 120]; the paper uses 90 (cutoff
/// 1998-09-02).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q1Params {
    /// Bound shipdate cutoff (inclusive), epoch days.
    pub ship_cut: Date,
}

impl Default for Q1Params {
    fn default() -> Self {
        Q1Params {
            ship_cut: date(1998, 9, 2),
        }
    }
}

impl Q1Params {
    pub fn new(delta_days: i32) -> Result<Self> {
        if !(60..=120).contains(&delta_days) {
            return Err(ParamError::new(
                QueryId::Q1,
                format!("DELTA {delta_days} outside [60, 120]"),
            ));
        }
        Ok(Q1Params {
            ship_cut: date(1998, 12, 1) - delta_days,
        })
    }
}

/// Q6: one-year shipdate window, discount ± 0.01, quantity cutoff.
///
/// Spec domain: year ∈ [1993, 1997], discount ∈ [0.02, 0.09],
/// quantity ∈ {24, 25}; the paper uses 1994 / 0.06 / 24.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q6Params {
    /// Bound shipdate window `[ship_lo, ship_hi)`, epoch days.
    pub ship_lo: Date,
    pub ship_hi: Date,
    /// Bound discount window (inclusive), scale-2 fixed point.
    pub disc_lo: i64,
    pub disc_hi: i64,
    /// Bound exclusive quantity cutoff, scale-2 fixed point.
    pub qty_hi: i64,
}

impl Default for Q6Params {
    fn default() -> Self {
        Q6Params {
            ship_lo: date(1994, 1, 1),
            ship_hi: date(1995, 1, 1),
            disc_lo: 5,
            disc_hi: 7,
            qty_hi: 2400,
        }
    }
}

impl Q6Params {
    /// `year` selects the window `[Jan 1 year, Jan 1 year+1)`;
    /// `discount_cents` is the center of the ±0.01 discount band
    /// (e.g. 6 for 0.06); `quantity` is whole units.
    pub fn new(year: i32, discount_cents: i64, quantity: i64) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Q6, what);
        if !(1993..=1997).contains(&year) {
            return Err(err(format!("year {year} outside [1993, 1997]")));
        }
        if !(1..=9).contains(&discount_cents) {
            return Err(err(format!("discount {discount_cents} outside [1, 9] cents")));
        }
        if !(1..=50).contains(&quantity) {
            return Err(err(format!("quantity {quantity} outside [1, 50]")));
        }
        Ok(Q6Params {
            ship_lo: date(year, 1, 1),
            ship_hi: date(year + 1, 1, 1),
            disc_lo: discount_cents - 1,
            disc_hi: discount_cents + 1,
            qty_hi: quantity * 100,
        })
    }
}

/// Q3: market segment + order/ship date cutoff.
///
/// Spec domain: any `c_mktsegment` value, date ∈ March 1995; the paper
/// uses BUILDING / 1995-03-15.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q3Params {
    /// Bound segment filter value (exact match on `c_mktsegment`).
    pub segment: String,
    /// Bound date cutoff (orders strictly before, shipments strictly
    /// after), epoch days.
    pub cut: Date,
}

impl Default for Q3Params {
    fn default() -> Self {
        Q3Params {
            segment: "BUILDING".to_string(),
            cut: date(1995, 3, 15),
        }
    }
}

impl Q3Params {
    pub fn new(segment: &str, cut: Date) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Q3, what);
        if !SEGMENTS.contains(&segment) {
            return Err(err(format!("unknown market segment {segment:?}")));
        }
        if !(date(1992, 1, 1)..=date(1998, 12, 31)).contains(&cut) {
            return Err(err(format!("cutoff {} outside the data range", format_date(cut))));
        }
        Ok(Q3Params {
            segment: segment.to_string(),
            cut,
        })
    }
}

/// Q4: three-month order-date window.
///
/// Spec domain: quarters from 1993-Q1 through 1997-Q4; the paper uses
/// 1993-Q3 (window `[1993-07-01, 1993-10-01)`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q4Params {
    /// Bound order-date window `[date_lo, date_hi)`, epoch days.
    pub date_lo: Date,
    pub date_hi: Date,
}

impl Default for Q4Params {
    fn default() -> Self {
        Q4Params {
            date_lo: date(1993, 7, 1),
            date_hi: date(1993, 10, 1),
        }
    }
}

impl Q4Params {
    pub fn new(year: i32, quarter: u32) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Q4, what);
        if !(1993..=1997).contains(&year) {
            return Err(err(format!("year {year} outside [1993, 1997]")));
        }
        if !(1..=4).contains(&quarter) {
            return Err(err(format!("quarter {quarter} outside [1, 4]")));
        }
        let month = (quarter - 1) * 3 + 1;
        Ok(Q4Params {
            date_lo: date(year, month, 1),
            date_hi: if quarter == 4 {
                date(year + 1, 1, 1)
            } else {
                date(year, month + 3, 1)
            },
        })
    }
}

/// Q9: part-name substring filter (`p_name LIKE '%COLOR%'`).
///
/// Spec domain: any dbgen color word; the paper uses "green".
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q9Params {
    /// Bound substring needle.
    pub needle: String,
}

impl Default for Q9Params {
    fn default() -> Self {
        Q9Params {
            needle: "green".to_string(),
        }
    }
}

impl Q9Params {
    pub fn new(color: &str) -> Result<Self> {
        if !COLORS.contains(&color) {
            return Err(ParamError::new(
                QueryId::Q9,
                format!("unknown p_name color word {color:?}"),
            ));
        }
        Ok(Q9Params {
            needle: color.to_string(),
        })
    }
}

/// Q12: two ship modes + one receipt year.
///
/// Spec domain: distinct `l_shipmode` values, year ∈ [1993, 1997]; the
/// paper uses MAIL/SHIP and 1994.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q12Params {
    /// Bound IN-list, sorted ascending (also the group-by domain).
    pub modes: [String; 2],
    /// Bound receiptdate window `[receipt_lo, receipt_hi)`, epoch days.
    pub receipt_lo: Date,
    pub receipt_hi: Date,
}

impl Default for Q12Params {
    fn default() -> Self {
        Q12Params {
            modes: ["MAIL".to_string(), "SHIP".to_string()],
            receipt_lo: date(1994, 1, 1),
            receipt_hi: date(1995, 1, 1),
        }
    }
}

impl Q12Params {
    pub fn new(mode_a: &str, mode_b: &str, year: i32) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Q12, what);
        for m in [mode_a, mode_b] {
            if !SHIPMODES.contains(&m) {
                return Err(err(format!("unknown ship mode {m:?}")));
            }
        }
        if mode_a == mode_b {
            return Err(err(format!("ship modes must be distinct, got {mode_a:?} twice")));
        }
        if !(1993..=1997).contains(&year) {
            return Err(err(format!("year {year} outside [1993, 1997]")));
        }
        let mut modes = [mode_a.to_string(), mode_b.to_string()];
        modes.sort();
        Ok(Q12Params {
            modes,
            receipt_lo: date(year, 1, 1),
            receipt_hi: date(year + 1, 1, 1),
        })
    }
}

/// Q14: one-month shipdate window (the `LIKE 'PROMO%'` prefix is part
/// of the query text and rides along so no constant lives in an engine
/// body).
///
/// Spec domain: months from 1993-01 through 1997-12; the paper uses
/// 1995-09.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q14Params {
    /// Bound shipdate window `[ship_lo, ship_hi)`, epoch days.
    pub ship_lo: Date,
    pub ship_hi: Date,
    /// `p_type` prefix of the CASE arm (query text, not a substitution
    /// parameter).
    pub prefix: String,
}

impl Default for Q14Params {
    fn default() -> Self {
        Q14Params {
            ship_lo: date(1995, 9, 1),
            ship_hi: date(1995, 10, 1),
            prefix: "PROMO".to_string(),
        }
    }
}

impl Q14Params {
    pub fn new(year: i32, month: u32) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Q14, what);
        if !(1993..=1997).contains(&year) {
            return Err(err(format!("year {year} outside [1993, 1997]")));
        }
        if !(1..=12).contains(&month) {
            return Err(err(format!("month {month} outside [1, 12]")));
        }
        Ok(Q14Params {
            ship_lo: date(year, month, 1),
            ship_hi: next_month(year, month),
            ..Default::default()
        })
    }
}

/// Q18: HAVING `sum(l_quantity) > QUANTITY`.
///
/// Spec domain: quantity ∈ [312, 315]; the paper uses 300.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Q18Params {
    /// Bound exclusive quantity threshold, scale-2 fixed point.
    pub qty_limit: i64,
}

impl Default for Q18Params {
    fn default() -> Self {
        Q18Params { qty_limit: 300 * 100 }
    }
}

impl Q18Params {
    pub fn new(quantity: i64) -> Result<Self> {
        if !(1..=1000).contains(&quantity) {
            return Err(ParamError::new(
                QueryId::Q18,
                format!("quantity {quantity} outside [1, 1000]"),
            ));
        }
        Ok(Q18Params {
            qty_limit: quantity * 100,
        })
    }
}

// ---------------------------------------------------------------------
// SSB
// ---------------------------------------------------------------------

/// SSB Q1.1: one order year, a discount band and a quantity cutoff
/// (flight constants 1993 / [1, 3] / 25).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SsbQ11Params {
    /// Bound `d_year` filter.
    pub year: i32,
    /// Bound discount window (inclusive), scale-2 fixed point.
    pub disc_lo: i64,
    pub disc_hi: i64,
    /// Bound exclusive quantity cutoff, scale-2 fixed point.
    pub qty_hi: i64,
}

impl Default for SsbQ11Params {
    fn default() -> Self {
        SsbQ11Params {
            year: 1993,
            disc_lo: 1,
            disc_hi: 3,
            qty_hi: 2500,
        }
    }
}

impl SsbQ11Params {
    pub fn new(year: i32, disc_lo: i64, disc_hi: i64, quantity_max: i64) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Ssb1_1, what);
        if !(1992..=1998).contains(&year) {
            return Err(err(format!("year {year} outside [1992, 1998]")));
        }
        if !(0..=10).contains(&disc_lo) || !(disc_lo..=10).contains(&disc_hi) {
            return Err(err(format!("discount band [{disc_lo}, {disc_hi}] invalid")));
        }
        if !(1..=50).contains(&quantity_max) {
            return Err(err(format!("quantity {quantity_max} outside [1, 50]")));
        }
        Ok(SsbQ11Params {
            year,
            disc_lo,
            disc_hi,
            qty_hi: quantity_max * 100,
        })
    }
}

/// SSB Q2.1: part category + supplier region (flight constants
/// MFGR#12 / AMERICA).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SsbQ21Params {
    /// Bound dictionary code of `p_category`.
    pub category: i32,
    /// Bound dictionary code of `s_region`.
    pub region: i32,
}

impl Default for SsbQ21Params {
    fn default() -> Self {
        SsbQ21Params {
            category: 12,
            region: region_code_checked("AMERICA", QueryId::Ssb2_1).expect("default region"),
        }
    }
}

impl SsbQ21Params {
    pub fn new(category: &str, region: &str) -> Result<Self> {
        Ok(SsbQ21Params {
            category: category_code_checked(category, QueryId::Ssb2_1)?,
            region: region_code_checked(region, QueryId::Ssb2_1)?,
        })
    }
}

/// SSB Q3.1: customer/supplier regions + inclusive year span (flight
/// constants ASIA / ASIA / [1992, 1997]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SsbQ31Params {
    /// Bound dictionary code of `c_region`.
    pub cust_region: i32,
    /// Bound dictionary code of `s_region`.
    pub supp_region: i32,
    /// Bound inclusive `d_year` span.
    pub year_lo: i32,
    pub year_hi: i32,
}

impl Default for SsbQ31Params {
    fn default() -> Self {
        let asia = region_code_checked("ASIA", QueryId::Ssb3_1).expect("default region");
        SsbQ31Params {
            cust_region: asia,
            supp_region: asia,
            year_lo: 1992,
            year_hi: 1997,
        }
    }
}

impl SsbQ31Params {
    pub fn new(cust_region: &str, supp_region: &str, year_lo: i32, year_hi: i32) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Ssb3_1, what);
        if !(1992..=1998).contains(&year_lo) || !(year_lo..=1998).contains(&year_hi) {
            return Err(err(format!("year span [{year_lo}, {year_hi}] invalid")));
        }
        Ok(SsbQ31Params {
            cust_region: region_code_checked(cust_region, QueryId::Ssb3_1)?,
            supp_region: region_code_checked(supp_region, QueryId::Ssb3_1)?,
            year_lo,
            year_hi,
        })
    }
}

/// SSB Q4.1: customer/supplier regions + two part manufacturers
/// (flight constants AMERICA / AMERICA / {MFGR#1, MFGR#2}).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SsbQ41Params {
    /// Bound dictionary code of `c_region`.
    pub cust_region: i32,
    /// Bound dictionary code of `s_region`.
    pub supp_region: i32,
    /// Bound `p_mfgr` codes, sorted ascending.
    pub mfgrs: [i32; 2],
}

impl Default for SsbQ41Params {
    fn default() -> Self {
        let america = region_code_checked("AMERICA", QueryId::Ssb4_1).expect("default region");
        SsbQ41Params {
            cust_region: america,
            supp_region: america,
            mfgrs: [1, 2],
        }
    }
}

impl SsbQ41Params {
    pub fn new(cust_region: &str, supp_region: &str, mfgr_a: i32, mfgr_b: i32) -> Result<Self> {
        let err = |what: String| ParamError::new(QueryId::Ssb4_1, what);
        for m in [mfgr_a, mfgr_b] {
            if !(1..=5).contains(&m) {
                return Err(err(format!("mfgr {m} outside [1, 5]")));
            }
        }
        if mfgr_a == mfgr_b {
            return Err(err(format!("mfgrs must be distinct, got {mfgr_a} twice")));
        }
        let mut mfgrs = [mfgr_a, mfgr_b];
        mfgrs.sort_unstable();
        Ok(SsbQ41Params {
            cust_region: region_code_checked(cust_region, QueryId::Ssb4_1)?,
            supp_region: region_code_checked(supp_region, QueryId::Ssb4_1)?,
            mfgrs,
        })
    }
}

/// Non-panicking [`dbep_datagen::ssb::region_code`].
fn region_code_checked(name: &str, q: QueryId) -> Result<i32> {
    REGIONS
        .iter()
        .position(|r| *r == name)
        .map(|i| i as i32)
        .ok_or_else(|| ParamError::new(q, format!("unknown region {name:?}")))
}

/// Non-panicking [`dbep_datagen::ssb::category_code`] (`"MFGR#mc"`,
/// m/c ∈ [1, 5]).
fn category_code_checked(name: &str, q: QueryId) -> Result<i32> {
    let bad = || ParamError::new(q, format!("category {name:?} not of the form MFGR#mc"));
    let digits = name.strip_prefix("MFGR#").ok_or_else(bad)?;
    let code: i32 = digits.parse().map_err(|_| bad())?;
    if !(1..=5).contains(&(code / 10)) || !(1..=5).contains(&(code % 10)) {
        return Err(bad());
    }
    Ok(code)
}

// ---------------------------------------------------------------------
// The dispatch enum
// ---------------------------------------------------------------------

macro_rules! params_enum {
    ($( $variant:ident => $ty:ident / $accessor:ident ),* $(,)?) => {
        /// Bound, validated substitution parameters for one query.
        ///
        /// Construct through the per-query validating constructors (or
        /// [`Params::default_for`] for the paper's instance); the
        /// variant must match the query the plan is registered under.
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        pub enum Params {
            $( $variant($ty), )*
        }

        $(
            impl From<$ty> for Params {
                fn from(p: $ty) -> Params {
                    Params::$variant(p)
                }
            }
        )*

        impl Params {
            /// The paper's parameter instance for `query` (§3.3).
            pub fn default_for(query: QueryId) -> Params {
                match query {
                    $( QueryId::$variant => Params::$variant($ty::default()), )*
                }
            }

            /// The query these parameters bind.
            pub fn query(&self) -> QueryId {
                match self {
                    $( Params::$variant(_) => QueryId::$variant, )*
                }
            }

            $(
                /// Typed accessor; panics if the variant does not match
                /// (prepared queries guarantee it does).
                pub fn $accessor(&self) -> &$ty {
                    match self {
                        Params::$variant(p) => p,
                        other => panic!(
                            concat!("expected ", stringify!($variant), " parameters, got {:?}"),
                            other.query()
                        ),
                    }
                }
            )*
        }
    };
}

params_enum! {
    Q1 => Q1Params / q1,
    Q6 => Q6Params / q6,
    Q3 => Q3Params / q3,
    Q9 => Q9Params / q9,
    Q18 => Q18Params / q18,
    Q4 => Q4Params / q4,
    Q12 => Q12Params / q12,
    Q14 => Q14Params / q14,
    Ssb1_1 => SsbQ11Params / ssb1_1,
    Ssb2_1 => SsbQ21Params / ssb2_1,
    Ssb3_1 => SsbQ31Params / ssb3_1,
    Ssb4_1 => SsbQ41Params / ssb4_1,
}

// ---------------------------------------------------------------------
// The wire spec: a textual, domain-level parameter codec
// ---------------------------------------------------------------------

/// Accumulated `key=value` fields of one parameter spec, with usage
/// tracking so unknown keys are rejected after the constructor has
/// consumed the expected ones.
struct SpecFields {
    query: QueryId,
    entries: Vec<(String, String)>,
    used: std::cell::RefCell<Vec<bool>>,
}

impl SpecFields {
    fn parse(query: QueryId, spec: &str) -> Result<SpecFields> {
        let err = |what: String| ParamError::new(query, what);
        let mut entries: Vec<(String, String)> = Vec::new();
        for pair in spec.split(';') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| err(format!("spec field {pair:?} is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return Err(err(format!("spec field {pair:?} has an empty key or value")));
            }
            if entries.iter().any(|(k, _)| k == key) {
                return Err(err(format!("duplicate spec key {key:?}")));
            }
            entries.push((key.to_string(), value.to_string()));
        }
        let used = std::cell::RefCell::new(vec![false; entries.len()]);
        Ok(SpecFields { query, entries, used })
    }

    fn str(&self, key: &str) -> Result<&str> {
        let i = self
            .entries
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| ParamError::new(self.query, format!("spec is missing key {key:?}")))?;
        self.used.borrow_mut()[i] = true;
        Ok(&self.entries[i].1)
    }

    fn int<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let v = self.str(key)?;
        v.parse().map_err(|_| {
            ParamError::new(
                self.query,
                format!("spec key {key:?} has non-integer value {v:?}"),
            )
        })
    }

    fn date(&self, key: &str) -> Result<Date> {
        let v = self.str(key)?;
        parse_date(v).ok_or_else(|| {
            ParamError::new(
                self.query,
                format!("spec key {key:?} is not a YYYY-MM-DD date: {v:?}"),
            )
        })
    }

    /// Reject any key no constructor asked for.
    fn finish(&self) -> Result<()> {
        let used = self.used.borrow();
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !used[i] {
                return Err(ParamError::new(self.query, format!("unexpected spec key {k:?}")));
            }
        }
        Ok(())
    }
}

impl Params {
    /// Render this binding as its wire spec: `;`-separated `key=value`
    /// fields over the **substitution domain** (years, cents, dictionary
    /// words — not the bound epoch-day/fixed-point values), so a spec is
    /// human-writable and survives protocol hops as plain text.
    /// [`Params::from_spec`] inverts it exactly.
    pub fn to_spec(&self) -> String {
        match self {
            Params::Q1(p) => format!("delta={}", date(1998, 12, 1) - p.ship_cut),
            Params::Q6(p) => {
                let (year, _, _) = civil(p.ship_lo);
                format!(
                    "year={year};discount={};quantity={}",
                    p.disc_lo + 1,
                    p.qty_hi / 100
                )
            }
            Params::Q3(p) => format!("segment={};cut={}", p.segment, format_date(p.cut)),
            Params::Q4(p) => {
                let (year, month, _) = civil(p.date_lo);
                format!("year={year};quarter={}", (month - 1) / 3 + 1)
            }
            Params::Q9(p) => format!("color={}", p.needle),
            Params::Q12(p) => {
                let (year, _, _) = civil(p.receipt_lo);
                format!("mode_a={};mode_b={};year={year}", p.modes[0], p.modes[1])
            }
            Params::Q14(p) => {
                let (year, month, _) = civil(p.ship_lo);
                format!("year={year};month={month}")
            }
            Params::Q18(p) => format!("quantity={}", p.qty_limit / 100),
            Params::Ssb1_1(p) => format!(
                "year={};disc_lo={};disc_hi={};quantity={}",
                p.year,
                p.disc_lo,
                p.disc_hi,
                p.qty_hi / 100
            ),
            Params::Ssb2_1(p) => format!(
                "category=MFGR#{};region={}",
                p.category, REGIONS[p.region as usize]
            ),
            Params::Ssb3_1(p) => format!(
                "cust_region={};supp_region={};year_lo={};year_hi={}",
                REGIONS[p.cust_region as usize], REGIONS[p.supp_region as usize], p.year_lo, p.year_hi
            ),
            Params::Ssb4_1(p) => format!(
                "cust_region={};supp_region={};mfgr_a={};mfgr_b={}",
                REGIONS[p.cust_region as usize], REGIONS[p.supp_region as usize], p.mfgrs[0], p.mfgrs[1]
            ),
        }
    }

    /// Parse a wire spec back into a validated binding for `query`. An
    /// empty (or all-whitespace) spec means the paper's default
    /// instance. Every value passes through the same validating
    /// constructor as a native binding, so a malformed or out-of-domain
    /// spec fails with the constructor's own [`ParamError`].
    pub fn from_spec(query: QueryId, spec: &str) -> Result<Params> {
        if spec.trim().is_empty() {
            return Ok(Params::default_for(query));
        }
        let f = SpecFields::parse(query, spec)?;
        let params: Params = match query {
            QueryId::Q1 => Q1Params::new(f.int("delta")?)?.into(),
            QueryId::Q6 => Q6Params::new(f.int("year")?, f.int("discount")?, f.int("quantity")?)?.into(),
            QueryId::Q3 => Q3Params::new(f.str("segment")?, f.date("cut")?)?.into(),
            QueryId::Q4 => Q4Params::new(f.int("year")?, f.int("quarter")?)?.into(),
            QueryId::Q9 => Q9Params::new(f.str("color")?)?.into(),
            QueryId::Q12 => Q12Params::new(f.str("mode_a")?, f.str("mode_b")?, f.int("year")?)?.into(),
            QueryId::Q14 => Q14Params::new(f.int("year")?, f.int("month")?)?.into(),
            QueryId::Q18 => Q18Params::new(f.int("quantity")?)?.into(),
            QueryId::Ssb1_1 => SsbQ11Params::new(
                f.int("year")?,
                f.int("disc_lo")?,
                f.int("disc_hi")?,
                f.int("quantity")?,
            )?
            .into(),
            QueryId::Ssb2_1 => SsbQ21Params::new(f.str("category")?, f.str("region")?)?.into(),
            QueryId::Ssb3_1 => SsbQ31Params::new(
                f.str("cust_region")?,
                f.str("supp_region")?,
                f.int("year_lo")?,
                f.int("year_hi")?,
            )?
            .into(),
            QueryId::Ssb4_1 => SsbQ41Params::new(
                f.str("cust_region")?,
                f.str("supp_region")?,
                f.int("mfgr_a")?,
                f.int("mfgr_b")?,
            )?
            .into(),
        };
        f.finish()?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_constants() {
        assert_eq!(Q1Params::new(90).unwrap(), Q1Params::default());
        assert_eq!(Q6Params::new(1994, 6, 24).unwrap(), Q6Params::default());
        assert_eq!(
            Q3Params::new("BUILDING", date(1995, 3, 15)).unwrap(),
            Q3Params::default()
        );
        assert_eq!(Q4Params::new(1993, 3).unwrap(), Q4Params::default());
        assert_eq!(Q9Params::new("green").unwrap(), Q9Params::default());
        assert_eq!(
            Q12Params::new("MAIL", "SHIP", 1994).unwrap(),
            Q12Params::default()
        );
        assert_eq!(Q14Params::new(1995, 9).unwrap(), Q14Params::default());
        assert_eq!(Q18Params::new(300).unwrap(), Q18Params::default());
        assert_eq!(
            SsbQ11Params::new(1993, 1, 3, 25).unwrap(),
            SsbQ11Params::default()
        );
        assert_eq!(
            SsbQ21Params::new("MFGR#12", "AMERICA").unwrap(),
            SsbQ21Params::default()
        );
        assert_eq!(
            SsbQ31Params::new("ASIA", "ASIA", 1992, 1997).unwrap(),
            SsbQ31Params::default()
        );
        assert_eq!(
            SsbQ41Params::new("AMERICA", "AMERICA", 1, 2).unwrap(),
            SsbQ41Params::default()
        );
    }

    #[test]
    fn binding_normalizes() {
        let q6 = Q6Params::new(1995, 3, 30).unwrap();
        assert_eq!(q6.ship_lo, date(1995, 1, 1));
        assert_eq!(q6.ship_hi, date(1996, 1, 1));
        assert_eq!((q6.disc_lo, q6.disc_hi), (2, 4));
        assert_eq!(q6.qty_hi, 3000);
        let q4 = Q4Params::new(1997, 4).unwrap();
        assert_eq!(q4.date_lo, date(1997, 10, 1));
        assert_eq!(q4.date_hi, date(1998, 1, 1));
        let q12 = Q12Params::new("TRUCK", "AIR", 1996).unwrap();
        assert_eq!(q12.modes, ["AIR".to_string(), "TRUCK".to_string()]);
        let q14 = Q14Params::new(1997, 12).unwrap();
        assert_eq!(q14.ship_hi, date(1998, 1, 1));
        let s21 = SsbQ21Params::new("MFGR#35", "EUROPE").unwrap();
        assert_eq!(s21.category, 35);
        assert_eq!(s21.region, 3);
        let s41 = SsbQ41Params::new("ASIA", "AFRICA", 5, 3).unwrap();
        assert_eq!(s41.mfgrs, [3, 5]);
    }

    #[test]
    fn invalid_bindings_are_rejected() {
        assert!(Q1Params::new(30).is_err());
        assert!(Q6Params::new(1999, 6, 24).is_err());
        assert!(Q6Params::new(1994, 0, 24).is_err());
        assert!(Q3Params::new("SHOES", date(1995, 3, 15)).is_err());
        assert!(Q3Params::new("BUILDING", date(2005, 1, 1)).is_err());
        assert!(Q4Params::new(1993, 5).is_err());
        assert!(Q9Params::new("mauve-ish").is_err());
        assert!(Q12Params::new("MAIL", "MAIL", 1994).is_err());
        assert!(Q12Params::new("MAIL", "BOAT", 1994).is_err());
        assert!(Q14Params::new(1995, 13).is_err());
        assert!(Q18Params::new(0).is_err());
        assert!(SsbQ11Params::new(1993, 5, 3, 25).is_err());
        assert!(SsbQ21Params::new("MFGR#62", "AMERICA").is_err());
        assert!(SsbQ21Params::new("MFGR#12", "ATLANTIS").is_err());
        assert!(SsbQ31Params::new("ASIA", "ASIA", 1997, 1992).is_err());
        assert!(SsbQ41Params::new("ASIA", "ASIA", 2, 2).is_err());
    }

    #[test]
    fn enum_roundtrip_and_accessors() {
        for q in QueryId::ALL {
            let p = Params::default_for(q);
            assert_eq!(p.query(), q, "variant/query mismatch for {}", q.name());
        }
        let p: Params = Q18Params::new(315).unwrap().into();
        assert_eq!(p.q18().qty_limit, 31500);
    }

    #[test]
    #[should_panic(expected = "expected Q6 parameters")]
    fn accessor_mismatch_panics() {
        Params::default_for(QueryId::Q1).q6();
    }

    #[test]
    fn specs_roundtrip_every_default() {
        for q in QueryId::ALL {
            let p = Params::default_for(q);
            let spec = p.to_spec();
            assert_eq!(
                Params::from_spec(q, &spec).unwrap(),
                p,
                "{} spec {spec:?}",
                q.name()
            );
            // The empty spec is shorthand for the default instance.
            assert_eq!(Params::from_spec(q, "  ").unwrap(), p);
        }
    }

    #[test]
    fn specs_roundtrip_non_default_bindings() {
        let bindings: Vec<Params> = vec![
            Q1Params::new(120).unwrap().into(),
            Q6Params::new(1995, 3, 30).unwrap().into(),
            Q3Params::new("MACHINERY", date(1995, 3, 7)).unwrap().into(),
            Q4Params::new(1997, 4).unwrap().into(),
            Q9Params::new("ivory").unwrap().into(),
            // Values with spaces must survive the `;` field separator.
            Q12Params::new("REG AIR", "TRUCK", 1996).unwrap().into(),
            Q14Params::new(1997, 12).unwrap().into(),
            Q18Params::new(315).unwrap().into(),
            SsbQ11Params::new(1996, 4, 6, 26).unwrap().into(),
            SsbQ21Params::new("MFGR#35", "MIDDLE EAST").unwrap().into(),
            SsbQ31Params::new("EUROPE", "MIDDLE EAST", 1994, 1996)
                .unwrap()
                .into(),
            SsbQ41Params::new("ASIA", "AFRICA", 5, 3).unwrap().into(),
        ];
        for p in bindings {
            let spec = p.to_spec();
            assert_eq!(Params::from_spec(p.query(), &spec).unwrap(), p, "spec {spec:?}");
        }
    }

    #[test]
    fn specs_are_order_insensitive_and_trimmed() {
        assert_eq!(
            Params::from_spec(QueryId::Q6, " quantity=24 ; year=1994 ; discount=6 ").unwrap(),
            Params::default_for(QueryId::Q6)
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        // Not key=value.
        assert!(Params::from_spec(QueryId::Q1, "delta").is_err());
        // Empty value.
        assert!(Params::from_spec(QueryId::Q1, "delta=").is_err());
        // Missing key.
        assert!(Params::from_spec(QueryId::Q6, "year=1994;discount=6").is_err());
        // Unexpected key.
        assert!(Params::from_spec(QueryId::Q1, "delta=90;bogus=1").is_err());
        // Duplicate key.
        assert!(Params::from_spec(QueryId::Q1, "delta=90;delta=90").is_err());
        // Non-integer value.
        assert!(Params::from_spec(QueryId::Q1, "delta=soon").is_err());
        // Bad date.
        assert!(Params::from_spec(QueryId::Q3, "segment=BUILDING;cut=1995-3").is_err());
        // Out-of-domain values go through the validating constructors.
        assert!(Params::from_spec(QueryId::Q1, "delta=30").is_err());
        assert!(Params::from_spec(QueryId::Ssb2_1, "category=MFGR#62;region=AMERICA").is_err());
    }
}
