//! Engine-independent query results.
//!
//! All three engines of the study funnel their output through
//! [`QueryResult`], with ordering applied by one shared deterministic
//! sort, so cross-engine equality is exact (no float rounding, no tie
//! ambiguity: rows equal on all ORDER BY keys fall back to full-row
//! order).

pub use dbep_storage::types::Value;

/// A finished query result: named columns, ordered rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// One ORDER BY key: column position and direction.
#[derive(Clone, Copy, Debug)]
pub struct OrderBy {
    pub col: usize,
    pub desc: bool,
}

impl OrderBy {
    pub fn asc(col: usize) -> Self {
        OrderBy { col, desc: false }
    }

    pub fn desc(col: usize) -> Self {
        OrderBy { col, desc: true }
    }
}

impl QueryResult {
    /// Assemble a result: sorts by `order` (ties broken by full-row
    /// comparison, making every engine's output identical), applies the
    /// optional LIMIT.
    pub fn new(columns: &[&str], mut rows: Vec<Vec<Value>>, order: &[OrderBy], limit: Option<usize>) -> Self {
        for row in &rows {
            assert_eq!(row.len(), columns.len(), "row arity mismatch");
        }
        rows.sort_unstable_by(|a, b| {
            for k in order {
                let ord = a[k.col].cmp(&b[k.col]);
                let ord = if k.desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            a.cmp(b)
        });
        if let Some(l) = limit {
            rows.truncate(l);
        }
        QueryResult {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A stable 64-bit digest of the full result (column names, row
    /// order, every value): FNV-1a over a canonical rendering with
    /// unambiguous separators. The wire protocol ships this instead of
    /// the rows, so a client can verify a served execution against a
    /// locally computed oracle without streaming result sets.
    pub fn checksum64(&self) -> u64 {
        let mut canon = String::new();
        for c in &self.columns {
            canon.push_str(c);
            canon.push('\u{1f}'); // unit separator: cannot occur in names/values
        }
        canon.push('\u{1e}'); // record separator between header and rows
        for row in &self.rows {
            for v in row {
                canon.push_str(&v.to_string());
                canon.push('\u{1f}');
            }
            canon.push('\u{1e}');
        }
        dbep_obs::fingerprint64(canon.as_bytes())
    }

    /// Render as an aligned text table (examples, debugging).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (w, c) in widths.iter().zip(&self.columns) {
            out.push_str(&format!("{c:>w$} "));
        }
        out.push('\n');
        for row in &rendered {
            for (w, cell) in widths.iter().zip(row) {
                out.push_str(&format!("{cell:>w$} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Fixed-point average at the summand's scale: `sum / count`, truncating
/// toward zero (shared by every engine so results agree bit-for-bit).
pub fn avg_i64(sum: i64, count: i64) -> i64 {
    if count == 0 {
        0
    } else {
        sum / count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_desc_with_tiebreak_and_limit() {
        let rows = vec![
            vec![Value::I64(1), Value::I64(10)],
            vec![Value::I64(2), Value::I64(30)],
            vec![Value::I64(3), Value::I64(30)],
            vec![Value::I64(4), Value::I64(20)],
        ];
        let r = QueryResult::new(&["k", "v"], rows, &[OrderBy::desc(1)], Some(3));
        assert_eq!(r.len(), 3);
        // 30-ties resolved by full-row comparison: k=2 before k=3.
        assert_eq!(r.rows[0][0], Value::I64(2));
        assert_eq!(r.rows[1][0], Value::I64(3));
        assert_eq!(r.rows[2][0], Value::I64(4));
    }

    #[test]
    fn multi_key_order() {
        let rows = vec![
            vec![Value::Str("b".into()), Value::I64(1)],
            vec![Value::Str("a".into()), Value::I64(2)],
            vec![Value::Str("a".into()), Value::I64(1)],
        ];
        let r = QueryResult::new(&["s", "v"], rows, &[OrderBy::asc(0), OrderBy::desc(1)], None);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Str("a".into()), Value::I64(2)],
                vec![Value::Str("a".into()), Value::I64(1)],
                vec![Value::Str("b".into()), Value::I64(1)],
            ]
        );
    }

    #[test]
    fn averages_truncate_consistently() {
        assert_eq!(avg_i64(725, 2), 362);
        assert_eq!(avg_i64(-725, 2), -362);
        assert_eq!(avg_i64(10, 0), 0);
    }

    #[test]
    fn to_table_renders() {
        let r = QueryResult::new(
            &["flag", "sum"],
            vec![vec![Value::Str("A".into()), Value::dec2(123456)]],
            &[],
            None,
        );
        let s = r.to_table();
        assert!(s.contains("flag"));
        assert!(s.contains("1234.56"));
    }

    #[test]
    fn checksums_are_stable_and_discriminating() {
        let a = QueryResult::new(&["k", "v"], vec![vec![Value::I64(1), Value::I64(10)]], &[], None);
        assert_eq!(a.checksum64(), a.clone().checksum64(), "deterministic");
        // Any change — value, arity split, column name — moves the digest.
        let diff_value = QueryResult::new(&["k", "v"], vec![vec![Value::I64(1), Value::I64(11)]], &[], None);
        assert_ne!(a.checksum64(), diff_value.checksum64());
        let diff_cols = QueryResult::new(&["k", "w"], vec![vec![Value::I64(1), Value::I64(10)]], &[], None);
        assert_ne!(a.checksum64(), diff_cols.checksum64());
        let empty = QueryResult::new(&["k", "v"], vec![], &[], None);
        assert_ne!(a.checksum64(), empty.checksum64());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        QueryResult::new(&["a"], vec![vec![Value::I64(1), Value::I64(2)]], &[], None);
    }
}
