//! Star Schema Benchmark plans (§4.4).
//!
//! All four flights share one shape: filters on small dimension tables
//! build hash tables, and the `lineorder` fact scan probes them in
//! sequence — "dominated by hash table probes", which is why the paper's
//! SSB results mirror TPC-H Q3/Q9.
//!
//! Dimension hierarchy values (region, nation, category, brand) are
//! dictionary-encoded integers (see `dbep-datagen::ssb`); plans resolve
//! constants like `'MFGR#12'` to codes at plan-build time and results
//! decode names back.

pub mod q1_1;
pub mod q2_1;
pub mod q3_1;
pub mod q4_1;

use dbep_runtime::hash::HashFn;
use dbep_runtime::JoinHt;
use dbep_vectorized as tw;
use dbep_vectorized::SimdPolicy;

/// Reusable scratch for a chain of Tectorwise dimension probes over one
/// fact chunk.
#[derive(Default)]
pub(crate) struct ProbeScratch {
    hashes: Vec<u64>,
    ordinals: Vec<u32>,
    pub bufs: tw::ProbeBuffers,
}

impl ProbeScratch {
    /// Probe `ht` with `fact_keys[rows[i]]`. After the call,
    /// `self.bufs.match_tuple` holds the surviving *ordinals* into
    /// `rows` and `self.bufs.match_entry` the matched entries; use
    /// [`realign_u32`]/[`realign_i32`] to shrink carried vectors.
    pub(crate) fn probe_step<T: Send + Sync>(
        &mut self,
        ht: &JoinHt<T>,
        fact_keys: &[i32],
        rows: &[u32],
        hf: HashFn,
        policy: SimdPolicy,
        eq: impl Fn(&T, i32) -> bool,
    ) -> usize {
        tw::hashp::hash_i32(fact_keys, rows, hf, &mut self.hashes);
        tw::hashp::iota(0, rows.len(), &mut self.ordinals);
        tw::probe::probe_join(
            ht,
            &self.hashes,
            &self.ordinals,
            |entry, j| eq(entry, fact_keys[rows[j as usize] as usize]),
            policy,
            &mut self.bufs,
        )
    }
}

/// `out[i] = src[ord[i]]` — shrink a carried vector after a probe.
pub(crate) fn realign_u32(src: &[u32], ord: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend(ord.iter().map(|&j| src[j as usize]));
}

/// As [`realign_u32`] for i32 payload vectors.
pub(crate) fn realign_i32(src: &[i32], ord: &[u32], out: &mut Vec<i32>) {
    out.clear();
    out.extend(ord.iter().map(|&j| src[j as usize]));
}
