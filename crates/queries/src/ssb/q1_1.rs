//! SSB Q1.1: selective fact filter + one dimension probe.
//!
//! ```sql
//! SELECT sum(lo_extendedprice * lo_discount) AS revenue
//! FROM lineorder, date
//! WHERE lo_orderdate = d_datekey AND d_year = 1993
//!   AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
//! ```

use crate::params::SsbQ11Params;
use crate::result::{QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_compiled::PackedReader;
use dbep_runtime::JoinHt;
use dbep_storage::{Database, PackedInts, Table};
use dbep_vectorized as tw;

const LO_BITS: usize = 8 * (4 + 8 + 8 + 8);

/// The four scanned fact columns, bandwidth-accounting order.
const LO_COLS: [&str; 4] = ["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"];

/// Bit-packed companions for all four fact columns, if present. The tiny
/// date dimension stays flat — compressing it saves nothing measurable.
fn packed_cols(lo: &Table) -> Option<[&PackedInts; 4]> {
    let mut out = [None; 4];
    for (slot, name) in out.iter_mut().zip(LO_COLS) {
        *slot = Some(lo.encoded(name)?.packed());
    }
    Some(out.map(|c| c.expect("filled above")))
}

fn finish(revenue: i64) -> QueryResult {
    QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None)
}

fn build_date_ht(db: &Database, hf: dbep_runtime::hash::HashFn, year: i32) -> JoinHt<i32> {
    let d = db.table("date");
    let dk = d.col("d_datekey").i32s();
    let dy = d.col("d_year").i32s();
    JoinHt::build(
        (0..d.len())
            .filter(|&i| dy[i] == year)
            .map(|i| (hf.hash(dk[i] as u64), dk[i])),
    )
}

/// Typer over encoded storage: the fused filter + probe + sum loop with
/// all four fact columns unpacked in registers.
fn typer_encoded(
    db: &Database,
    lo: &Table,
    cols: [&PackedInts; 4],
    cfg: &ExecCfg,
    p: &SsbQ11Params,
) -> QueryResult {
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.typer_hash();
    let ht_d = {
        let _s = cfg.stage(0);
        build_date_ht(db, hf, p.year)
    };
    let _stage = cfg.stage(1);
    let [od, disc, qty, ext] = cols;
    let locals = cfg.map_scan(
        lo.len(),
        lo.row_bits(&LO_COLS),
        |_| 0i64,
        |local, r| {
            let mut od_r = PackedReader::new(od, r.start);
            let mut disc_r = PackedReader::new(disc, r.start);
            let mut qty_r = PackedReader::new(qty, r.start);
            let mut ext_r = PackedReader::new(ext, r.start);
            for _ in r {
                let o = od_r.next() as i32;
                let d = disc_r.next();
                let q = qty_r.next();
                let e = ext_r.next();
                if d >= disc_lo && d <= disc_hi && q < qty_hi {
                    let h = hf.hash(o as u64);
                    if ht_d.probe(h).any(|entry| entry.row == o) {
                        *local += e * d;
                    }
                }
            }
        },
    );
    finish(locals.into_iter().sum())
}

/// Tectorwise over encoded storage: one fused BETWEEN kernel and one
/// fused sparse comparison replace the flat cascade; join keys and
/// measures decode through conditional-aggregate readers.
fn tectorwise_encoded(
    db: &Database,
    lo: &Table,
    cols: [&PackedInts; 4],
    cfg: &ExecCfg,
    p: &SsbQ11Params,
) -> QueryResult {
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let ht_d = {
        let _s = cfg.stage(0);
        build_date_ht(db, hf, p.year)
    };
    let _stage = cfg.stage(1);
    let [od, disc, qty, ext] = cols;
    #[derive(Default)]
    struct Scratch {
        local: i64,
        s1: Vec<u32>,
        s2: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_od: Vec<i64>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let locals = cfg.map_scan(
        lo.len(),
        lo.row_bits(&LO_COLS),
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                if tw::sel::sel_between_i64_for(disc, disc_lo, disc_hi, c, &mut st.s1, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_lt_i64_packed_sparse(qty, qty_hi, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                tw::gather::gather_packed_i64(od, &st.s2, policy, &mut st.v_od);
                st.hashes.clear();
                st.hashes.extend(st.v_od.iter().map(|&k| hf.hash(k as u64)));
                if tw::probe::probe_join(
                    &ht_d,
                    &st.hashes,
                    &st.s2,
                    |row, t| *row as i64 == od.get(t as usize),
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::gather::gather_packed_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                tw::gather::gather_packed_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                tw::map::map_mul_i64(&st.v_ext, &st.v_disc, &mut st.v_rev);
                st.local += tw::map::sum_i64(&st.v_rev, policy);
            }
        },
    );
    finish(locals.into_iter().map(|s| s.local).sum())
}

/// Typer: fused filter + probe + sum.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    let lo = db.table("lineorder");
    if let Some(cols) = packed_cols(lo) {
        return typer_encoded(db, lo, cols, cfg, p);
    }
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.typer_hash();
    let ht_d = {
        let _s = cfg.stage(0);
        build_date_ht(db, hf, p.year)
    };
    let _stage = cfg.stage(1);
    let od = lo.col("lo_orderdate").i32s();
    let disc = lo.col("lo_discount").i64s();
    let qty = lo.col("lo_quantity").i64s();
    let ext = lo.col("lo_extendedprice").i64s();
    let locals = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| 0i64,
        |local, r| {
            for i in r {
                if disc[i] >= disc_lo && disc[i] <= disc_hi && qty[i] < qty_hi {
                    let h = hf.hash(od[i] as u64);
                    if ht_d.probe(h).any(|e| e.row == od[i]) {
                        *local += ext[i] * disc[i];
                    }
                }
            }
        },
    );
    finish(locals.into_iter().sum())
}

/// Tectorwise: two selections, one probe, gather/multiply/sum.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    let lo = db.table("lineorder");
    if let Some(cols) = packed_cols(lo) {
        return tectorwise_encoded(db, lo, cols, cfg, p);
    }
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let ht_d = {
        let _s = cfg.stage(0);
        build_date_ht(db, hf, p.year)
    };
    let _stage = cfg.stage(1);
    let od = lo.col("lo_orderdate").i32s();
    let disc = lo.col("lo_discount").i64s();
    let qty = lo.col("lo_quantity").i64s();
    let ext = lo.col("lo_extendedprice").i64s();
    #[derive(Default)]
    struct Scratch {
        local: i64,
        s1: Vec<u32>,
        s2: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let locals = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                if tw::sel::sel_between_i64_dense(
                    &disc[c.clone()],
                    disc_lo,
                    disc_hi,
                    c.start as u32,
                    &mut st.s1,
                    policy,
                ) == 0
                {
                    continue;
                }
                if tw::sel::sel_lt_i64_sparse(qty, qty_hi, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                tw::hashp::hash_i32(od, &st.s2, hf, &mut st.hashes);
                if tw::probe::probe_join(
                    &ht_d,
                    &st.hashes,
                    &st.s2,
                    |row, t| *row == od[t as usize],
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::gather::gather_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                tw::gather::gather_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                tw::map::map_mul_i64(&st.v_ext, &st.v_disc, &mut st.v_rev);
                st.local += tw::map::sum_i64(&st.v_rev, policy);
            }
        },
    );
    finish(locals.into_iter().map(|s| s.local).sum())
}

/// Volcano: interpreted join + aggregate; `threads` partition the fact
/// scan through the exchange union, partial sums merge here.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, HashJoin, Scan, Select};
    let lo = db.table("lineorder");
    let m = Morsels::new(lo.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let dates = Select {
            input: Box::new(
                Scan::new(db.table("date"), &["d_datekey", "d_year"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.year)),
        };
        let fact = Select {
            input: Box::new(
                Scan::new(
                    lo,
                    &["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched)
                .morsel_driven(&m),
            ),
            pred: Expr::And(vec![
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit_i64(p.disc_lo)),
                Expr::cmp(CmpOp::Le, Expr::col(1), Expr::lit_i64(p.disc_hi)),
                Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit_i64(p.qty_hi)),
            ]),
        };
        // [d_datekey, d_year, lo_orderdate, lo_discount, lo_quantity, lo_ext]
        let join = HashJoin::new(
            Box::new(dates),
            vec![Expr::col(0)],
            Box::new(fact),
            vec![Expr::col(0)],
        );
        Box::new(Aggregate::new(
            Box::new(join),
            vec![],
            vec![AggSpec::SumI64(Expr::arith(
                BinOp::Mul,
                Expr::col(5),
                Expr::col(3),
            ))],
        ))
    });
    finish(partials.iter().map(|r| r[0].as_i64()).sum())
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q11;

impl crate::QueryPlan for Q11 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Ssb1_1
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineorder").len() + db.table("date").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // The date build is a single-threaded walk over one year of a
        // tiny dimension; the fact scan is selection-dominated (the
        // date probe hits a table that fits in L1).
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-date", StageKind::JoinBuild),
            StageDesc::new("scan-filter-lineorder", StageKind::ScanFilter),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.ssb1_1())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.ssb1_1())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.ssb1_1())
    }
}
