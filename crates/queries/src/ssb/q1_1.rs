//! SSB Q1.1: selective fact filter + one dimension probe.
//!
//! ```sql
//! SELECT sum(lo_extendedprice * lo_discount) AS revenue
//! FROM lineorder, date
//! WHERE lo_orderdate = d_datekey AND d_year = 1993
//!   AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25
//! ```

use crate::params::SsbQ11Params;
use crate::result::{QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_runtime::JoinHt;
use dbep_storage::Database;
use dbep_vectorized as tw;

const LO_BYTES: usize = 4 + 8 + 8 + 8;

fn finish(revenue: i64) -> QueryResult {
    QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None)
}

fn build_date_ht(db: &Database, hf: dbep_runtime::hash::HashFn, year: i32) -> JoinHt<i32> {
    let d = db.table("date");
    let dk = d.col("d_datekey").i32s();
    let dy = d.col("d_year").i32s();
    JoinHt::build(
        (0..d.len())
            .filter(|&i| dy[i] == year)
            .map(|i| (hf.hash(dk[i] as u64), dk[i])),
    )
}

/// Typer: fused filter + probe + sum.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.typer_hash();
    let ht_d = build_date_ht(db, hf, p.year);
    let lo = db.table("lineorder");
    let od = lo.col("lo_orderdate").i32s();
    let disc = lo.col("lo_discount").i64s();
    let qty = lo.col("lo_quantity").i64s();
    let ext = lo.col("lo_extendedprice").i64s();
    let locals = cfg.map_scan(
        lo.len(),
        LO_BYTES,
        |_| 0i64,
        |local, r| {
            for i in r {
                if disc[i] >= disc_lo && disc[i] <= disc_hi && qty[i] < qty_hi {
                    let h = hf.hash(od[i] as u64);
                    if ht_d.probe(h).any(|e| e.row == od[i]) {
                        *local += ext[i] * disc[i];
                    }
                }
            }
        },
    );
    finish(locals.into_iter().sum())
}

/// Tectorwise: two selections, one probe, gather/multiply/sum.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let ht_d = build_date_ht(db, hf, p.year);
    let lo = db.table("lineorder");
    let od = lo.col("lo_orderdate").i32s();
    let disc = lo.col("lo_discount").i64s();
    let qty = lo.col("lo_quantity").i64s();
    let ext = lo.col("lo_extendedprice").i64s();
    #[derive(Default)]
    struct Scratch {
        local: i64,
        s1: Vec<u32>,
        s2: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let locals = cfg.map_scan(
        lo.len(),
        LO_BYTES,
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                if tw::sel::sel_between_i64_dense(
                    &disc[c.clone()],
                    disc_lo,
                    disc_hi,
                    c.start as u32,
                    &mut st.s1,
                    policy,
                ) == 0
                {
                    continue;
                }
                if tw::sel::sel_lt_i64_sparse(qty, qty_hi, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                tw::hashp::hash_i32(od, &st.s2, hf, &mut st.hashes);
                if tw::probe::probe_join(
                    &ht_d,
                    &st.hashes,
                    &st.s2,
                    |row, t| *row == od[t as usize],
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::gather::gather_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                tw::gather::gather_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                tw::map::map_mul_i64(&st.v_ext, &st.v_disc, &mut st.v_rev);
                st.local += tw::map::sum_i64(&st.v_rev, policy);
            }
        },
    );
    finish(locals.into_iter().map(|s| s.local).sum())
}

/// Volcano: interpreted join + aggregate; `threads` partition the fact
/// scan through the exchange union, partial sums merge here.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &SsbQ11Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, HashJoin, Scan, Select};
    let lo = db.table("lineorder");
    let m = Morsels::new(lo.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let dates = Select {
            input: Box::new(Scan::new(db.table("date"), &["d_datekey", "d_year"]).paced(cfg.throttle)),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.year)),
        };
        let fact = Select {
            input: Box::new(
                Scan::new(
                    lo,
                    &["lo_orderdate", "lo_discount", "lo_quantity", "lo_extendedprice"],
                )
                .paced(cfg.throttle)
                .morsel_driven(&m),
            ),
            pred: Expr::And(vec![
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit_i64(p.disc_lo)),
                Expr::cmp(CmpOp::Le, Expr::col(1), Expr::lit_i64(p.disc_hi)),
                Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit_i64(p.qty_hi)),
            ]),
        };
        // [d_datekey, d_year, lo_orderdate, lo_discount, lo_quantity, lo_ext]
        let join = HashJoin::new(
            Box::new(dates),
            vec![Expr::col(0)],
            Box::new(fact),
            vec![Expr::col(0)],
        );
        Box::new(Aggregate::new(
            Box::new(join),
            vec![],
            vec![AggSpec::SumI64(Expr::arith(
                BinOp::Mul,
                Expr::col(5),
                Expr::col(3),
            ))],
        ))
    });
    finish(partials.iter().map(|r| r[0].as_i64()).sum())
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q11;

impl crate::QueryPlan for Q11 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Ssb1_1
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineorder").len() + db.table("date").len()
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.ssb1_1())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.ssb1_1())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.ssb1_1())
    }
}
