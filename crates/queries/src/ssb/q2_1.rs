//! SSB Q2.1: three dimension probes + (year, brand) aggregation.
//!
//! ```sql
//! SELECT sum(lo_revenue), d_year, p_brand1
//! FROM lineorder, date, part, supplier
//! WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey
//!   AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12'
//!   AND s_region = 'AMERICA'
//! GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1
//! ```

use crate::params::SsbQ21Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::ssb::{realign_i32, realign_u32, ProbeScratch};
use crate::{ExecCfg, Params};
use dbep_datagen::ssb::brand_name;
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::{GroupByShard, JoinHt};
use dbep_storage::Database;
use dbep_vectorized as tw;

const LO_BITS: usize = 8 * (4 * 3 + 8);
const PREAGG_GROUPS: usize = 1 << 12;

fn finish(groups: Vec<((i32, i32), i64)>) -> QueryResult {
    let rows = groups
        .into_iter()
        .map(|((year, brand), rev)| vec![Value::dec2(rev), Value::I32(year), Value::Str(brand_name(brand))])
        .collect();
    QueryResult::new(
        &["sum_revenue", "d_year", "p_brand1"],
        rows,
        &[OrderBy::asc(1), OrderBy::asc(2)],
        None,
    )
}

/// Dimension hash tables shared by Typer and Tectorwise (tiny builds).
struct Dims {
    ht_p: JoinHt<(i32, i32)>, // partkey → brand
    ht_s: JoinHt<i32>,        // suppkey (semi-join)
    ht_d: JoinHt<(i32, i32)>, // datekey → year
}

fn build_dims(db: &Database, hf: dbep_runtime::hash::HashFn, p0: &SsbQ21Params) -> Dims {
    let (category, region) = (p0.category, p0.region);
    let p = db.table("ssb_part");
    let (pk, pcat, pbrand) = (
        p.col("p_partkey").i32s(),
        p.col("p_category").i32s(),
        p.col("p_brand1").i32s(),
    );
    let ht_p = JoinHt::build(
        (0..p.len())
            .filter(|&i| pcat[i] == category)
            .map(|i| (hf.hash(pk[i] as u64), (pk[i], pbrand[i]))),
    );
    let s = db.table("ssb_supplier");
    let (sk, sreg) = (s.col("s_suppkey").i32s(), s.col("s_region").i32s());
    let ht_s = JoinHt::build(
        (0..s.len())
            .filter(|&i| sreg[i] == region)
            .map(|i| (hf.hash(sk[i] as u64), sk[i])),
    );
    let d = db.table("date");
    let (dk, dy) = (d.col("d_datekey").i32s(), d.col("d_year").i32s());
    let ht_d = JoinHt::build((0..d.len()).map(|i| (hf.hash(dk[i] as u64), (dk[i], dy[i]))));
    Dims { ht_p, ht_s, ht_d }
}

/// Typer: one fused probe chain per fact tuple.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &SsbQ21Params) -> QueryResult {
    let hf = cfg.typer_hash();
    let dims = {
        let _s = cfg.stage(0);
        build_dims(db, hf, p)
    };
    let _stage = cfg.stage(1);
    let lo = db.table("lineorder");
    let lpk = lo.col("lo_partkey").i32s();
    let lsk = lo.col("lo_suppkey").i32s();
    let lod = lo.col("lo_orderdate").i32s();
    let rev = lo.col("lo_revenue").i64s();
    let shards = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| GroupByShard::<(i32, i32), i64>::new(PREAGG_GROUPS),
        |shard, r| {
            for i in r {
                let hp = hf.hash(lpk[i] as u64);
                let Some(e_p) = dims.ht_p.probe(hp).find(|e| e.row.0 == lpk[i]) else {
                    continue;
                };
                let hs = hf.hash(lsk[i] as u64);
                if !dims.ht_s.probe(hs).any(|e| e.row == lsk[i]) {
                    continue;
                }
                let hd = hf.hash(lod[i] as u64);
                let Some(e_d) = dims.ht_d.probe(hd).find(|e| e.row.0 == lod[i]) else {
                    continue;
                };
                let key = (e_d.row.1, e_p.row.1);
                let gh = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                shard.update(gh, key, || 0, |a| *a += rev[i]);
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    finish(merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Tectorwise: probe steps with carried-vector realignment.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &SsbQ21Params) -> QueryResult {
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let dims = {
        let _s = cfg.stage(0);
        build_dims(db, hf, p)
    };
    let _stage = cfg.stage(1);
    let lo = db.table("lineorder");
    let lpk = lo.col("lo_partkey").i32s();
    let lsk = lo.col("lo_suppkey").i32s();
    let lod = lo.col("lo_orderdate").i32s();
    let rev = lo.col("lo_revenue").i64s();
    #[derive(Default)]
    struct Scratch {
        probe: ProbeScratch,
        gb: tw::grouping::GroupBuffers,
        rows0: Vec<u32>,
        rows1: Vec<u32>,
        rows2: Vec<u32>,
        rows3: Vec<u32>,
        v_brand: Vec<i32>,
        v_brand2: Vec<i32>,
        v_brand3: Vec<i32>,
        v_year: Vec<i32>,
        v_rev: Vec<i64>,
        ghash: Vec<u64>,
        ordinals: Vec<u32>,
        v_rev_sel: Vec<i64>,
    }
    let shards = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| {
            (
                GroupByShard::<(i32, i32), i64>::new(PREAGG_GROUPS),
                Scratch::default(),
            )
        },
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.rows0);
                // part probe: fetch brand.
                if st
                    .probe
                    .probe_step(&dims.ht_p, lpk, &st.rows0, hf, policy, |e, k| e.0 == k)
                    == 0
                {
                    continue;
                }
                tw::gather::gather_build(&dims.ht_p, &st.probe.bufs.match_entry, |r| r.1, &mut st.v_brand);
                realign_u32(&st.rows0, &st.probe.bufs.match_tuple, &mut st.rows1);
                // supplier semi-join.
                if st
                    .probe
                    .probe_step(&dims.ht_s, lsk, &st.rows1, hf, policy, |e, k| *e == k)
                    == 0
                {
                    continue;
                }
                realign_i32(&st.v_brand, &st.probe.bufs.match_tuple, &mut st.v_brand2);
                realign_u32(&st.rows1, &st.probe.bufs.match_tuple, &mut st.rows2);
                // date probe: fetch year.
                let n = st
                    .probe
                    .probe_step(&dims.ht_d, lod, &st.rows2, hf, policy, |e, k| e.0 == k);
                if n == 0 {
                    continue;
                }
                tw::gather::gather_build(&dims.ht_d, &st.probe.bufs.match_entry, |r| r.1, &mut st.v_year);
                realign_i32(&st.v_brand2, &st.probe.bufs.match_tuple, &mut st.v_brand3);
                realign_u32(&st.rows2, &st.probe.bufs.match_tuple, &mut st.rows3);
                // Aggregate by (year, brand).
                tw::gather::gather_i64(rev, &st.rows3, policy, &mut st.v_rev);
                tw::hashp::iota(0, n, &mut st.ordinals);
                tw::hashp::hash_i32_dense(&st.v_year, hf, &mut st.ghash);
                tw::hashp::rehash_i32(&st.v_brand3, &st.ordinals, hf, &mut st.ghash);
                let (v_year, v_brand3) = (&st.v_year, &st.v_brand3);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.ghash,
                    &st.ordinals,
                    |k, j| {
                        let j = j as usize;
                        k.0 == v_year[j] && k.1 == v_brand3[j]
                    },
                    &mut st.gb,
                );
                for &j in &st.gb.miss_sel {
                    let j = j as usize;
                    shard.update(
                        st.ghash[j],
                        (st.v_year[j], st.v_brand3[j]),
                        || 0,
                        |a| *a += st.v_rev[j],
                    );
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                tw::gather::gather_i64(&st.v_rev, &st.gb.group_sel, policy, &mut st.v_rev_sel);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_rev_sel, |a, v| *a += v);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    finish(merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Volcano: interpreted joins. The fact scan is morsel-partitioned
/// across `cfg.threads` workers; partial groups re-aggregate in a final
/// merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &SsbQ21Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, CmpOp, Expr, HashJoin, Rows, Scan, Select, Val};
    let lo = db.table("lineorder");
    let m = Morsels::new(lo.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let part_f = Select {
            input: Box::new(
                Scan::new(db.table("ssb_part"), &["p_partkey", "p_brand1", "p_category"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(2), Expr::lit_i32(p.category)),
        };
        // [p_partkey, p_brand1, p_category, lo_partkey, lo_suppkey, lo_orderdate, lo_revenue]
        let j_p = HashJoin::new(
            Box::new(part_f),
            vec![Expr::col(0)],
            Box::new(
                Scan::new(lo, &["lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched)
                    .morsel_driven(&m),
            ),
            vec![Expr::col(0)],
        );
        let supp_f = Select {
            input: Box::new(
                Scan::new(db.table("ssb_supplier"), &["s_suppkey", "s_region"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.region)),
        };
        // [s_suppkey, s_region] ++ 7 cols
        let j_s = HashJoin::new(
            Box::new(supp_f),
            vec![Expr::col(0)],
            Box::new(j_p),
            vec![Expr::col(4)],
        );
        // [d_datekey, d_year] ++ 9 cols
        let j_d = HashJoin::new(
            Box::new(
                Scan::new(db.table("date"), &["d_datekey", "d_year"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(j_s),
            vec![Expr::col(7)],
        );
        Box::new(Aggregate::new(
            Box::new(j_d),
            vec![Expr::col(1), Expr::col(5)],     // d_year, p_brand1
            vec![AggSpec::SumI64(Expr::col(10))], // lo_revenue
        ))
    });
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0), Expr::col(1)],
        vec![AggSpec::SumI64(Expr::col(2))],
    );
    let groups = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|r| {
            let key = match (&r[0], &r[1]) {
                (Val::I32(y), Val::I32(b)) => (*y, *b),
                other => panic!("unexpected group key {other:?}"),
            };
            (key, r[2].as_i64())
        })
        .collect();
    finish(groups)
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q21;

impl crate::QueryPlan for Q21 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Ssb2_1
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineorder").len()
            + db.table("date").len()
            + db.table("ssb_part").len()
            + db.table("ssb_supplier").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // The dimension builds are shared scalar code (`build_dims`);
        // the probe chain over the fact table is the whole game.
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-dims", StageKind::JoinBuild),
            StageDesc::new("probe-lineorder", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.ssb2_1())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.ssb2_1())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.ssb2_1())
    }
}
