//! SSB Q4.1: four dimension probes, profit aggregation.
//!
//! ```sql
//! SELECT d_year, c_nation, sum(lo_revenue - lo_supplycost) AS profit
//! FROM date, customer, supplier, part, lineorder
//! WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
//!   AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
//!   AND c_region = 'AMERICA' AND s_region = 'AMERICA'
//!   AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
//! GROUP BY d_year, c_nation ORDER BY d_year, c_nation
//! ```

use crate::params::SsbQ41Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::ssb::{realign_i32, realign_u32, ProbeScratch};
use crate::{ExecCfg, Params};
use dbep_datagen::ssb::NATIONS;
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::{GroupByShard, JoinHt};
use dbep_storage::Database;
use dbep_vectorized as tw;

const LO_BITS: usize = 8 * (4 * 4 + 8 * 2);
const PREAGG_GROUPS: usize = 1 << 12;

type Key = (i32, i32); // (d_year, c_nation)

fn finish(groups: Vec<(Key, i64)>) -> QueryResult {
    let rows = groups
        .into_iter()
        .map(|((y, cn), profit)| {
            vec![
                Value::I32(y),
                Value::Str(NATIONS[cn as usize].0.to_string()),
                Value::dec2(profit),
            ]
        })
        .collect();
    QueryResult::new(
        &["d_year", "c_nation", "profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    )
}

struct Dims {
    ht_s: JoinHt<i32>,        // suppkey (semi-join)
    ht_c: JoinHt<(i32, i32)>, // custkey → c_nation
    ht_p: JoinHt<i32>,        // partkey (semi-join)
    ht_d: JoinHt<(i32, i32)>, // datekey → year
}

fn build_dims(db: &Database, hf: dbep_runtime::hash::HashFn, p0: &SsbQ41Params) -> Dims {
    let s = db.table("ssb_supplier");
    let (sk, sreg) = (s.col("s_suppkey").i32s(), s.col("s_region").i32s());
    let ht_s = JoinHt::build(
        (0..s.len())
            .filter(|&i| sreg[i] == p0.supp_region)
            .map(|i| (hf.hash(sk[i] as u64), sk[i])),
    );
    let c = db.table("ssb_customer");
    let (ck, creg, cnat) = (
        c.col("c_custkey").i32s(),
        c.col("c_region").i32s(),
        c.col("c_nation").i32s(),
    );
    let ht_c = JoinHt::build(
        (0..c.len())
            .filter(|&i| creg[i] == p0.cust_region)
            .map(|i| (hf.hash(ck[i] as u64), (ck[i], cnat[i]))),
    );
    let p = db.table("ssb_part");
    let (pk, mfgr) = (p.col("p_partkey").i32s(), p.col("p_mfgr").i32s());
    let ht_p = JoinHt::build(
        (0..p.len())
            .filter(|&i| mfgr[i] == p0.mfgrs[0] || mfgr[i] == p0.mfgrs[1])
            .map(|i| (hf.hash(pk[i] as u64), pk[i])),
    );
    let d = db.table("date");
    let (dk, dy) = (d.col("d_datekey").i32s(), d.col("d_year").i32s());
    let ht_d = JoinHt::build((0..d.len()).map(|i| (hf.hash(dk[i] as u64), (dk[i], dy[i]))));
    Dims {
        ht_s,
        ht_c,
        ht_p,
        ht_d,
    }
}

/// Typer: fused probe chain over four tables.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &SsbQ41Params) -> QueryResult {
    let hf = cfg.typer_hash();
    let dims = {
        let _s = cfg.stage(0);
        build_dims(db, hf, p)
    };
    let _stage = cfg.stage(1);
    let lo = db.table("lineorder");
    let lck = lo.col("lo_custkey").i32s();
    let lsk = lo.col("lo_suppkey").i32s();
    let lpk = lo.col("lo_partkey").i32s();
    let lod = lo.col("lo_orderdate").i32s();
    let rev = lo.col("lo_revenue").i64s();
    let cost = lo.col("lo_supplycost").i64s();
    let shards = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| GroupByShard::<Key, i64>::new(PREAGG_GROUPS),
        |shard, r| {
            for i in r {
                let hs = hf.hash(lsk[i] as u64);
                if !dims.ht_s.probe(hs).any(|e| e.row == lsk[i]) {
                    continue;
                }
                let hc = hf.hash(lck[i] as u64);
                let Some(e_c) = dims.ht_c.probe(hc).find(|e| e.row.0 == lck[i]) else {
                    continue;
                };
                let hp = hf.hash(lpk[i] as u64);
                if !dims.ht_p.probe(hp).any(|e| e.row == lpk[i]) {
                    continue;
                }
                let hd = hf.hash(lod[i] as u64);
                let Some(e_d) = dims.ht_d.probe(hd).find(|e| e.row.0 == lod[i]) else {
                    continue;
                };
                let key = (e_d.row.1, e_c.row.1);
                let gh = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                shard.update(gh, key, || 0, |a| *a += rev[i] - cost[i]);
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    finish(merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Tectorwise: probe steps with realignment.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &SsbQ41Params) -> QueryResult {
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let dims = {
        let _s = cfg.stage(0);
        build_dims(db, hf, p)
    };
    let _stage = cfg.stage(1);
    let lo = db.table("lineorder");
    let lck = lo.col("lo_custkey").i32s();
    let lsk = lo.col("lo_suppkey").i32s();
    let lpk = lo.col("lo_partkey").i32s();
    let lod = lo.col("lo_orderdate").i32s();
    let rev = lo.col("lo_revenue").i64s();
    let cost = lo.col("lo_supplycost").i64s();
    #[derive(Default)]
    struct Scratch {
        probe: ProbeScratch,
        gb: tw::grouping::GroupBuffers,
        rows0: Vec<u32>,
        rows1: Vec<u32>,
        rows2: Vec<u32>,
        rows3: Vec<u32>,
        rows4: Vec<u32>,
        v_cnat: Vec<i32>,
        v_cnat2: Vec<i32>,
        v_cnat3: Vec<i32>,
        v_year: Vec<i32>,
        v_rev: Vec<i64>,
        v_cost: Vec<i64>,
        v_profit: Vec<i64>,
        ghash: Vec<u64>,
        ordinals: Vec<u32>,
        v_profit_sel: Vec<i64>,
    }
    let shards = cfg.map_scan(
        lo.len(),
        LO_BITS,
        |_| (GroupByShard::<Key, i64>::new(PREAGG_GROUPS), Scratch::default()),
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.rows0);
                if st
                    .probe
                    .probe_step(&dims.ht_s, lsk, &st.rows0, hf, policy, |e, k| *e == k)
                    == 0
                {
                    continue;
                }
                realign_u32(&st.rows0, &st.probe.bufs.match_tuple, &mut st.rows1);
                if st
                    .probe
                    .probe_step(&dims.ht_c, lck, &st.rows1, hf, policy, |e, k| e.0 == k)
                    == 0
                {
                    continue;
                }
                tw::gather::gather_build(&dims.ht_c, &st.probe.bufs.match_entry, |r| r.1, &mut st.v_cnat);
                realign_u32(&st.rows1, &st.probe.bufs.match_tuple, &mut st.rows2);
                if st
                    .probe
                    .probe_step(&dims.ht_p, lpk, &st.rows2, hf, policy, |e, k| *e == k)
                    == 0
                {
                    continue;
                }
                realign_i32(&st.v_cnat, &st.probe.bufs.match_tuple, &mut st.v_cnat2);
                realign_u32(&st.rows2, &st.probe.bufs.match_tuple, &mut st.rows3);
                let n = st
                    .probe
                    .probe_step(&dims.ht_d, lod, &st.rows3, hf, policy, |e, k| e.0 == k);
                if n == 0 {
                    continue;
                }
                tw::gather::gather_build(&dims.ht_d, &st.probe.bufs.match_entry, |r| r.1, &mut st.v_year);
                realign_i32(&st.v_cnat2, &st.probe.bufs.match_tuple, &mut st.v_cnat3);
                realign_u32(&st.rows3, &st.probe.bufs.match_tuple, &mut st.rows4);
                tw::gather::gather_i64(rev, &st.rows4, policy, &mut st.v_rev);
                tw::gather::gather_i64(cost, &st.rows4, policy, &mut st.v_cost);
                tw::map::map_sub_i64(&st.v_rev, &st.v_cost, &mut st.v_profit);
                tw::hashp::iota(0, n, &mut st.ordinals);
                tw::hashp::hash_i32_dense(&st.v_year, hf, &mut st.ghash);
                tw::hashp::rehash_i32(&st.v_cnat3, &st.ordinals, hf, &mut st.ghash);
                let (v_year, v_cnat3) = (&st.v_year, &st.v_cnat3);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.ghash,
                    &st.ordinals,
                    |k, j| {
                        let j = j as usize;
                        k.0 == v_year[j] && k.1 == v_cnat3[j]
                    },
                    &mut st.gb,
                );
                for &j in &st.gb.miss_sel {
                    let j = j as usize;
                    shard.update(
                        st.ghash[j],
                        (st.v_year[j], st.v_cnat3[j]),
                        || 0,
                        |a| *a += st.v_profit[j],
                    );
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                tw::gather::gather_i64(&st.v_profit, &st.gb.group_sel, policy, &mut st.v_profit_sel);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_profit_sel, |a, v| *a += v);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    finish(merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Volcano: interpreted joins. The fact scan is morsel-partitioned
/// across `cfg.threads` workers; partial groups re-aggregate in a final
/// merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &SsbQ41Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, HashJoin, Rows, Scan, Select, Val};
    let lo = db.table("lineorder");
    let m = Morsels::new(lo.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let supp_f = Select {
            input: Box::new(
                Scan::new(db.table("ssb_supplier"), &["s_suppkey", "s_region"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.supp_region)),
        };
        // [s_suppkey, s_region] ++ [lo_custkey, lo_suppkey, lo_partkey, lo_orderdate, lo_revenue, lo_supplycost]
        let j_s = HashJoin::new(
            Box::new(supp_f),
            vec![Expr::col(0)],
            Box::new(
                Scan::new(
                    lo,
                    &[
                        "lo_custkey",
                        "lo_suppkey",
                        "lo_partkey",
                        "lo_orderdate",
                        "lo_revenue",
                        "lo_supplycost",
                    ],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched)
                .morsel_driven(&m),
            ),
            vec![Expr::col(1)],
        );
        let cust_f = Select {
            input: Box::new(
                Scan::new(db.table("ssb_customer"), &["c_custkey", "c_nation", "c_region"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(2), Expr::lit_i32(p.cust_region)),
        };
        // [c_custkey, c_nation, c_region] ++ 8 cols (3..11)
        let j_c = HashJoin::new(
            Box::new(cust_f),
            vec![Expr::col(0)],
            Box::new(j_s),
            vec![Expr::col(2)],
        );
        let part_f = Select {
            input: Box::new(
                Scan::new(db.table("ssb_part"), &["p_partkey", "p_mfgr"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::Or(vec![
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.mfgrs[0])),
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit_i32(p.mfgrs[1])),
            ]),
        };
        // [p_partkey, p_mfgr] ++ 11 cols (2..13)
        let j_p = HashJoin::new(
            Box::new(part_f),
            vec![Expr::col(0)],
            Box::new(j_c),
            vec![Expr::col(7)],
        );
        // [d_datekey, d_year] ++ 13 cols (2..15)
        let j_d = HashJoin::new(
            Box::new(
                Scan::new(db.table("date"), &["d_datekey", "d_year"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(j_p),
            vec![Expr::col(10)],
        );
        Box::new(Aggregate::new(
            Box::new(j_d),
            vec![Expr::col(1), Expr::col(5)], // d_year, c_nation
            vec![AggSpec::SumI64(Expr::arith(
                BinOp::Sub,
                Expr::col(13),
                Expr::col(14),
            ))],
        ))
    });
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0), Expr::col(1)],
        vec![AggSpec::SumI64(Expr::col(2))],
    );
    let groups = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|r| {
            let key = match (&r[0], &r[1]) {
                (Val::I32(y), Val::I32(c)) => (*y, *c),
                other => panic!("unexpected group key {other:?}"),
            };
            (key, r[2].as_i64())
        })
        .collect();
    finish(groups)
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q41;

impl crate::QueryPlan for Q41 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Ssb4_1
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineorder").len()
            + db.table("date").len()
            + db.table("ssb_customer").len()
            + db.table("ssb_supplier").len()
            + db.table("ssb_part").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-dims", StageKind::JoinBuild),
            StageDesc::new("probe-lineorder", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.ssb4_1())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.ssb4_1())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.ssb4_1())
    }
}
