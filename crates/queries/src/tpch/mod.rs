//! TPC-H physical plans (§3.3, extended).
//!
//! The paper's subset and its bottlenecks, as §3.3 selects them:
//!
//! * **Q1** — fixed-point arithmetic, 4-group aggregation
//! * **Q6** — selective filters
//! * **Q3** — join (build ≈147 K, probe ≈3.2 M at SF 1)
//! * **Q9** — join (build ≈320 K, probe ≈1.5 M at SF 1), composite keys
//! * **Q18** — high-cardinality aggregation (1.5 M groups per SF)
//!
//! Plus three query shapes the subset leaves uncovered (the broader
//! TPC-H workload hinges on them):
//!
//! * **Q4** — EXISTS semi-join (orders ⋉ lineitem), existence-only probe
//! * **Q12** — string IN-list + column-column date filters, dual CASE
//!   counters per ship mode
//! * **Q14** — string prefix predicate, conditional/total ratio aggregate
//!
//! Every query module exposes `typer(db, cfg)`, `tectorwise(db, cfg)`
//! and `volcano(db, cfg)` — one uniform signature per paradigm — plus a
//! unit struct implementing [`crate::QueryPlan`] that the dispatch
//! registry ([`crate::REGISTRY`]) points at. All three return identical
//! [`crate::result::QueryResult`]s.

pub mod q1;
pub mod q12;
pub mod q14;
pub mod q18;
pub mod q3;
pub mod q4;
pub mod q6;
pub mod q9;
