//! TPC-H Q1: scan-dominated fixed-point arithmetic over a 4-group
//! aggregation.
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
//!        sum(l_extendedprice*(1-l_discount)),
//!        sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//!        avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//! FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'
//! GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus
//! ```
//!
//! This is the query where Typer's register-resident intermediates pay
//! off most (§4.1): the Tectorwise version must materialize every
//! arithmetic step into vectors.

use crate::params::Q1Params;
use crate::result::{avg_i64, OrderBy, QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_compiled::PackedReader;
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::GroupByShard;
use dbep_storage::{Database, PackedInts, Table};
use dbep_vectorized as tw;

/// Bytes read per scanned lineitem row (5×i64 + date + 2×char), flat.
const ROW_BITS: usize = 8 * (5 * 8 + 4 + 2);

/// All seven scanned columns (bandwidth accounting); the first five are
/// bit-packed, the two char flags stay flat (already one byte).
const COLS: [&str; 7] = [
    "l_shipdate",
    "l_quantity",
    "l_extendedprice",
    "l_discount",
    "l_tax",
    "l_returnflag",
    "l_linestatus",
];

/// Bit-packed companions for the five numeric columns, if present.
fn packed_cols(li: &Table) -> Option<[&PackedInts; 5]> {
    let mut out = [None; 5];
    for (slot, name) in out.iter_mut().zip(COLS) {
        *slot = Some(li.encoded(name)?.packed());
    }
    Some(out.map(|c| c.expect("filled above")))
}
/// Pre-aggregation capacity: Q1 has 4 groups, but sizing generously
/// keeps the shard generic.
const PREAGG_GROUPS: usize = 1 << 12;

/// Per-group aggregate state (sums at scales 2/2/4/6/2 plus count).
#[derive(Clone, Copy, Default)]
pub struct Q1Agg {
    qty: i64,
    base: i64,
    disc_price: i64,
    charge: i128,
    disc: i64,
    count: i64,
}

impl Q1Agg {
    fn merge(a: &mut Q1Agg, b: Q1Agg) {
        a.qty += b.qty;
        a.base += b.base;
        a.disc_price += b.disc_price;
        a.charge += b.charge;
        a.disc += b.disc;
        a.count += b.count;
    }
}

/// Shared result assembly: identical ordering/averages for all engines.
fn finish(groups: Vec<((u8, u8), Q1Agg)>) -> QueryResult {
    let rows = groups
        .into_iter()
        .map(|((rf, ls), a)| {
            vec![
                Value::Str((rf as char).to_string()),
                Value::Str((ls as char).to_string()),
                Value::dec2(a.qty),
                Value::dec2(a.base),
                Value::dec4(a.disc_price as i128),
                Value::dec6(a.charge),
                Value::dec2(avg_i64(a.qty, a.count)),
                Value::dec2(avg_i64(a.base, a.count)),
                Value::dec2(avg_i64(a.disc, a.count)),
                Value::I64(a.count),
            ]
        })
        .collect();
    QueryResult::new(
        &[
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    )
}

/// Typer over encoded storage: the same fused loop with every numeric
/// column unpacked in registers by [`PackedReader`] cursors.
fn typer_encoded(li: &Table, cols: [&PackedInts; 5], cfg: &ExecCfg, p: &Q1Params) -> QueryResult {
    let ship_cut = p.ship_cut as i64;
    let [ship, qty, ext, disc, tax] = cols;
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    let hf = cfg.typer_hash();
    let shards = cfg.map_scan(
        li.len(),
        li.row_bits(&COLS),
        |_| GroupByShard::<(u8, u8), Q1Agg>::new(PREAGG_GROUPS),
        |shard, r| {
            let mut ship_r = PackedReader::new(ship, r.start);
            let mut qty_r = PackedReader::new(qty, r.start);
            let mut ext_r = PackedReader::new(ext, r.start);
            let mut disc_r = PackedReader::new(disc, r.start);
            let mut tax_r = PackedReader::new(tax, r.start);
            for i in r {
                let s = ship_r.next();
                let q = qty_r.next();
                let e = ext_r.next();
                let d = disc_r.next();
                let t = tax_r.next();
                if s <= ship_cut {
                    let disc_price = e * (100 - d);
                    let charge = disc_price as i128 * (100 + t) as i128;
                    let key = (rf[i], ls[i]);
                    let h = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                    shard.update(h, key, Q1Agg::default, |a| {
                        a.qty += q;
                        a.base += e;
                        a.disc_price += disc_price;
                        a.charge += charge;
                        a.disc += d;
                        a.count += 1;
                    });
                }
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    finish(merge_partitions(shards, &cfg.exec(), Q1Agg::merge))
}

/// Typer: the fused loop a data-centric generator emits (Fig. 2a shape).
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q1Params) -> QueryResult {
    let _stage = cfg.stage(0);
    let li = db.table("lineitem");
    if let Some(cols) = packed_cols(li) {
        return typer_encoded(li, cols, cfg, p);
    }
    let ship_cut = p.ship_cut;
    let ship = li.col("l_shipdate").dates();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let tax = li.col("l_tax").i64s();
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    let hf = cfg.typer_hash();
    let shards = cfg.map_scan(
        li.len(),
        ROW_BITS,
        |_| GroupByShard::<(u8, u8), Q1Agg>::new(PREAGG_GROUPS),
        |shard, r| {
            for i in r {
                if ship[i] <= ship_cut {
                    // All intermediates live in registers until the
                    // single aggregate update — the fused pipeline.
                    let disc_price = ext[i] * (100 - disc[i]);
                    let charge = disc_price as i128 * (100 + tax[i]) as i128;
                    let key = (rf[i], ls[i]);
                    let h = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                    shard.update(h, key, Q1Agg::default, |a| {
                        a.qty += qty[i];
                        a.base += ext[i];
                        a.disc_price += disc_price;
                        a.charge += charge;
                        a.disc += disc[i];
                        a.count += 1;
                    });
                }
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    finish(merge_partitions(shards, &cfg.exec(), Q1Agg::merge))
}

/// Tectorwise over encoded storage: the dense selection becomes a fused
/// decompress-and-select kernel and every measure gather becomes a
/// conditional-aggregate reader; the arithmetic/aggregate primitives are
/// unchanged and never see compressed data.
fn tectorwise_encoded(li: &Table, cols: [&PackedInts; 5], cfg: &ExecCfg, p: &Q1Params) -> QueryResult {
    let ship_cut = p.ship_cut;
    let [ship, qty, ext, disc, tax] = cols;
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    #[derive(Default)]
    struct Scratch {
        sel: Vec<u32>,
        hashes: Vec<u64>,
        gb: tw::grouping::GroupBuffers,
        v_qty: Vec<i64>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_tax: Vec<i64>,
        v_om: Vec<i64>,
        v_dp: Vec<i64>,
        v_ot: Vec<i64>,
        v_ch: Vec<i64>,
    }
    let shards = cfg.map_scan(
        li.len(),
        li.row_bits(&COLS),
        |_| {
            (
                GroupByShard::<(u8, u8), Q1Agg>::new(PREAGG_GROUPS),
                Scratch::default(),
            )
        },
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                let n = tw::sel::sel_le_i32_packed(ship, ship_cut, c, &mut st.sel, policy);
                if n == 0 {
                    continue;
                }
                tw::hashp::hash_u8(rf, &st.sel, hf, &mut st.hashes);
                tw::hashp::rehash_u8(ls, &st.sel, hf, &mut st.hashes);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.hashes,
                    &st.sel,
                    |k, t| k.0 == rf[t as usize] && k.1 == ls[t as usize],
                    &mut st.gb,
                );
                // Misses: per-tuple find-or-insert on the private shard.
                for &t in &st.gb.miss_sel {
                    let ti = t as usize;
                    let key = (rf[ti], ls[ti]);
                    let h = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                    let (e, d) = (ext.get(ti), disc.get(ti));
                    let disc_price = e * (100 - d);
                    shard.update(h, key, Q1Agg::default, |a| {
                        a.qty += qty.get(ti);
                        a.base += e;
                        a.disc_price += disc_price;
                        a.charge += disc_price as i128 * (100 + tax.get(ti)) as i128;
                        a.disc += d;
                        a.count += 1;
                    });
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                // Hits: vector-at-a-time; measures decode straight into
                // the dense vectors the aggregate primitives consume.
                tw::gather::gather_packed_i64(qty, &st.gb.group_sel, policy, &mut st.v_qty);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_qty, |a, v| a.qty += v);
                tw::gather::gather_packed_i64(ext, &st.gb.group_sel, policy, &mut st.v_ext);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_ext, |a, v| a.base += v);
                tw::gather::gather_packed_i64(disc, &st.gb.group_sel, policy, &mut st.v_disc);
                tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_dp);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_dp, |a, v| {
                    a.disc_price += v
                });
                tw::gather::gather_packed_i64(tax, &st.gb.group_sel, policy, &mut st.v_tax);
                tw::map::map_add_const_i64(100, &st.v_tax, &mut st.v_ot);
                tw::map::map_mul_i64(&st.v_dp, &st.v_ot, &mut st.v_ch);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_ch, |a, v| {
                    a.charge += v as i128
                });
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_disc, |a, v| a.disc += v);
                tw::grouping::agg_update_unit(&mut shard.ht, &st.gb.groups, |a| a.count += 1);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    finish(merge_partitions(shards, &cfg.exec(), Q1Agg::merge))
}

/// Tectorwise: selection → hash → find-groups → one aggregate-update
/// primitive per sum, with every intermediate materialized (Fig. 2b
/// shape).
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q1Params) -> QueryResult {
    let _stage = cfg.stage(0);
    let li = db.table("lineitem");
    if let Some(cols) = packed_cols(li) {
        return tectorwise_encoded(li, cols, cfg, p);
    }
    let ship_cut = p.ship_cut;
    let ship = li.col("l_shipdate").dates();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let tax = li.col("l_tax").i64s();
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    #[derive(Default)]
    struct Scratch {
        sel: Vec<u32>,
        hashes: Vec<u64>,
        gb: tw::grouping::GroupBuffers,
        v_qty: Vec<i64>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_tax: Vec<i64>,
        v_om: Vec<i64>,
        v_dp: Vec<i64>,
        v_ot: Vec<i64>,
        v_ch: Vec<i64>,
    }
    let shards = cfg.map_scan(
        li.len(),
        ROW_BITS,
        |_| {
            (
                GroupByShard::<(u8, u8), Q1Agg>::new(PREAGG_GROUPS),
                Scratch::default(),
            )
        },
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                let n = tw::sel::sel_le_i32_dense(
                    &ship[c.clone()],
                    ship_cut,
                    c.start as u32,
                    &mut st.sel,
                    policy,
                );
                if n == 0 {
                    continue;
                }
                tw::hashp::hash_u8(rf, &st.sel, hf, &mut st.hashes);
                tw::hashp::rehash_u8(ls, &st.sel, hf, &mut st.hashes);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.hashes,
                    &st.sel,
                    |k, t| k.0 == rf[t as usize] && k.1 == ls[t as usize],
                    &mut st.gb,
                );
                // Misses: per-tuple find-or-insert on the private shard
                // (DESIGN.md simplification of the equal-key shuffle).
                for &t in &st.gb.miss_sel {
                    let t = t as usize;
                    let key = (rf[t], ls[t]);
                    let h = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                    let disc_price = ext[t] * (100 - disc[t]);
                    shard.update(h, key, Q1Agg::default, |a| {
                        a.qty += qty[t];
                        a.base += ext[t];
                        a.disc_price += disc_price;
                        a.charge += disc_price as i128 * (100 + tax[t]) as i128;
                        a.disc += disc[t];
                        a.count += 1;
                    });
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                // Hits: vector-at-a-time, one primitive per step/aggregate.
                tw::gather::gather_i64(qty, &st.gb.group_sel, policy, &mut st.v_qty);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_qty, |a, v| a.qty += v);
                tw::gather::gather_i64(ext, &st.gb.group_sel, policy, &mut st.v_ext);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_ext, |a, v| a.base += v);
                tw::gather::gather_i64(disc, &st.gb.group_sel, policy, &mut st.v_disc);
                tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_dp);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_dp, |a, v| {
                    a.disc_price += v
                });
                tw::gather::gather_i64(tax, &st.gb.group_sel, policy, &mut st.v_tax);
                tw::map::map_add_const_i64(100, &st.v_tax, &mut st.v_ot);
                tw::map::map_mul_i64(&st.v_dp, &st.v_ot, &mut st.v_ch);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_ch, |a, v| {
                    a.charge += v as i128
                });
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_disc, |a, v| a.disc += v);
                tw::grouping::agg_update_unit(&mut shard.ht, &st.gb.groups, |a| a.count += 1);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    finish(merge_partitions(shards, &cfg.exec(), Q1Agg::merge))
}

/// Volcano: interpreted tuple-at-a-time plan; `threads` partition the
/// scan through the exchange union, and the per-worker partial groups
/// re-aggregate through a final merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q1Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, Project, Rows, Scan, Select, Val};
    let li = db.table("lineitem");
    let m = Morsels::new(li.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let scan = Scan::new(
            li,
            &[
                "l_returnflag",
                "l_linestatus",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
                "l_shipdate",
            ],
        )
        .paced(cfg.throttle)
        .recorded(cfg.sched)
        .morsel_driven(&m);
        let filtered = Select {
            input: Box::new(scan),
            pred: Expr::cmp(CmpOp::Le, Expr::col(6), Expr::lit_i32(p.ship_cut)),
        };
        let disc_price = Expr::arith(
            BinOp::Mul,
            Expr::col(3),
            Expr::arith(BinOp::Sub, Expr::lit_i64(100), Expr::col(4)),
        );
        let charge = Expr::arith(
            BinOp::Mul,
            disc_price.clone(),
            Expr::arith(BinOp::Add, Expr::lit_i64(100), Expr::col(5)),
        );
        let projected = Project {
            input: Box::new(filtered),
            exprs: vec![
                Expr::col(0),
                Expr::col(1),
                Expr::col(2),
                Expr::col(3),
                disc_price,
                charge,
                Expr::col(4),
            ],
        };
        Box::new(Aggregate::new(
            Box::new(projected),
            vec![Expr::col(0), Expr::col(1)],
            vec![
                AggSpec::SumI64(Expr::col(2)),
                AggSpec::SumI64(Expr::col(3)),
                AggSpec::SumI64(Expr::col(4)),
                AggSpec::SumI128(Expr::col(5)),
                AggSpec::SumI64(Expr::col(6)),
                AggSpec::Count,
            ],
        ))
    });
    // Merge: re-aggregate the partial groups (counts sum like any other
    // partial aggregate).
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0), Expr::col(1)],
        vec![
            AggSpec::SumI64(Expr::col(2)),
            AggSpec::SumI64(Expr::col(3)),
            AggSpec::SumI64(Expr::col(4)),
            AggSpec::SumI128(Expr::col(5)),
            AggSpec::SumI64(Expr::col(6)),
            AggSpec::SumI64(Expr::col(7)),
        ],
    );
    let groups = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|row| {
            let key = match (&row[0], &row[1]) {
                (Val::Byte(a), Val::Byte(b)) => (*a, *b),
                other => panic!("unexpected group key {other:?}"),
            };
            (
                key,
                Q1Agg {
                    qty: row[2].as_i64(),
                    base: row[3].as_i64(),
                    disc_price: row[4].as_i64(),
                    charge: row[5].as_i128(),
                    disc: row[6].as_i64(),
                    count: row[7].as_i64(),
                },
            )
        })
        .collect();
    finish(groups)
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q1;

impl crate::QueryPlan for Q1 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q1
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineitem").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // One fused pipeline: σ(lineitem) → Γ(returnflag, linestatus).
        const S: &[crate::StageDesc] = &[StageDesc::new("scan-agg-lineitem", StageKind::Aggregate)];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q1())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q1())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q1())
    }
}
