//! TPC-H Q12: shipmode IN-list + three date predicates (two of them
//! column-vs-column), a join against orders, and **dual CASE counters**
//! per ship mode — the workload's conditional-aggregation shape.
//!
//! ```sql
//! SELECT l_shipmode,
//!        sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
//!                 THEN 1 ELSE 0 END) AS high_line_count,
//!        sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH'
//!                 THEN 1 ELSE 0 END) AS low_line_count
//! FROM orders, lineitem
//! WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
//!   AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
//!   AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
//! GROUP BY l_shipmode ORDER BY l_shipmode
//! ```
//!
//! Physical plan (identical in all engines): orders → HT_ord keyed by
//! `o_orderkey` carrying a precomputed "high priority" flag (leading
//! byte ≤ '2'); σ(lineitem, IN-list + dates) probes HT_ord; the group-by
//! domain equals the IN-list, so aggregation is a 2×2 counter matrix
//! `[mode][high/low]`.

use crate::params::Q12Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::JoinHt;
use dbep_storage::Database;
use dbep_vectorized as tw;

const ORD_BITS: usize = 8 * (4 + 9); // orderkey + priority text
const LI_BITS: usize = 8 * (4 + 3 * 4 + 5); // orderkey + 3 dates + shipmode text

/// `counts[mode][1]` = high_line_count, `counts[mode][0]` = low.
type ModeCounts = [[i64; 2]; 2];

fn merge(parts: Vec<ModeCounts>) -> ModeCounts {
    let mut all = [[0i64; 2]; 2];
    for p in parts {
        for g in 0..2 {
            all[g][0] += p[g][0];
            all[g][1] += p[g][1];
        }
    }
    all
}

fn finish(p: &Q12Params, counts: ModeCounts) -> QueryResult {
    let rows = (0..2)
        .filter(|&g| counts[g][0] + counts[g][1] > 0)
        .map(|g| {
            vec![
                Value::Str(p.modes[g].clone()),
                Value::I64(counts[g][1]),
                Value::I64(counts[g][0]),
            ]
        })
        .collect();
    QueryResult::new(
        &["l_shipmode", "high_line_count", "low_line_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

/// Shared build pipeline: orders → HT keyed by orderkey, payload
/// `(o_orderkey, high_flag)`. Identical for Typer and Tectorwise (the
/// per-tuple work is a byte compare; there is nothing to vectorize).
fn build_orders_ht(db: &Database, cfg: &ExecCfg, hf: dbep_runtime::hash::HashFn) -> JoinHt<(i32, u8)> {
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let prio = ord.col("o_orderpriority").strs();
    let shards = cfg.map_scan(
        ord.len(),
        ORD_BITS,
        |_| JoinHtShard::<(i32, u8)>::new(),
        |sh, r| {
            for i in r {
                // '1-URGENT' and '2-HIGH' are exactly the priorities whose
                // leading byte is <= '2'.
                let high = (prio.get_bytes(i)[0] <= b'2') as u8;
                sh.push(hf.hash(okey[i] as u64), (okey[i], high));
            }
        },
    );
    JoinHt::from_shards(shards, &cfg.exec())
}

/// Typer: build, then one fused probe loop with branch-free counter
/// updates (`counts[mode][flag] += 1`).
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q12Params) -> QueryResult {
    // Bound IN-list as a byte table (the group-by domain).
    let modes: [&[u8]; 2] = [p.modes[0].as_bytes(), p.modes[1].as_bytes()];
    let (receipt_lo, receipt_hi) = (p.receipt_lo, p.receipt_hi);
    let hf = cfg.typer_hash();
    let ht_ord = {
        let _s = cfg.stage(0);
        build_orders_ht(db, cfg, hf)
    };
    let _stage = cfg.stage(1);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let ship = li.col("l_shipdate").dates();
    let commit = li.col("l_commitdate").dates();
    let receipt = li.col("l_receiptdate").dates();
    let mode = li.col("l_shipmode").strs();
    let parts = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| [[0i64; 2]; 2],
        |counts: &mut ModeCounts, r| {
            for i in r {
                let s = mode.get_bytes(i);
                let g = match modes.iter().position(|&v| v == s) {
                    Some(g) => g,
                    None => continue,
                };
                if commit[i] < receipt[i]
                    && ship[i] < commit[i]
                    && receipt[i] >= receipt_lo
                    && receipt[i] < receipt_hi
                {
                    let h = hf.hash(lok[i] as u64);
                    for e in ht_ord.probe(h) {
                        if e.row.0 == lok[i] {
                            counts[g][e.row.1 as usize] += 1;
                        }
                    }
                }
            }
        },
    );
    finish(p, merge(parts))
}

/// Tectorwise: IN-list selection, column-column compares, probe, then
/// the conditional-aggregation primitives (one char-selection per mode,
/// one flag count per CASE arm).
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q12Params) -> QueryResult {
    let modes: [&[u8]; 2] = [p.modes[0].as_bytes(), p.modes[1].as_bytes()];
    let (receipt_lo, receipt_hi) = (p.receipt_lo, p.receipt_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let ht_ord = {
        let _s = cfg.stage(0);
        build_orders_ht(db, cfg, hf)
    };
    let _stage = cfg.stage(1);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let ship = li.col("l_shipdate").dates();
    let commit = li.col("l_commitdate").dates();
    let receipt = li.col("l_receiptdate").dates();
    let mode = li.col("l_shipmode").strs();
    #[derive(Default)]
    struct Scratch {
        s1: Vec<u32>,
        s2: Vec<u32>,
        s3: Vec<u32>,
        s4: Vec<u32>,
        s5: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_high: Vec<u8>,
        v_mode: Vec<u8>,
        mode_sel: Vec<u32>,
        f_sel: Vec<u8>,
    }
    let parts = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| ([[0i64; 2]; 2], Scratch::default()),
        |(counts, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                // 1 dense IN-list + 4 sparse selections.
                if tw::sel::sel_in_str_dense(mode, &modes, c.clone(), &mut st.s1) == 0 {
                    continue;
                }
                if tw::sel::sel_lt_i32_col_sparse(commit, receipt, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_lt_i32_col_sparse(ship, commit, &st.s2, &mut st.s3, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_ge_i32_sparse(receipt, receipt_lo, &st.s3, &mut st.s4, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_lt_i32_sparse(receipt, receipt_hi, &st.s4, &mut st.s5, policy) == 0 {
                    continue;
                }
                tw::hashp::hash_i32(lok, &st.s5, hf, &mut st.hashes);
                if tw::probe::probe_join(
                    &ht_ord,
                    &st.hashes,
                    &st.s5,
                    |row, t| row.0 == lok[t as usize],
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                // Dual CASE counters: gather the build-side high flag and the
                // mode ordinal (full-string compare — IN-list members may
                // share a prefix), split per mode, count each arm.
                tw::gather::gather_build(&ht_ord, &st.bufs.match_entry, |r| r.1, &mut st.v_high);
                tw::gather::gather_str_ordinal(mode, &st.bufs.match_tuple, &modes, &mut st.v_mode);
                for (g, count) in counts.iter_mut().enumerate() {
                    let n = tw::sel::sel_eq_char_dense(&st.v_mode, g as u8, 0, &mut st.mode_sel);
                    if n == 0 {
                        continue;
                    }
                    tw::gather::gather_u8(&st.v_high, &st.mode_sel, &mut st.f_sel);
                    let high = tw::map::count_nonzero_u8(&st.f_sel, policy);
                    count[1] += high;
                    count[0] += n as i64 - high;
                }
            }
        },
    );
    finish(p, merge(parts.into_iter().map(|(c, _)| c).collect()))
}

/// Volcano: interpreted plan with the CASE arms as boolean-expression
/// sums. The driving lineitem scan is morsel-partitioned across
/// `cfg.threads` workers; partial groups re-aggregate in a merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q12Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, CmpOp, Expr, HashJoin, Rows, Scan, Select, Val};
    let li = db.table("lineitem");
    let m = Morsels::new(li.len());
    let str_lit = |s: &str| Expr::Const(Val::Str(s.to_string()));
    let partials = exchange::union(&cfg.exec(), |_| {
        let li_f = Select {
            input: Box::new(
                Scan::new(
                    li,
                    &[
                        "l_orderkey",
                        "l_shipmode",
                        "l_shipdate",
                        "l_commitdate",
                        "l_receiptdate",
                    ],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched)
                .morsel_driven(&m),
            ),
            pred: Expr::And(vec![
                Expr::Or(vec![
                    Expr::cmp(CmpOp::Eq, Expr::col(1), str_lit(&p.modes[0])),
                    Expr::cmp(CmpOp::Eq, Expr::col(1), str_lit(&p.modes[1])),
                ]),
                Expr::cmp(CmpOp::Lt, Expr::col(3), Expr::col(4)),
                Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::col(3)),
                Expr::cmp(CmpOp::Ge, Expr::col(4), Expr::lit_i32(p.receipt_lo)),
                Expr::cmp(CmpOp::Lt, Expr::col(4), Expr::lit_i32(p.receipt_hi)),
            ]),
        };
        // rows: [o_orderkey, o_orderpriority] ++ the 5 lineitem columns.
        let join = HashJoin::new(
            Box::new(
                Scan::new(db.table("orders"), &["o_orderkey", "o_orderpriority"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(li_f),
            vec![Expr::col(0)],
        );
        let high = Expr::Or(vec![
            Expr::cmp(CmpOp::Eq, Expr::col(1), str_lit("1-URGENT")),
            Expr::cmp(CmpOp::Eq, Expr::col(1), str_lit("2-HIGH")),
        ]);
        let low = Expr::And(vec![
            Expr::cmp(CmpOp::Ne, Expr::col(1), str_lit("1-URGENT")),
            Expr::cmp(CmpOp::Ne, Expr::col(1), str_lit("2-HIGH")),
        ]);
        Box::new(Aggregate::new(
            Box::new(join),
            vec![Expr::col(3)],
            vec![AggSpec::SumI64(high), AggSpec::SumI64(low)],
        ))
    });
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0)],
        vec![AggSpec::SumI64(Expr::col(1)), AggSpec::SumI64(Expr::col(2))],
    );
    let rows = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|row| {
            let mode = match &row[0] {
                Val::Str(s) => s.clone(),
                other => panic!("unexpected group key {other:?}"),
            };
            vec![
                Value::Str(mode),
                Value::I64(row[1].as_i64()),
                Value::I64(row[2].as_i64()),
            ]
        })
        .collect();
    QueryResult::new(
        &["l_shipmode", "high_line_count", "low_line_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q12;

impl crate::QueryPlan for Q12 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q12
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("orders").len() + db.table("lineitem").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // The build pipeline is engine-invariant (shared scalar code);
        // only the probe pipeline differs per paradigm.
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-orders", StageKind::JoinBuild),
            StageDesc::new("probe-lineitem", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q12())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q12())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q12())
    }
}
