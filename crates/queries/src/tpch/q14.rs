//! TPC-H Q14: promo-revenue ratio — a string **prefix** predicate on the
//! build side and a conditional/total aggregate pair on the probe side.
//!
//! ```sql
//! SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
//!                          THEN l_extendedprice * (1 - l_discount)
//!                          ELSE 0 END)
//!               / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
//! FROM lineitem, part
//! WHERE l_partkey = p_partkey
//!   AND l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'
//! ```
//!
//! Physical plan (identical in all engines): part → HT_part keyed by
//! `p_partkey`, payload carries the precomputed `LIKE 'PROMO%'` flag;
//! σ(lineitem, one-month ship window) probes HT_part and feeds two
//! accumulators — the flagged (CASE) revenue and the total revenue. The
//! final division is one shared fixed-point helper so all engines agree
//! bit-for-bit.

use crate::params::Q14Params;
use crate::result::{QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_compiled::PackedReader;
use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::JoinHt;
use dbep_storage::{Database, DictStrColumn, PackedInts, Table};
use dbep_vectorized as tw;

const PART_BITS: usize = 8 * (4 + 21); // partkey + type text, flat
const LI_BITS: usize = 8 * (4 + 4 + 8 + 8); // partkey + shipdate + price + discount, flat

const PART_COLS: [&str; 2] = ["p_partkey", "p_type"];
const LI_COLS: [&str; 4] = ["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"];

/// Encoded companions for both sides of the join, if all are present:
/// packed `p_partkey`, dictionary-coded `p_type`, and the four packed
/// lineitem columns.
fn encoded_cols<'a>(
    part: &'a Table,
    li: &'a Table,
) -> Option<(&'a PackedInts, &'a DictStrColumn, [&'a PackedInts; 4])> {
    let pkey = part.encoded("p_partkey")?.packed();
    let ptype = part.encoded("p_type")?.dict_str();
    let mut out = [None; 4];
    for (slot, name) in out.iter_mut().zip(LI_COLS) {
        *slot = Some(li.encoded(name)?.packed());
    }
    Some((pkey, ptype, out.map(|c| c.expect("filled above"))))
}

/// `LIKE 'PROMO%'` evaluated once per dictionary entry instead of once
/// per row — the dictionary-coding payoff: the per-row prefix test
/// collapses to a byte-indexed table lookup.
fn promo_flags(ptype: &DictStrColumn, prefix: &[u8]) -> Vec<u8> {
    (0..ptype.dict().len())
        .map(|c| ptype.dict().get_bytes(c).starts_with(prefix) as u8)
        .collect()
}

/// `100.00 * promo / total` as a scale-4 decimal (both sums are scale-4
/// fixed point; truncating division, shared by every engine).
fn finish(promo: i128, total: i128) -> QueryResult {
    let digits = if total == 0 { 0 } else { promo * 1_000_000 / total };
    QueryResult::new(&["promo_revenue"], vec![vec![Value::dec4(digits)]], &[], None)
}

/// Typer over encoded storage: the build side reads dictionary codes
/// and flags them through [`promo_flags`]; the probe side unpacks all
/// four lineitem columns in registers.
fn typer_encoded(
    part: &Table,
    li: &Table,
    pkey: &PackedInts,
    ptype: &DictStrColumn,
    lcols: [&PackedInts; 4],
    cfg: &ExecCfg,
    p: &Q14Params,
) -> QueryResult {
    let (ship_lo, ship_hi) = (p.ship_lo as i64, p.ship_hi as i64);
    let hf = cfg.typer_hash();
    // Pipeline 1: part → HT_part (partkey → PROMO flag via dict codes).
    let _s0 = cfg.stage(0);
    let flags = promo_flags(ptype, p.prefix.as_bytes());
    let codes = ptype.codes();
    let shards = cfg.map_scan(
        part.len(),
        part.row_bits(&PART_COLS),
        |_| JoinHtShard::<(i32, u8)>::new(),
        |sh, r| {
            let mut pk_r = PackedReader::new(pkey, r.start);
            for i in r {
                let pk = pk_r.next() as i32;
                sh.push(hf.hash(pk as u64), (pk, flags[codes[i] as usize]));
            }
        },
    );
    let ht_part = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // Pipeline 2: σ(lineitem) ⋈ HT_part → (promo, total).
    let _s1 = cfg.stage(1);
    let [lpk, ship, ext, disc] = lcols;
    let parts = cfg.map_scan(
        li.len(),
        li.row_bits(&LI_COLS),
        |_| (0i128, 0i128),
        |(promo, total), r| {
            let mut lpk_r = PackedReader::new(lpk, r.start);
            let mut ship_r = PackedReader::new(ship, r.start);
            let mut ext_r = PackedReader::new(ext, r.start);
            let mut disc_r = PackedReader::new(disc, r.start);
            for _ in r {
                let pk = lpk_r.next() as i32;
                let s = ship_r.next();
                let e = ext_r.next();
                let d = disc_r.next();
                if s >= ship_lo && s < ship_hi {
                    let h = hf.hash(pk as u64);
                    for entry in ht_part.probe(h) {
                        if entry.row.0 == pk {
                            let rev = e * (100 - d);
                            *promo += (entry.row.1 as i64 * rev) as i128;
                            *total += rev as i128;
                        }
                    }
                }
            }
        },
    );
    let (promo, total) = parts.into_iter().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    finish(promo, total)
}

/// Typer: build with a fused prefix test, then one probe loop with two
/// register-resident accumulators (`promo += flag * rev`).
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q14Params) -> QueryResult {
    let part = db.table("part");
    let li = db.table("lineitem");
    if let Some((pkey, ptype, lcols)) = encoded_cols(part, li) {
        return typer_encoded(part, li, pkey, ptype, lcols, cfg, p);
    }
    let prefix = p.prefix.as_bytes();
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let hf = cfg.typer_hash();
    // Pipeline 1: part → HT_part (partkey → PROMO flag).
    let _s0 = cfg.stage(0);
    let pkey = part.col("p_partkey").i32s();
    let ptype = part.col("p_type").strs();
    let shards = cfg.map_scan(
        part.len(),
        PART_BITS,
        |_| JoinHtShard::<(i32, u8)>::new(),
        |sh, r| {
            for i in r {
                let promo = ptype.get_bytes(i).starts_with(prefix) as u8;
                sh.push(hf.hash(pkey[i] as u64), (pkey[i], promo));
            }
        },
    );
    let ht_part = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // Pipeline 2: σ(lineitem) ⋈ HT_part → (promo, total).
    let _s1 = cfg.stage(1);
    let li = db.table("lineitem");
    let lpk = li.col("l_partkey").i32s();
    let ship = li.col("l_shipdate").dates();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let parts = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| (0i128, 0i128),
        |(promo, total), r| {
            for i in r {
                if ship[i] >= ship_lo && ship[i] < ship_hi {
                    let h = hf.hash(lpk[i] as u64);
                    for e in ht_part.probe(h) {
                        if e.row.0 == lpk[i] {
                            let rev = ext[i] * (100 - disc[i]);
                            // Branch-free CASE: the flag gates the summand.
                            *promo += (e.row.1 as i64 * rev) as i128;
                            *total += rev as i128;
                        }
                    }
                }
            }
        },
    );
    let (promo, total) = parts.into_iter().fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    finish(promo, total)
}

/// Tectorwise over encoded storage: the build-side prefix primitive
/// becomes a dictionary flag lookup; the probe side runs a fused BETWEEN
/// kernel on the packed shipdate and decodes join keys and measures with
/// conditional-aggregate readers.
fn tectorwise_encoded(
    part: &Table,
    li: &Table,
    pkey: &PackedInts,
    ptype: &DictStrColumn,
    lcols: [&PackedInts; 4],
    cfg: &ExecCfg,
    p: &Q14Params,
) -> QueryResult {
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    // Pipeline 1: part → HT_part. The per-row LIKE collapses to a
    // byte-indexed lookup, so the vector loop degenerates to one pass.
    let _s0 = cfg.stage(0);
    let flags = promo_flags(ptype, p.prefix.as_bytes());
    let codes = ptype.codes();
    let shards = cfg.map_scan(
        part.len(),
        part.row_bits(&PART_COLS),
        |_| JoinHtShard::<(i32, u8)>::new(),
        |sh, r| {
            let mut pk_r = PackedReader::new(pkey, r.start);
            for i in r {
                let pk = pk_r.next() as i32;
                sh.push(hf.hash(pk as u64), (pk, flags[codes[i] as usize]));
            }
        },
    );
    let ht_part = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // Pipeline 2: σ(lineitem) ⋈ HT_part → (promo, total).
    let _s1 = cfg.stage(1);
    let [lpk, ship, ext, disc] = lcols;
    #[derive(Default)]
    struct Scratch {
        promo: i128,
        total: i128,
        s1: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_pk: Vec<i64>,
        v_flag: Vec<u8>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_om: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let parts = cfg.map_scan(
        li.len(),
        li.row_bits(&LI_COLS),
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                // One fused BETWEEN kernel replaces the two-step cascade.
                if tw::sel::sel_between_i32_for(ship, ship_lo, ship_hi - 1, c, &mut st.s1, policy) == 0 {
                    continue;
                }
                // Join keys decode straight into the hash input vector.
                tw::gather::gather_packed_i64(lpk, &st.s1, policy, &mut st.v_pk);
                st.hashes.clear();
                st.hashes.extend(st.v_pk.iter().map(|&k| hf.hash(k as u64)));
                if tw::probe::probe_join(
                    &ht_part,
                    &st.hashes,
                    &st.s1,
                    |row, t| row.0 as i64 == lpk.get(t as usize),
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::gather::gather_build(&ht_part, &st.bufs.match_entry, |r| r.1, &mut st.v_flag);
                tw::gather::gather_packed_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                tw::gather::gather_packed_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_rev);
                st.promo += tw::map::sum_i64_where_u8(&st.v_rev, &st.v_flag, policy) as i128;
                st.total += tw::map::sum_i64(&st.v_rev, policy) as i128;
            }
        },
    );
    let (promo, total) = parts
        .into_iter()
        .fold((0, 0), |a, b| (a.0 + b.promo, a.1 + b.total));
    finish(promo, total)
}

/// Tectorwise: the prefix test is the vectorized string prefix-match
/// primitive at build; the probe side uses the conditional-sum primitive
/// for the CASE arm.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q14Params) -> QueryResult {
    let part = db.table("part");
    let li = db.table("lineitem");
    if let Some((pkey, ptype, lcols)) = encoded_cols(part, li) {
        return tectorwise_encoded(part, li, pkey, ptype, lcols, cfg, p);
    }
    let prefix = p.prefix.as_bytes();
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    // Pipeline 1: part → HT_part.
    let _s0 = cfg.stage(0);
    let pkey = part.col("p_partkey").i32s();
    let ptype = part.col("p_type").strs();
    let shards = cfg.map_scan(
        part.len(),
        PART_BITS,
        |_| {
            (
                JoinHtShard::<(i32, u8)>::new(),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            )
        },
        |(sh, all, flags, hashes), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), all);
                tw::map::map_str_prefix_flags(ptype, all, prefix, policy, flags);
                tw::hashp::hash_i32(pkey, all, hf, hashes);
                for (j, &t) in all.iter().enumerate() {
                    sh.push(hashes[j], (pkey[t as usize], flags[j]));
                }
            }
        },
    );
    let shards = shards.into_iter().map(|(sh, ..)| sh).collect();
    let ht_part = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // Pipeline 2: σ(lineitem) ⋈ HT_part → (promo, total).
    let _s1 = cfg.stage(1);
    let li = db.table("lineitem");
    let lpk = li.col("l_partkey").i32s();
    let ship = li.col("l_shipdate").dates();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    #[derive(Default)]
    struct Scratch {
        promo: i128,
        total: i128,
        s1: Vec<u32>,
        s2: Vec<u32>,
        hashes: Vec<u64>,
        bufs: tw::ProbeBuffers,
        v_flag: Vec<u8>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_om: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let parts = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                if tw::sel::sel_ge_i32_dense(&ship[c.clone()], ship_lo, c.start as u32, &mut st.s1, policy)
                    == 0
                {
                    continue;
                }
                if tw::sel::sel_lt_i32_sparse(ship, ship_hi, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                tw::hashp::hash_i32(lpk, &st.s2, hf, &mut st.hashes);
                if tw::probe::probe_join(
                    &ht_part,
                    &st.hashes,
                    &st.s2,
                    |row, t| row.0 == lpk[t as usize],
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::gather::gather_build(&ht_part, &st.bufs.match_entry, |r| r.1, &mut st.v_flag);
                tw::gather::gather_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                tw::gather::gather_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_rev);
                // Conditional (CASE) and total sums, one primitive each.
                st.promo += tw::map::sum_i64_where_u8(&st.v_rev, &st.v_flag, policy) as i128;
                st.total += tw::map::sum_i64(&st.v_rev, policy) as i128;
            }
        },
    );
    let (promo, total) = parts
        .into_iter()
        .fold((0, 0), |a, b| (a.0 + b.promo, a.1 + b.total));
    finish(promo, total)
}

/// Volcano: interpreted plan; the CASE arm is the revenue expression
/// multiplied by the 0/1 `StartsWith` predicate. The driving lineitem
/// scan is morsel-partitioned across `cfg.threads` workers; partial sums
/// add up here.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q14Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, HashJoin, Scan, Select};
    let li = db.table("lineitem");
    let m = Morsels::new(li.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let li_f = Select {
            input: Box::new(
                Scan::new(li, &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched)
                    .morsel_driven(&m),
            ),
            pred: Expr::And(vec![
                Expr::cmp(CmpOp::Ge, Expr::col(3), Expr::lit_i32(p.ship_lo)),
                Expr::cmp(CmpOp::Lt, Expr::col(3), Expr::lit_i32(p.ship_hi)),
            ]),
        };
        // rows: [p_partkey, p_type] ++ the 4 lineitem columns.
        let join = HashJoin::new(
            Box::new(
                Scan::new(db.table("part"), &["p_partkey", "p_type"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(li_f),
            vec![Expr::col(0)],
        );
        let rev = Expr::arith(
            BinOp::Mul,
            Expr::col(3),
            Expr::arith(BinOp::Sub, Expr::lit_i64(100), Expr::col(4)),
        );
        let promo = Expr::arith(
            BinOp::Mul,
            rev.clone(),
            Expr::StartsWith(Box::new(Expr::col(1)), p.prefix.clone()),
        );
        Box::new(Aggregate::new(
            Box::new(join),
            vec![],
            vec![AggSpec::SumI64(promo), AggSpec::SumI64(rev)],
        ))
    });
    let (promo, total) = partials.iter().fold((0i128, 0i128), |a, r| {
        (a.0 + r[0].as_i128(), a.1 + r[1].as_i128())
    });
    finish(promo, total)
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q14;

impl crate::QueryPlan for Q14 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q14
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("part").len() + db.table("lineitem").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-part", StageKind::JoinBuild),
            StageDesc::new("probe-lineitem", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q14())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q14())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q14())
    }
}
