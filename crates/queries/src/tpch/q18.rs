//! TPC-H Q18: high-cardinality aggregation — 1.5 M groups per scale
//! factor (§3.3), the workload where the two-phase partitioned group-by
//! earns its keep.
//!
//! ```sql
//! SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
//!        sum(l_quantity)
//! FROM customer, orders, lineitem
//! WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
//!                      GROUP BY l_orderkey HAVING sum(l_quantity) > 300)
//!   AND c_custkey = o_custkey AND o_orderkey = l_orderkey
//! GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
//! ORDER BY o_totalprice DESC, o_orderdate LIMIT 100
//! ```
//!
//! Physical plan: Γ(lineitem by l_orderkey) → HAVING filter → HT_sel;
//! orders ⋈ HT_sel → HT_cust (keyed by o_custkey); customer ⋈ HT_cust →
//! result. Because `o_orderkey` is unique, the outer GROUP BY needs no
//! second aggregation.

use crate::params::Q18Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::{GroupByShard, JoinHt};
use dbep_storage::Database;
use dbep_vectorized as tw;

const LI_BITS: usize = 8 * (4 + 8);
const ORD_BITS: usize = 8 * (4 + 4 + 4 + 8);
const CUST_BITS: usize = 8 * (4 + 18);
/// Pre-aggregation shard capacity. Q18's group count is huge, so shards
/// spill heavily — exactly the §3.2 design point.
const PREAGG_GROUPS: usize = 1 << 16;

/// (custkey, orderkey, orderdate, totalprice, sum_qty)
type OrdRow = (i32, i32, i32, i64, i64);

fn finish(db: &Database, rows_raw: Vec<(i32, OrdRow)>) -> QueryResult {
    let names = db.table("customer").col("c_name").strs();
    let custkeys = db.table("customer").col("c_custkey").i32s();
    let rows = rows_raw
        .into_iter()
        .map(|(cust_row, (ck, ok, od, tp, qty))| {
            debug_assert_eq!(custkeys[cust_row as usize], ck);
            vec![
                Value::Str(names.get(cust_row as usize).to_string()),
                Value::I32(ck),
                Value::I32(ok),
                Value::Date(od),
                Value::dec2(tp),
                Value::dec2(qty),
            ]
        })
        .collect();
    QueryResult::new(
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
            "sum_qty",
        ],
        rows,
        &[OrderBy::desc(4), OrderBy::asc(3)],
        Some(100),
    )
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q18;

impl crate::QueryPlan for Q18 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q18
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineitem").len() * 2 + db.table("orders").len() + db.table("customer").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // The join pipelines after the HAVING filter are shared scalar
        // code (`join_phases`); only the 1.5 M-group aggregation
        // differs per paradigm.
        const S: &[crate::StageDesc] = &[
            StageDesc::new("agg-lineitem", StageKind::Aggregate),
            StageDesc::new("probe-orders", StageKind::JoinProbe),
            StageDesc::new("probe-customer", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q18())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q18())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q18())
    }
}

/// Shared phase 2+3 (identical logic in Typer and Tectorwise once the
/// big aggregation delivered the qualifying orders).
fn join_phases(
    db: &Database,
    cfg: &ExecCfg,
    big_orders: Vec<(i32, i64)>,
    hf: dbep_runtime::hash::HashFn,
) -> QueryResult {
    let _s1 = cfg.stage(1);
    // HT_sel: qualifying orderkeys (tiny).
    let ht_sel = JoinHt::build(big_orders.into_iter().map(|(k, q)| (hf.hash(k as u64), (k, q))));
    // Pipeline: orders ⋈ HT_sel → HT_cust (keyed by custkey).
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let ocust = ord.col("o_custkey").i32s();
    let odate = ord.col("o_orderdate").dates();
    let ototal = ord.col("o_totalprice").i64s();
    let shards = cfg.map_scan(
        ord.len(),
        ORD_BITS,
        |_| JoinHtShard::<OrdRow>::new(),
        |sh, r| {
            for i in r {
                let h = hf.hash(okey[i] as u64);
                for e in ht_sel.probe(h) {
                    if e.row.0 == okey[i] {
                        sh.push(
                            hf.hash(ocust[i] as u64),
                            (ocust[i], okey[i], odate[i], ototal[i], e.row.1),
                        );
                    }
                }
            }
        },
    );
    let ht_cust = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s1);
    // Pipeline: customer ⋈ HT_cust → result rows.
    let _s2 = cfg.stage(2);
    let cust = db.table("customer");
    let ckey = cust.col("c_custkey").i32s();
    let locals = cfg.map_scan(
        cust.len(),
        CUST_BITS,
        |_| Vec::new(),
        |local, r| {
            for i in r {
                let h = hf.hash(ckey[i] as u64);
                for e in ht_cust.probe(h) {
                    if e.row.0 == ckey[i] {
                        local.push((i as i32, e.row));
                    }
                }
            }
        },
    );
    finish(db, locals.into_iter().flatten().collect())
}

/// Typer: fused 1.5 M-group aggregation, then the two join pipelines.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q18Params) -> QueryResult {
    let qty_limit = p.qty_limit;
    let hf = cfg.typer_hash();
    let _s0 = cfg.stage(0);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let qty = li.col("l_quantity").i64s();
    let shards = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| GroupByShard::<i32, i64>::new(PREAGG_GROUPS),
        |shard, r| {
            for i in r {
                shard.update(hf.hash(lok[i] as u64), lok[i], || 0, |a| *a += qty[i]);
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    let groups = merge_partitions(shards, &cfg.exec(), |a, b| *a += b);
    let big: Vec<(i32, i64)> = groups.into_iter().filter(|(_, q)| *q > qty_limit).collect();
    drop(_s0);
    join_phases(db, cfg, big, hf)
}

/// Tectorwise: the same plan with vectorized find-groups/aggregate
/// primitives in the heavy phase.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q18Params) -> QueryResult {
    let qty_limit = p.qty_limit;
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    let _s0 = cfg.stage(0);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let qty = li.col("l_quantity").i64s();
    #[derive(Default)]
    struct Scratch {
        all: Vec<u32>,
        hashes: Vec<u64>,
        v_qty: Vec<i64>,
        gb: tw::grouping::GroupBuffers,
    }
    let shards = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| (GroupByShard::<i32, i64>::new(PREAGG_GROUPS), Scratch::default()),
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.all);
                tw::hashp::hash_i32(lok, &st.all, hf, &mut st.hashes);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.hashes,
                    &st.all,
                    |k, t| *k == lok[t as usize],
                    &mut st.gb,
                );
                for &t in &st.gb.miss_sel {
                    let t = t as usize;
                    shard.update(hf.hash(lok[t] as u64), lok[t], || 0, |a| *a += qty[t]);
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                tw::gather::gather_i64(qty, &st.gb.group_sel, policy, &mut st.v_qty);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_qty, |a, v| *a += v);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    let groups = merge_partitions(shards, &cfg.exec(), |a, b| *a += b);
    let big: Vec<(i32, i64)> = groups.into_iter().filter(|(_, q)| *q > qty_limit).collect();
    drop(_s0);
    join_phases(db, cfg, big, hf)
}

/// Volcano: interpreted plan (HAVING via Select over the aggregate).
/// The driving orders scan is morsel-partitioned across `cfg.threads`
/// workers; since `o_orderkey` is unique, each worker's output rows are
/// disjoint and the union needs no re-aggregation.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q18Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, CmpOp, Expr, HashJoin, Scan, Select, Val};
    let ord = db.table("orders");
    let m = Morsels::new(ord.len());
    let rows_raw = exchange::union(&cfg.exec(), |_| {
        // Γ(lineitem) with HAVING.
        let agg = Aggregate::new(
            Box::new(
                Scan::new(db.table("lineitem"), &["l_orderkey", "l_quantity"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            vec![AggSpec::SumI64(Expr::col(1))],
        );
        let having = Select {
            input: Box::new(agg),
            pred: Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::lit_i64(p.qty_limit)),
        };
        // ⋈ orders: [l_orderkey, sum_qty, o_orderkey, o_custkey, o_orderdate, o_totalprice]
        let j_o = HashJoin::new(
            Box::new(having),
            vec![Expr::col(0)],
            Box::new(
                Scan::new(ord, &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched)
                    .morsel_driven(&m),
            ),
            vec![Expr::col(0)],
        );
        // ⋈ customer: [c_custkey, c_name] ++ previous 6.
        Box::new(HashJoin::new(
            Box::new(
                Scan::new(db.table("customer"), &["c_custkey", "c_name"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(j_o),
            vec![Expr::col(3)],
        ))
    });
    let rows = rows_raw
        .into_iter()
        .map(|r| {
            let get_i32 = |v: &Val| match v {
                Val::I32(x) => *x,
                other => panic!("unexpected value {other:?}"),
            };
            vec![
                Value::Str(r[1].as_str().to_string()),
                Value::I32(get_i32(&r[0])),
                Value::I32(get_i32(&r[4])),
                Value::Date(get_i32(&r[6])),
                Value::dec2(r[7].as_i64()),
                Value::dec2(r[3].as_i64()),
            ]
        })
        .collect();
    QueryResult::new(
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
            "sum_qty",
        ],
        rows,
        &[OrderBy::desc(4), OrderBy::asc(3)],
        Some(100),
    )
}
