//! TPC-H Q3: two hash joins feeding a grouped aggregation
//! (build ≈147 K, probe ≈3.2 M tuples at SF 1 — §3.3).
//!
//! ```sql
//! SELECT l_orderkey, sum(l_extendedprice*(1-l_discount)) AS revenue,
//!        o_orderdate, o_shippriority
//! FROM customer, orders, lineitem
//! WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
//!   AND l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15'
//!   AND l_shipdate > DATE '1995-03-15'
//! GROUP BY l_orderkey, o_orderdate, o_shippriority
//! ORDER BY revenue DESC, o_orderdate LIMIT 10
//! ```
//!
//! Physical plan (identical in all engines): filter customer → HT₁;
//! filter orders, probe HT₁ → HT₂; filter lineitem, probe HT₂, group by
//! order.

use crate::params::Q3Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::{Engine, ExecCfg, Params};
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::hash::HashFn;
use dbep_runtime::{GroupByShard, JoinHt};
use dbep_storage::Database;
use dbep_vectorized as tw;

const CUST_BITS: usize = 8 * (4 + 10); // custkey + segment text
const ORD_BITS: usize = 8 * (4 + 4 + 4 + 4);
const LI_BITS: usize = 8 * (4 + 8 + 8 + 4);
const PREAGG_GROUPS: usize = 1 << 14;

type GroupKey = (i32, i32, i32); // (o_orderkey, o_orderdate, o_shippriority)

fn finish(groups: Vec<(GroupKey, i64)>) -> QueryResult {
    let rows = groups
        .into_iter()
        .map(|((okey, odate, prio), rev)| {
            vec![
                Value::I32(okey),
                Value::dec4(rev as i128),
                Value::Date(odate),
                Value::I32(prio),
            ]
        })
        .collect();
    QueryResult::new(
        &["l_orderkey", "revenue", "o_orderdate", "o_shippriority"],
        rows,
        &[OrderBy::desc(1), OrderBy::asc(2)],
        Some(10),
    )
}

/// Stage 0 (`build-customer`): σ(customer) → HT_c under either
/// paradigm. The hash function travels with the table: whichever
/// engine runs the downstream probe must hash `o_custkey` with the
/// build engine's `hf`.
fn build_customer(db: &Database, cfg: &ExecCfg, engine: Engine, hf: HashFn, p: &Q3Params) -> JoinHt<i32> {
    let segment = p.segment.as_bytes();
    let cust = db.table("customer");
    let seg = cust.col("c_mktsegment").strs();
    let ckey = cust.col("c_custkey").i32s();
    let pace = |rows| cfg.pace(rows, CUST_BITS);
    match engine {
        Engine::Typer => dbep_compiled::stage::build_ht(&cfg.exec(), cust.len(), pace, |sh, r| {
            for i in r {
                if seg.get_bytes(i) == segment {
                    sh.push(hf.hash(ckey[i] as u64), ckey[i]);
                }
            }
        }),
        Engine::Tectorwise => dbep_vectorized::stage::build_ht(
            &cfg.exec(),
            cust.len(),
            pace,
            || (Vec::new(), Vec::new()),
            |sh, (sel, hashes), r| {
                for c in tw::chunks(r, cfg.vector_size) {
                    if tw::sel::sel_eq_str_dense(seg, segment, c, sel) == 0 {
                        continue;
                    }
                    tw::hashp::hash_i32(ckey, sel, hf, hashes);
                    for (j, &t) in sel.iter().enumerate() {
                        sh.push(hashes[j], ckey[t as usize]);
                    }
                }
            },
        ),
        other => unreachable!("{} is not a per-stage candidate", other.name()),
    }
}

/// Stage 1 (`probe-orders`): σ(orders) ⋈ HT_c → HT_o. Probes with
/// `hf_c` (HT_c's build hash) and builds HT_o with this stage's own
/// `hf_o`.
fn probe_orders(
    db: &Database,
    cfg: &ExecCfg,
    p: &Q3Params,
    engine: Engine,
    hf_c: HashFn,
    hf_o: HashFn,
    ht_c: &JoinHt<i32>,
) -> JoinHt<GroupKey> {
    let cut = p.cut;
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let ocust = ord.col("o_custkey").i32s();
    let odate = ord.col("o_orderdate").dates();
    let oprio = ord.col("o_shippriority").i32s();
    let pace = |rows| cfg.pace(rows, ORD_BITS);
    match engine {
        Engine::Typer => dbep_compiled::stage::build_ht(&cfg.exec(), ord.len(), pace, |sh, r| {
            for i in r {
                if odate[i] < cut {
                    let h = hf_c.hash(ocust[i] as u64);
                    if ht_c.probe(h).any(|e| e.row == ocust[i]) {
                        sh.push(hf_o.hash(okey[i] as u64), (okey[i], odate[i], oprio[i]));
                    }
                }
            }
        }),
        Engine::Tectorwise => {
            let policy = cfg.policy;
            #[derive(Default)]
            struct P2Scratch {
                sel: Vec<u32>,
                hashes: Vec<u64>,
                h2: Vec<u64>,
                bufs: tw::ProbeBuffers,
            }
            dbep_vectorized::stage::build_ht(&cfg.exec(), ord.len(), pace, P2Scratch::default, |sh, st, r| {
                for c in tw::chunks(r, cfg.vector_size) {
                    if tw::sel::sel_lt_i32_dense(&odate[c.clone()], cut, c.start as u32, &mut st.sel, policy)
                        == 0
                    {
                        continue;
                    }
                    tw::hashp::hash_i32(ocust, &st.sel, hf_c, &mut st.hashes);
                    if tw::probe::probe_join(
                        ht_c,
                        &st.hashes,
                        &st.sel,
                        |row, t| *row == ocust[t as usize],
                        policy,
                        &mut st.bufs,
                    ) == 0
                    {
                        continue;
                    }
                    tw::hashp::hash_i32(okey, &st.bufs.match_tuple, hf_o, &mut st.h2);
                    for (j, &t) in st.bufs.match_tuple.iter().enumerate() {
                        let t = t as usize;
                        sh.push(st.h2[j], (okey[t], odate[t], oprio[t]));
                    }
                }
            })
        }
        other => unreachable!("{} is not a per-stage candidate", other.name()),
    }
}

/// Stage 2 (`probe-lineitem-agg`): σ(lineitem) ⋈ HT_o → Γ. Probes with
/// `hf_o` (HT_o's build hash), which doubles as the group hash: the
/// grouping key's first component equals the probe key, so both
/// paradigms reuse the probe hash for the aggregate table.
fn probe_lineitem(
    db: &Database,
    cfg: &ExecCfg,
    p: &Q3Params,
    engine: Engine,
    hf_o: HashFn,
    ht_o: &JoinHt<GroupKey>,
) -> Vec<(GroupKey, i64)> {
    let cut = p.cut;
    let hf = hf_o;
    let li = db.table("lineitem");
    let lokey = li.col("l_orderkey").i32s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let ship = li.col("l_shipdate").dates();
    let shards: Vec<_> = match engine {
        Engine::Typer => {
            let shards = cfg.map_scan(
                li.len(),
                LI_BITS,
                |_| GroupByShard::<GroupKey, i64>::new(PREAGG_GROUPS),
                |shard, r| {
                    for i in r {
                        if ship[i] > cut {
                            let h = hf.hash(lokey[i] as u64);
                            for e in ht_o.probe(h) {
                                if e.row.0 == lokey[i] {
                                    let rev = ext[i] * (100 - disc[i]);
                                    shard.update(h, e.row, || 0, |a| *a += rev);
                                }
                            }
                        }
                    }
                },
            );
            shards.into_iter().map(GroupByShard::finish).collect()
        }
        Engine::Tectorwise => {
            let policy = cfg.policy;
            #[derive(Default)]
            struct P3Scratch {
                sel: Vec<u32>,
                hashes: Vec<u64>,
                bufs: tw::ProbeBuffers,
                gb: tw::grouping::GroupBuffers,
                k_okey: Vec<i32>,
                k_odate: Vec<i32>,
                k_prio: Vec<i32>,
                v_ext: Vec<i64>,
                v_disc: Vec<i64>,
                v_om: Vec<i64>,
                v_rev: Vec<i64>,
                v_rev_sel: Vec<i64>,
                ghash: Vec<u64>,
                ordinals: Vec<u32>,
            }
            let shards = cfg.map_scan(
                li.len(),
                LI_BITS,
                |_| {
                    (
                        GroupByShard::<GroupKey, i64>::new(PREAGG_GROUPS),
                        P3Scratch::default(),
                    )
                },
                |(shard, st), r| {
                    for c in tw::chunks(r, cfg.vector_size) {
                        if tw::sel::sel_gt_i32_dense(
                            &ship[c.clone()],
                            cut,
                            c.start as u32,
                            &mut st.sel,
                            policy,
                        ) == 0
                        {
                            continue;
                        }
                        tw::hashp::hash_i32(lokey, &st.sel, hf, &mut st.hashes);
                        let nm = tw::probe::probe_join(
                            ht_o,
                            &st.hashes,
                            &st.sel,
                            |row, t| row.0 == lokey[t as usize],
                            policy,
                            &mut st.bufs,
                        );
                        if nm == 0 {
                            continue;
                        }
                        // buildGather: key columns out of the matched entries.
                        tw::gather::gather_build(ht_o, &st.bufs.match_entry, |r| r.0, &mut st.k_okey);
                        tw::gather::gather_build(ht_o, &st.bufs.match_entry, |r| r.1, &mut st.k_odate);
                        tw::gather::gather_build(ht_o, &st.bufs.match_entry, |r| r.2, &mut st.k_prio);
                        // Probe-side values.
                        tw::gather::gather_i64(ext, &st.bufs.match_tuple, policy, &mut st.v_ext);
                        tw::gather::gather_i64(disc, &st.bufs.match_tuple, policy, &mut st.v_disc);
                        tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                        tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_rev);
                        // Group lookup over match ordinals.
                        tw::hashp::hash_i32_dense(&st.k_okey, hf, &mut st.ghash);
                        tw::hashp::iota(0, nm, &mut st.ordinals);
                        let (k_okey, k_odate, k_prio) = (&st.k_okey, &st.k_odate, &st.k_prio);
                        tw::grouping::find_groups(
                            &shard.ht,
                            &st.ghash,
                            &st.ordinals,
                            |k, j| {
                                let j = j as usize;
                                k.0 == k_okey[j] && k.1 == k_odate[j] && k.2 == k_prio[j]
                            },
                            &mut st.gb,
                        );
                        for &j in &st.gb.miss_sel {
                            let j = j as usize;
                            shard.update(
                                st.ghash[j],
                                (st.k_okey[j], st.k_odate[j], st.k_prio[j]),
                                || 0,
                                |a| *a += st.v_rev[j],
                            );
                        }
                        if st.gb.groups.is_empty() {
                            continue;
                        }
                        tw::gather::gather_i64(&st.v_rev, &st.gb.group_sel, policy, &mut st.v_rev_sel);
                        tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_rev_sel, |a, v| {
                            *a += v
                        });
                    }
                },
            );
            shards.into_iter().map(|(shard, _)| shard.finish()).collect()
        }
        other => unreachable!("{} is not a per-stage candidate", other.name()),
    };
    merge_partitions(shards, &cfg.exec(), |a, b| *a += b)
}

/// Execute with one engine choice per stage (`[build-customer,
/// probe-orders, probe-lineitem-agg]`). Uniform assignments reproduce
/// the pure engines exactly; mixed assignments hash each table with its
/// *build* stage's function and probe accordingly.
fn run_mix(db: &Database, cfg: &ExecCfg, p: &Q3Params, choices: [Engine; 3]) -> QueryResult {
    let hf_of = |e: Engine| match e {
        Engine::Tectorwise => cfg.tw_hash(),
        _ => cfg.typer_hash(),
    };
    let (hf_c, hf_o) = (hf_of(choices[0]), hf_of(choices[1]));
    let ht_c = {
        let _s = cfg.stage(0);
        build_customer(db, cfg, choices[0], hf_c, p)
    };
    let ht_o = {
        let _s = cfg.stage(1);
        probe_orders(db, cfg, p, choices[1], hf_c, hf_o, &ht_c)
    };
    let _s = cfg.stage(2);
    finish(probe_lineitem(db, cfg, p, choices[2], hf_o, &ht_o))
}

/// Typer: three fused pipelines separated by hash-table builds.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q3Params) -> QueryResult {
    run_mix(db, cfg, p, [Engine::Typer; 3])
}

/// Tectorwise: the same three pipelines as vector primitives.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q3Params) -> QueryResult {
    run_mix(db, cfg, p, [Engine::Tectorwise; 3])
}

/// Volcano: the same plan, interpreted. The driving lineitem scan is
/// morsel-partitioned across `cfg.threads` workers (each worker builds
/// its own copies of the small join tables); partial groups re-aggregate
/// in a final merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q3Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, HashJoin, Rows, Scan, Select, Val};
    let li = db.table("lineitem");
    let m = Morsels::new(li.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let cust_filtered = Select {
            input: Box::new(
                Scan::new(db.table("customer"), &["c_custkey", "c_mktsegment"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::Const(Val::Str(p.segment.clone()))),
        };
        let ord_filtered = Select {
            input: Box::new(
                Scan::new(
                    db.table("orders"),
                    &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit_i32(p.cut)),
        };
        // rows: [c_custkey, c_mktsegment, o_orderkey, o_custkey, o_orderdate, o_prio]
        let join1 = HashJoin::new(
            Box::new(cust_filtered),
            vec![Expr::col(0)],
            Box::new(ord_filtered),
            vec![Expr::col(1)],
        );
        let li_filtered = Select {
            input: Box::new(
                Scan::new(li, &["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched)
                    .morsel_driven(&m),
            ),
            pred: Expr::cmp(CmpOp::Gt, Expr::col(3), Expr::lit_i32(p.cut)),
        };
        // rows: join1 row (6 cols) ++ [l_orderkey, ext, disc, ship]
        let join2 = HashJoin::new(
            Box::new(join1),
            vec![Expr::col(2)],
            Box::new(li_filtered),
            vec![Expr::col(0)],
        );
        Box::new(Aggregate::new(
            Box::new(join2),
            vec![Expr::col(2), Expr::col(4), Expr::col(5)],
            vec![AggSpec::SumI64(Expr::arith(
                BinOp::Mul,
                Expr::col(7),
                Expr::arith(BinOp::Sub, Expr::lit_i64(100), Expr::col(8)),
            ))],
        ))
    });
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0), Expr::col(1), Expr::col(2)],
        vec![AggSpec::SumI64(Expr::col(3))],
    );
    let groups = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|row| {
            let key = match (&row[0], &row[1], &row[2]) {
                (Val::I32(a), Val::I32(b), Val::I32(c)) => (*a, *b, *c),
                other => panic!("unexpected group key {other:?}"),
            };
            (key, row[3].as_i64())
        })
        .collect();
    finish(groups)
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q3;

impl crate::QueryPlan for Q3 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q3
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("customer").len() + db.table("orders").len() + db.table("lineitem").len()
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q3())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q3())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q3())
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-customer", StageKind::JoinBuild),
            StageDesc::new("probe-orders", StageKind::JoinProbe),
            StageDesc::new("probe-lineitem-agg", StageKind::JoinProbe),
        ];
        S
    }

    fn run_mix(
        &self,
        db: &Database,
        cfg: &ExecCfg,
        params: &Params,
        choices: &[Engine],
    ) -> Option<QueryResult> {
        match choices {
            [a, b, c]
                if choices
                    .iter()
                    .all(|e| matches!(e, Engine::Typer | Engine::Tectorwise)) =>
            {
                Some(run_mix(db, cfg, params.q3(), [*a, *b, *c]))
            }
            _ => None,
        }
    }
}
