//! TPC-H Q4: EXISTS semi-join (orders ⋉ lineitem) feeding a tiny
//! priority grouping — the workload's semi-join shape.
//!
//! ```sql
//! SELECT o_orderpriority, count(*) AS order_count
//! FROM orders
//! WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
//!   AND EXISTS (SELECT * FROM lineitem
//!               WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
//! GROUP BY o_orderpriority ORDER BY o_orderpriority
//! ```
//!
//! Physical plan (identical in all engines): σ(lineitem,
//! commit < receipt) → HT_late keyed by `l_orderkey`; σ(orders, 3-month
//! window) probes HT_late **existence-only** — duplicate lineitems per
//! order must not duplicate output — then counts per priority. The five
//! priorities have distinct leading bytes, so the grouping runs on a
//! 5-slot array keyed by `o_orderpriority[0]`; a representative row per
//! slot recovers the full string for the result.

use crate::params::Q4Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::{Engine, ExecCfg, Params};
use dbep_runtime::hash::HashFn;
use dbep_runtime::JoinHt;
use dbep_storage::Database;
use dbep_vectorized as tw;

const LI_BITS: usize = 8 * (4 + 4 + 4); // orderkey + commitdate + receiptdate
const ORD_BITS: usize = 8 * (4 + 4 + 9); // orderkey + orderdate + priority text
/// Priority slots: leading bytes '1'..'5'.
const SLOTS: usize = 5;

/// Per-worker grouping state: count and a representative orders row per
/// priority slot (all rows in a slot share the same priority string).
#[derive(Clone, Copy)]
struct PrioCounts {
    counts: [i64; SLOTS],
    rep: [u32; SLOTS],
}

impl PrioCounts {
    fn new() -> Self {
        PrioCounts {
            counts: [0; SLOTS],
            rep: [u32::MAX; SLOTS],
        }
    }

    #[inline]
    fn slot(byte0: u8) -> usize {
        let s = byte0.wrapping_sub(b'1') as usize;
        debug_assert!(s < SLOTS, "priority byte {byte0} outside domain");
        s
    }

    #[inline]
    fn add(&mut self, byte0: u8, row: u32, n: i64) {
        let s = Self::slot(byte0);
        self.counts[s] += n;
        if self.rep[s] == u32::MAX {
            self.rep[s] = row;
        }
    }

    fn merge(mut parts: Vec<PrioCounts>) -> PrioCounts {
        let mut all = PrioCounts::new();
        for p in parts.drain(..) {
            for s in 0..SLOTS {
                all.counts[s] += p.counts[s];
                if all.rep[s] == u32::MAX {
                    all.rep[s] = p.rep[s];
                }
            }
        }
        all
    }
}

fn finish(db: &Database, g: PrioCounts) -> QueryResult {
    let prio = db.table("orders").col("o_orderpriority").strs();
    let rows = (0..SLOTS)
        .filter(|&s| g.counts[s] > 0)
        .map(|s| {
            vec![
                Value::Str(prio.get(g.rep[s] as usize).to_string()),
                Value::I64(g.counts[s]),
            ]
        })
        .collect();
    QueryResult::new(
        &["o_orderpriority", "order_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

/// Stage 0 (`build-late`): σ(lineitem, commit < receipt) → HT_late,
/// under either paradigm. The hash function is the *build* engine's
/// choice and travels with the table — the probe stage must use the
/// same one regardless of which engine runs it.
fn build_late(db: &Database, cfg: &ExecCfg, engine: Engine, hf: HashFn) -> JoinHt<i32> {
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let commit = li.col("l_commitdate").dates();
    let receipt = li.col("l_receiptdate").dates();
    let pace = |rows| cfg.pace(rows, LI_BITS);
    match engine {
        // Fused filter + push, one branch per tuple.
        Engine::Typer => dbep_compiled::stage::build_ht(&cfg.exec(), li.len(), pace, |sh, r| {
            for i in r {
                if commit[i] < receipt[i] {
                    sh.push(hf.hash(lok[i] as u64), lok[i]);
                }
            }
        }),
        // Column-vs-column selection primitive, then hash + push.
        Engine::Tectorwise => {
            let policy = cfg.policy;
            dbep_vectorized::stage::build_ht(
                &cfg.exec(),
                li.len(),
                pace,
                || (Vec::new(), Vec::new()),
                |sh, (sel, hashes), r| {
                    for c in tw::chunks(r, cfg.vector_size) {
                        // Column-vs-column compare: the first selection of the cascade.
                        if tw::sel::sel_lt_i32_col_dense(
                            &commit[c.clone()],
                            &receipt[c.clone()],
                            c.start as u32,
                            sel,
                            policy,
                        ) == 0
                        {
                            continue;
                        }
                        tw::hashp::hash_i32(lok, sel, hf, hashes);
                        for (j, &t) in sel.iter().enumerate() {
                            sh.push(hashes[j], lok[t as usize]);
                        }
                    }
                },
            )
        }
        other => unreachable!("{} is not a per-stage candidate", other.name()),
    }
}

/// Stage 1 (`probe-orders`): σ(orders) ⋉ HT_late → Γ(priority), under
/// either paradigm. `hf` must be the hash HT_late was built with.
fn probe_orders(
    db: &Database,
    cfg: &ExecCfg,
    p: &Q4Params,
    engine: Engine,
    hf: HashFn,
    ht_late: &JoinHt<i32>,
) -> PrioCounts {
    let (date_lo, date_hi) = (p.date_lo, p.date_hi);
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let odate = ord.col("o_orderdate").dates();
    let prio = ord.col("o_orderpriority").strs();
    match engine {
        // Fused probe loop; the existence-only path stops at the first
        // witness lineitem.
        Engine::Typer => {
            let parts = cfg.map_scan(
                ord.len(),
                ORD_BITS,
                |_| PrioCounts::new(),
                |g, r| {
                    for i in r {
                        if odate[i] >= date_lo && odate[i] < date_hi {
                            let h = hf.hash(okey[i] as u64);
                            // Existence-only: stop at the first witness lineitem.
                            if ht_late.contains(h, |k| *k == okey[i]) {
                                g.add(prio.get_bytes(i)[0], i as u32, 1);
                            }
                        }
                    }
                },
            );
            PrioCounts::merge(parts)
        }
        // Primitive chain; the probe is the dedicated semi-join
        // primitive (each order emitted at most once).
        Engine::Tectorwise => {
            let policy = cfg.policy;
            #[derive(Default)]
            struct P2Scratch {
                s1: Vec<u32>,
                s2: Vec<u32>,
                hashes: Vec<u64>,
                bufs: tw::ProbeBuffers,
                v_byte: Vec<u8>,
                slot_sel: Vec<u32>,
            }
            let parts = cfg.map_scan(
                ord.len(),
                ORD_BITS,
                |_| (PrioCounts::new(), P2Scratch::default()),
                |(g, st), r| {
                    for c in tw::chunks(r, cfg.vector_size) {
                        if tw::sel::sel_ge_i32_dense(
                            &odate[c.clone()],
                            date_lo,
                            c.start as u32,
                            &mut st.s1,
                            policy,
                        ) == 0
                        {
                            continue;
                        }
                        if tw::sel::sel_lt_i32_sparse(odate, date_hi, &st.s1, &mut st.s2, policy) == 0 {
                            continue;
                        }
                        tw::hashp::hash_i32(okey, &st.s2, hf, &mut st.hashes);
                        if tw::probe::probe_semijoin(
                            ht_late,
                            &st.hashes,
                            &st.s2,
                            |k, t| *k == okey[t as usize],
                            policy,
                            &mut st.bufs,
                        ) == 0
                        {
                            continue;
                        }
                        // Conditional counting per priority slot: gather the leading
                        // byte, then one char-equality selection per slot.
                        tw::gather::gather_str_byte0(prio, &st.bufs.match_tuple, &mut st.v_byte);
                        for s in 0..SLOTS as u8 {
                            let n = tw::sel::sel_eq_char_dense(&st.v_byte, b'1' + s, 0, &mut st.slot_sel);
                            if n > 0 {
                                g.add(b'1' + s, st.bufs.match_tuple[st.slot_sel[0] as usize], n as i64);
                            }
                        }
                    }
                },
            );
            PrioCounts::merge(parts.into_iter().map(|(g, _)| g).collect())
        }
        other => unreachable!("{} is not a per-stage candidate", other.name()),
    }
}

/// Execute with one engine choice per stage (`[build, probe]`). The
/// uniform assignments are exactly the pure engines; mixed assignments
/// share the build engine's hash function across both stages.
fn run_mix(db: &Database, cfg: &ExecCfg, p: &Q4Params, choices: [Engine; 2]) -> QueryResult {
    let hf = match choices[0] {
        Engine::Tectorwise => cfg.tw_hash(),
        _ => cfg.typer_hash(),
    };
    let ht_late = {
        let _s = cfg.stage(0);
        build_late(db, cfg, choices[0], hf)
    };
    let _s = cfg.stage(1);
    finish(db, probe_orders(db, cfg, p, choices[1], hf, &ht_late))
}

/// Typer: two fused pipelines around the semi-join build barrier; the
/// probe uses the hash table's existence-only path.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q4Params) -> QueryResult {
    run_mix(db, cfg, p, [Engine::Typer; 2])
}

/// Tectorwise: the same plan as a primitive chain; the probe is the
/// dedicated semi-join primitive (each order emitted at most once).
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q4Params) -> QueryResult {
    run_mix(db, cfg, p, [Engine::Tectorwise; 2])
}

/// Volcano: the same plan through the interpreted semi-join operator.
/// The driving orders scan is morsel-partitioned across `cfg.threads`
/// workers; partial priority counts re-aggregate in a final merge pass.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q4Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, CmpOp, Expr, Rows, Scan, Select, SemiJoin, Val};
    let ord = db.table("orders");
    let m = Morsels::new(ord.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let late = Select {
            input: Box::new(
                Scan::new(
                    db.table("lineitem"),
                    &["l_orderkey", "l_commitdate", "l_receiptdate"],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched),
            ),
            pred: Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::col(2)),
        };
        let ord_f = Select {
            input: Box::new(
                Scan::new(ord, &["o_orderkey", "o_orderdate", "o_orderpriority"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched)
                    .morsel_driven(&m),
            ),
            pred: Expr::And(vec![
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit_i32(p.date_lo)),
                Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::lit_i32(p.date_hi)),
            ]),
        };
        let semi = SemiJoin::new(
            Box::new(late),
            vec![Expr::col(0)],
            Box::new(ord_f),
            vec![Expr::col(0)],
        );
        Box::new(Aggregate::new(
            Box::new(semi),
            vec![Expr::col(2)],
            vec![AggSpec::Count],
        ))
    });
    let merge = Aggregate::new(
        Box::new(Rows::new(partials)),
        vec![Expr::col(0)],
        vec![AggSpec::SumI64(Expr::col(1))],
    );
    let rows = dbep_volcano::ops::collect(Box::new(merge))
        .into_iter()
        .map(|row| {
            let prio = match &row[0] {
                Val::Str(s) => s.clone(),
                other => panic!("unexpected group key {other:?}"),
            };
            vec![Value::Str(prio), Value::I64(row[1].as_i64())]
        })
        .collect();
    QueryResult::new(
        &["o_orderpriority", "order_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q4;

impl crate::QueryPlan for Q4 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q4
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineitem").len() + db.table("orders").len()
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q4())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q4())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q4())
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-late", StageKind::JoinBuild),
            StageDesc::new("probe-orders", StageKind::JoinProbe),
        ];
        S
    }

    fn run_mix(
        &self,
        db: &Database,
        cfg: &ExecCfg,
        params: &Params,
        choices: &[Engine],
    ) -> Option<QueryResult> {
        match choices {
            [b @ (Engine::Typer | Engine::Tectorwise), p @ (Engine::Typer | Engine::Tectorwise)] => {
                Some(run_mix(db, cfg, params.q4(), [*b, *p]))
            }
            _ => None,
        }
    }
}
