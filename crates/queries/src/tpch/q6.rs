//! TPC-H Q6: highly selective conjunctive filter (≈2 % of lineitem).
//!
//! ```sql
//! SELECT sum(l_extendedprice * l_discount) AS revenue
//! FROM lineitem
//! WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
//!   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24
//! ```
//!
//! Typer evaluates the whole conjunction branch-free per tuple (the
//! implementation §6.2's footnote 8 refers to: it always reads all four
//! columns, costing memory bandwidth at high thread counts). Tectorwise
//! runs the paper's five-primitive selection cascade — one dense
//! selection, four sparse ones (§5.1) — which is also the SIMD showcase
//! of Fig. 6c.

use crate::params::Q6Params;
use crate::result::{QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_compiled::PackedReader;
use dbep_storage::{Database, PackedInts, Table};
use dbep_vectorized as tw;

/// Bytes read per scanned row (date + 3×i64), flat storage.
const ROW_BITS: usize = 8 * (4 + 3 * 8);

/// The four scanned columns, in encoding/bandwidth-accounting order.
const COLS: [&str; 4] = ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"];

/// Bit-packed companions for all four scanned columns, if present.
fn packed_cols(li: &Table) -> Option<[&PackedInts; 4]> {
    let mut out = [None; 4];
    for (slot, name) in out.iter_mut().zip(COLS) {
        *slot = Some(li.encoded(name)?.packed());
    }
    Some(out.map(|c| c.expect("filled above")))
}

fn finish(revenue: i64) -> QueryResult {
    QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None)
}

/// Typer over encoded storage: the same fused loop, but each column is
/// unpacked in registers by a [`PackedReader`] cursor — decompression
/// fused into the scan, never materialized.
fn typer_encoded(li: &Table, cols: [&PackedInts; 4], cfg: &ExecCfg, p: &Q6Params) -> QueryResult {
    let (ship_lo, ship_hi) = (p.ship_lo as i64, p.ship_hi as i64);
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let [ship, disc, qty, ext] = cols;
    let locals = cfg.map_scan(
        li.len(),
        li.row_bits(&COLS),
        |_| 0i64,
        |local, r| {
            let mut ship_r = PackedReader::new(ship, r.start);
            let mut disc_r = PackedReader::new(disc, r.start);
            let mut qty_r = PackedReader::new(qty, r.start);
            let mut ext_r = PackedReader::new(ext, r.start);
            for _ in r {
                let s = ship_r.next();
                let d = disc_r.next();
                let q = qty_r.next();
                let e = ext_r.next();
                let ok = (s >= ship_lo) & (s < ship_hi) & (d >= disc_lo) & (d <= disc_hi) & (q < qty_hi);
                *local += (ok as i64) * e * d;
            }
        },
    );
    finish(locals.into_iter().sum())
}

/// Tectorwise over encoded storage: fused decompress-and-select
/// cascade — two BETWEEN kernels and one sparse comparison replace the
/// five flat selections, then conditional-aggregate readers unpack only
/// the surviving rows' measures.
fn tectorwise_encoded(li: &Table, cols: [&PackedInts; 4], cfg: &ExecCfg, p: &Q6Params) -> QueryResult {
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let [ship, disc, qty, ext] = cols;
    let policy = cfg.policy;
    #[derive(Default)]
    struct Scratch {
        local: i64,
        s1: Vec<u32>,
        s2: Vec<u32>,
        s3: Vec<u32>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let locals = cfg.map_scan(
        li.len(),
        li.row_bits(&COLS),
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                // BETWEEN is inclusive: shipdate < hi becomes <= hi-1.
                if tw::sel::sel_between_i32_for(ship, ship_lo, ship_hi - 1, c, &mut st.s1, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_between_i64_for_sparse(disc, disc_lo, disc_hi, &st.s1, &mut st.s2, policy)
                    == 0
                {
                    continue;
                }
                if tw::sel::sel_lt_i64_packed_sparse(qty, qty_hi, &st.s2, &mut st.s3, policy) == 0 {
                    continue;
                }
                tw::gather::gather_packed_i64(ext, &st.s3, policy, &mut st.v_ext);
                tw::gather::gather_packed_i64(disc, &st.s3, policy, &mut st.v_disc);
                tw::map::map_mul_i64(&st.v_ext, &st.v_disc, &mut st.v_rev);
                st.local += tw::map::sum_i64(&st.v_rev, policy);
            }
        },
    );
    finish(locals.into_iter().map(|s| s.local).sum())
}

/// Typer: one fused, branch-free loop.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q6Params) -> QueryResult {
    let _stage = cfg.stage(0);
    let li = db.table("lineitem");
    if let Some(cols) = packed_cols(li) {
        return typer_encoded(li, cols, cfg, p);
    }
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let ship = li.col("l_shipdate").dates();
    let disc = li.col("l_discount").i64s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let locals = cfg.map_scan(
        li.len(),
        ROW_BITS,
        |_| 0i64,
        |local, r| {
            for i in r {
                // Predicated evaluation: no branches, all columns read.
                let ok = (ship[i] >= ship_lo)
                    & (ship[i] < ship_hi)
                    & (disc[i] >= disc_lo)
                    & (disc[i] <= disc_hi)
                    & (qty[i] < qty_hi);
                *local += (ok as i64) * ext[i] * disc[i];
            }
        },
    );
    finish(locals.into_iter().sum())
}

/// Tectorwise: five selection primitives, then gather/multiply/sum.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q6Params) -> QueryResult {
    let _stage = cfg.stage(0);
    let li = db.table("lineitem");
    if let Some(cols) = packed_cols(li) {
        return tectorwise_encoded(li, cols, cfg, p);
    }
    let (ship_lo, ship_hi) = (p.ship_lo, p.ship_hi);
    let (disc_lo, disc_hi, qty_hi) = (p.disc_lo, p.disc_hi, p.qty_hi);
    let ship = li.col("l_shipdate").dates();
    let disc = li.col("l_discount").i64s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let policy = cfg.policy;
    #[derive(Default)]
    struct Scratch {
        local: i64,
        s1: Vec<u32>,
        s2: Vec<u32>,
        s3: Vec<u32>,
        s4: Vec<u32>,
        s5: Vec<u32>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_rev: Vec<i64>,
    }
    let locals = cfg.map_scan(
        li.len(),
        ROW_BITS,
        |_| Scratch::default(),
        |st, r| {
            for c in tw::chunks(r, cfg.vector_size) {
                // 1 dense + 4 sparse selections (§5.1's cascade).
                if tw::sel::sel_ge_i32_dense(&ship[c.clone()], ship_lo, c.start as u32, &mut st.s1, policy)
                    == 0
                {
                    continue;
                }
                if tw::sel::sel_lt_i32_sparse(ship, ship_hi, &st.s1, &mut st.s2, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_ge_i64_sparse(disc, disc_lo, &st.s2, &mut st.s3, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_le_i64_sparse(disc, disc_hi, &st.s3, &mut st.s4, policy) == 0 {
                    continue;
                }
                if tw::sel::sel_lt_i64_sparse(qty, qty_hi, &st.s4, &mut st.s5, policy) == 0 {
                    continue;
                }
                tw::gather::gather_i64(ext, &st.s5, policy, &mut st.v_ext);
                tw::gather::gather_i64(disc, &st.s5, policy, &mut st.v_disc);
                tw::map::map_mul_i64(&st.v_ext, &st.v_disc, &mut st.v_rev);
                st.local += tw::map::sum_i64(&st.v_rev, policy);
            }
        },
    );
    finish(locals.into_iter().map(|s| s.local).sum())
}

/// Volcano: interpreted conjunction, one tuple at a time; `threads`
/// partition the scan through the exchange union, partial sums merge
/// here.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q6Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, CmpOp, Expr, Scan, Select};
    let li = db.table("lineitem");
    let m = Morsels::new(li.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let scan = Scan::new(li, &["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"])
            .paced(cfg.throttle)
            .recorded(cfg.sched)
            .morsel_driven(&m);
        let filtered = Select {
            input: Box::new(scan),
            pred: Expr::And(vec![
                Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit_i32(p.ship_lo)),
                Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit_i32(p.ship_hi)),
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit_i64(p.disc_lo)),
                Expr::cmp(CmpOp::Le, Expr::col(1), Expr::lit_i64(p.disc_hi)),
                Expr::cmp(CmpOp::Lt, Expr::col(2), Expr::lit_i64(p.qty_hi)),
            ]),
        };
        Box::new(Aggregate::new(
            Box::new(filtered),
            vec![],
            vec![AggSpec::SumI64(Expr::arith(
                BinOp::Mul,
                Expr::col(3),
                Expr::col(1),
            ))],
        ))
    });
    finish(partials.iter().map(|r| r[0].as_i64()).sum())
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q6;

impl crate::QueryPlan for Q6 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q6
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("lineitem").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        // One selection-dominated pipeline: σ(lineitem) → SUM.
        const S: &[crate::StageDesc] = &[StageDesc::new("scan-filter-lineitem", StageKind::ScanFilter)];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q6())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q6())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q6())
    }
}
