//! TPC-H Q9: the join-heaviest query of the subset (build ≈320 K,
//! probe ≈1.5 M at SF 1 — §3.3), with a **composite-key** join
//! (partsupp on (partkey, suppkey)) that forces Tectorwise to compose
//! hash/rehash and per-column compare primitives (§2.2).
//!
//! ```sql
//! SELECT nation, o_year, sum(amount) AS sum_profit FROM (
//!   SELECT n_name AS nation, extract(year FROM o_orderdate) AS o_year,
//!          l_extendedprice*(1-l_discount) - ps_supplycost*l_quantity AS amount
//!   FROM part, supplier, lineitem, partsupp, orders, nation
//!   WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
//!     AND ps_partkey = l_partkey AND p_partkey = l_partkey
//!     AND o_orderkey = l_orderkey AND n_nationkey = s_nationkey
//!     AND p_name LIKE '%green%') AS profit
//! GROUP BY nation, o_year ORDER BY nation, o_year DESC
//! ```
//!
//! Physical plan: σ(part) → HT_p; partsupp ⋈ HT_p → HT_ps (composite);
//! supplier → HT_s; lineitem ⋈ HT_ps ⋈ HT_s → HT_li (keyed by
//! orderkey, the paper's 320 K-entry build); orders ⋈ HT_li → Γ(nation,
//! year).

use crate::params::Q9Params;
use crate::result::{OrderBy, QueryResult, Value};
use crate::{ExecCfg, Params};
use dbep_runtime::agg_ht::merge_partitions;
use dbep_runtime::join_ht::JoinHtShard;
use dbep_runtime::{GroupByShard, JoinHt};
use dbep_storage::types::year_of;
use dbep_storage::Database;
use dbep_vectorized as tw;

const PART_BITS: usize = 8 * (4 + 33);
const PS_BITS: usize = 8 * (4 + 4 + 8);
const SUPP_BITS: usize = 8 * (4 + 4);
const LI_BITS: usize = 8 * (4 + 4 + 4 + 8 + 8 + 8);
const ORD_BITS: usize = 8 * (4 + 4);
const PREAGG_GROUPS: usize = 1 << 10; // 25 nations x 7 years

type LiRow = (i32, i32, i64); // (l_orderkey, nationkey, amount s4)

fn finish(db: &Database, groups: Vec<((i32, i32), i64)>) -> QueryResult {
    let nation_names = db.table("nation").col("n_name").strs();
    let rows = groups
        .into_iter()
        .map(|((nat, year), amount)| {
            vec![
                Value::Str(nation_names.get(nat as usize).to_string()),
                Value::I32(year),
                Value::dec4(amount as i128),
            ]
        })
        .collect();
    QueryResult::new(
        &["nation", "o_year", "sum_profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::desc(1)],
        None,
    )
}

/// Typer: five fused pipelines.
pub fn typer(db: &Database, cfg: &ExecCfg, p: &Q9Params) -> QueryResult {
    let needle = p.needle.as_str();
    let hf = cfg.typer_hash();
    // P1: σ(part, name ~ green) → HT_p.
    let _s0 = cfg.stage(0);
    let part = db.table("part");
    let pkey = part.col("p_partkey").i32s();
    let pname = part.col("p_name").strs();
    let shards = cfg.map_scan(
        part.len(),
        PART_BITS,
        |_| JoinHtShard::<i32>::new(),
        |sh, r| {
            for i in r {
                if pname.get(i).contains(needle) {
                    sh.push(hf.hash(pkey[i] as u64), pkey[i]);
                }
            }
        },
    );
    let ht_p = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // P2: partsupp ⋈ HT_p → HT_ps keyed (partkey, suppkey).
    let _s1 = cfg.stage(1);
    let ps = db.table("partsupp");
    let pspk = ps.col("ps_partkey").i32s();
    let pssk = ps.col("ps_suppkey").i32s();
    let cost = ps.col("ps_supplycost").i64s();
    let shards = cfg.map_scan(
        ps.len(),
        PS_BITS,
        |_| JoinHtShard::<(i32, i32, i64)>::new(),
        |sh, r| {
            for i in r {
                let h = hf.hash(pspk[i] as u64);
                if ht_p.probe(h).any(|e| e.row == pspk[i]) {
                    let hc = hf.rehash(h, pssk[i] as u64);
                    sh.push(hc, (pspk[i], pssk[i], cost[i]));
                }
            }
        },
    );
    let ht_ps = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s1);

    // P3: supplier → HT_s (suppkey → nationkey).
    let _s2 = cfg.stage(2);
    let supp = db.table("supplier");
    let skey = supp.col("s_suppkey").i32s();
    let snat = supp.col("s_nationkey").i32s();
    let shards = cfg.map_scan(
        supp.len(),
        SUPP_BITS,
        |_| JoinHtShard::<(i32, i32)>::new(),
        |sh, r| {
            for i in r {
                sh.push(hf.hash(skey[i] as u64), (skey[i], snat[i]));
            }
        },
    );
    let ht_s = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s2);

    // P4: lineitem ⋈ HT_ps ⋈ HT_s → HT_li (keyed by orderkey).
    let _s3 = cfg.stage(3);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let lpk = li.col("l_partkey").i32s();
    let lsk = li.col("l_suppkey").i32s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let shards = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| JoinHtShard::<LiRow>::new(),
        |sh, r| {
            for i in r {
                // Composite-key probe: the generated code checks both key
                // parts in one expression (Fig. 2a).
                let hc = hf.rehash(hf.hash(lpk[i] as u64), lsk[i] as u64);
                for e in ht_ps.probe(hc) {
                    if e.row.0 == lpk[i] && e.row.1 == lsk[i] {
                        let hs = hf.hash(lsk[i] as u64);
                        for s in ht_s.probe(hs) {
                            if s.row.0 == lsk[i] {
                                // Both terms are scale-4 fixed point.
                                let amount = ext[i] * (100 - disc[i]) - e.row.2 * qty[i];
                                sh.push(hf.hash(lok[i] as u64), (lok[i], s.row.1, amount));
                            }
                        }
                    }
                }
            }
        },
    );
    let ht_li = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s3);

    // P5: orders ⋈ HT_li → Γ(nation, year).
    let _s4 = cfg.stage(4);
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let odate = ord.col("o_orderdate").dates();
    let shards = cfg.map_scan(
        ord.len(),
        ORD_BITS,
        |_| GroupByShard::<(i32, i32), i64>::new(PREAGG_GROUPS),
        |shard, r| {
            for i in r {
                let h = hf.hash(okey[i] as u64);
                for e in ht_li.probe(h) {
                    if e.row.0 == okey[i] {
                        let key = (e.row.1, year_of(odate[i]));
                        let gh = hf.rehash(hf.hash(key.0 as u64), key.1 as u64);
                        shard.update(gh, key, || 0, |a| *a += e.row.2);
                    }
                }
            }
        },
    );
    let shards = shards.into_iter().map(GroupByShard::finish).collect();
    finish(db, merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Tectorwise: the same five pipelines as vector primitives. The
/// composite key uses hash + rehash and two compare primitives.
pub fn tectorwise(db: &Database, cfg: &ExecCfg, p: &Q9Params) -> QueryResult {
    let needle = p.needle.as_str();
    let hf = cfg.tw_hash();
    let policy = cfg.policy;
    // P1: σ(part) → HT_p (string filter is a scalar primitive).
    let _s0 = cfg.stage(0);
    let part = db.table("part");
    let pkey = part.col("p_partkey").i32s();
    let pname = part.col("p_name").strs();
    let shards = cfg.map_scan(
        part.len(),
        PART_BITS,
        |_| (JoinHtShard::<i32>::new(), Vec::new(), Vec::new()),
        |(sh, sel, hashes), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                sel.clear();
                for i in c {
                    if pname.get(i).contains(needle) {
                        sel.push(i as u32);
                    }
                }
                if sel.is_empty() {
                    continue;
                }
                tw::hashp::hash_i32(pkey, sel, hf, hashes);
                for (j, &t) in sel.iter().enumerate() {
                    sh.push(hashes[j], pkey[t as usize]);
                }
            }
        },
    );
    let shards = shards.into_iter().map(|(sh, _, _)| sh).collect();
    let ht_p = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s0);

    // P2: partsupp ⋈ HT_p → HT_ps (composite key build).
    let _s1 = cfg.stage(1);
    let ps = db.table("partsupp");
    let pspk = ps.col("ps_partkey").i32s();
    let pssk = ps.col("ps_suppkey").i32s();
    let cost = ps.col("ps_supplycost").i64s();
    #[derive(Default)]
    struct P2Scratch {
        all: Vec<u32>,
        hashes: Vec<u64>,
        hc: Vec<u64>,
        bufs: tw::ProbeBuffers,
    }
    let shards = cfg.map_scan(
        ps.len(),
        PS_BITS,
        |_| (JoinHtShard::<(i32, i32, i64)>::new(), P2Scratch::default()),
        |(sh, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.all);
                tw::hashp::hash_i32(pspk, &st.all, hf, &mut st.hashes);
                if tw::probe::probe_join(
                    &ht_p,
                    &st.hashes,
                    &st.all,
                    |row, t| *row == pspk[t as usize],
                    policy,
                    &mut st.bufs,
                ) == 0
                {
                    continue;
                }
                tw::hashp::hash_i32(pspk, &st.bufs.match_tuple, hf, &mut st.hc);
                tw::hashp::rehash_i32(pssk, &st.bufs.match_tuple, hf, &mut st.hc);
                for (j, &t) in st.bufs.match_tuple.iter().enumerate() {
                    let t = t as usize;
                    sh.push(st.hc[j], (pspk[t], pssk[t], cost[t]));
                }
            }
        },
    );
    let shards = shards.into_iter().map(|(sh, _)| sh).collect();
    let ht_ps = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s1);

    // P3: supplier → HT_s.
    let _s2 = cfg.stage(2);
    let supp = db.table("supplier");
    let skey = supp.col("s_suppkey").i32s();
    let snat = supp.col("s_nationkey").i32s();
    let shards = cfg.map_scan(
        supp.len(),
        SUPP_BITS,
        |_| (JoinHtShard::<(i32, i32)>::new(), Vec::new(), Vec::new()),
        |(sh, all, hashes), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), all);
                tw::hashp::hash_i32(skey, all, hf, hashes);
                for (j, &t) in all.iter().enumerate() {
                    let t = t as usize;
                    sh.push(hashes[j], (skey[t], snat[t]));
                }
            }
        },
    );
    let shards = shards.into_iter().map(|(sh, _, _)| sh).collect();
    let ht_s = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s2);

    // P4: lineitem ⋈ HT_ps ⋈ HT_s → HT_li.
    let _s3 = cfg.stage(3);
    let li = db.table("lineitem");
    let lok = li.col("l_orderkey").i32s();
    let lpk = li.col("l_partkey").i32s();
    let lsk = li.col("l_suppkey").i32s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    #[derive(Default)]
    struct P4Scratch {
        all: Vec<u32>,
        hc: Vec<u64>,
        hs: Vec<u64>,
        hok: Vec<u64>,
        ordinals: Vec<u32>,
        bufs: tw::ProbeBuffers,
        bufs2: tw::ProbeBuffers,
        v_cost: Vec<i64>,
        v_ext: Vec<i64>,
        v_disc: Vec<i64>,
        v_qty: Vec<i64>,
        v_om: Vec<i64>,
        v_rev: Vec<i64>,
        v_costq: Vec<i64>,
        v_amount: Vec<i64>,
        v_nat: Vec<i32>,
    }
    let shards = cfg.map_scan(
        li.len(),
        LI_BITS,
        |_| (JoinHtShard::<LiRow>::new(), P4Scratch::default()),
        |(sh, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.all);
                // Composite key: hash partkey, fold suppkey in, compare both
                // parts with one primitive each (§2.2).
                tw::hashp::hash_i32(lpk, &st.all, hf, &mut st.hc);
                tw::hashp::rehash_i32(lsk, &st.all, hf, &mut st.hc);
                let nm = tw::probe::probe_join(
                    &ht_ps,
                    &st.hc,
                    &st.all,
                    |row, t| row.0 == lpk[t as usize] && row.1 == lsk[t as usize],
                    policy,
                    &mut st.bufs,
                );
                if nm == 0 {
                    continue;
                }
                tw::gather::gather_build(&ht_ps, &st.bufs.match_entry, |r| r.2, &mut st.v_cost);
                // Second probe: suppkey → nationkey. Tuple ids are ordinals
                // into the first probe's match list.
                tw::hashp::hash_i32(lsk, &st.bufs.match_tuple, hf, &mut st.hs);
                tw::hashp::iota(0, nm, &mut st.ordinals);
                let first_matches = &st.bufs.match_tuple;
                let n2 = tw::probe::probe_join(
                    &ht_s,
                    &st.hs,
                    &st.ordinals,
                    |row, j| row.0 == lsk[first_matches[j as usize] as usize],
                    policy,
                    &mut st.bufs2,
                );
                if n2 == 0 {
                    continue;
                }
                // Align everything to the second probe's matches.
                let rows2: Vec<u32> = st
                    .bufs2
                    .match_tuple
                    .iter()
                    .map(|&j| st.bufs.match_tuple[j as usize])
                    .collect();
                tw::gather::gather_build(&ht_s, &st.bufs2.match_entry, |r| r.1, &mut st.v_nat);
                let cost2: Vec<i64> = st
                    .bufs2
                    .match_tuple
                    .iter()
                    .map(|&j| st.v_cost[j as usize])
                    .collect();
                tw::gather::gather_i64(ext, &rows2, policy, &mut st.v_ext);
                tw::gather::gather_i64(disc, &rows2, policy, &mut st.v_disc);
                tw::gather::gather_i64(qty, &rows2, policy, &mut st.v_qty);
                tw::map::map_rsub_const_i64(100, &st.v_disc, &mut st.v_om);
                tw::map::map_mul_i64(&st.v_ext, &st.v_om, &mut st.v_rev);
                tw::map::map_mul_i64(&cost2, &st.v_qty, &mut st.v_costq);
                // Both products are scale-4 fixed point.
                tw::map::map_sub_i64(&st.v_rev, &st.v_costq, &mut st.v_amount);
                tw::hashp::hash_i32(lok, &rows2, hf, &mut st.hok);
                for (j, &t) in rows2.iter().enumerate() {
                    sh.push(st.hok[j], (lok[t as usize], st.v_nat[j], st.v_amount[j]));
                }
            }
        },
    );
    let shards = shards.into_iter().map(|(sh, _)| sh).collect();
    let ht_li = JoinHt::from_shards(shards, &cfg.exec());
    drop(_s3);

    // P5: orders ⋈ HT_li → Γ(nation, year).
    let _s4 = cfg.stage(4);
    let ord = db.table("orders");
    let okey = ord.col("o_orderkey").i32s();
    let odate = ord.col("o_orderdate").dates();
    #[derive(Default)]
    struct P5Scratch {
        all: Vec<u32>,
        hashes: Vec<u64>,
        ghash: Vec<u64>,
        ordinals: Vec<u32>,
        bufs: tw::ProbeBuffers,
        gb: tw::grouping::GroupBuffers,
        k_nat: Vec<i32>,
        v_amt: Vec<i64>,
        v_date: Vec<i32>,
        k_year: Vec<i32>,
        v_amt_sel: Vec<i64>,
    }
    let shards = cfg.map_scan(
        ord.len(),
        ORD_BITS,
        |_| {
            (
                GroupByShard::<(i32, i32), i64>::new(PREAGG_GROUPS),
                P5Scratch::default(),
            )
        },
        |(shard, st), r| {
            for c in tw::chunks(r, cfg.vector_size) {
                tw::hashp::iota(c.start as u32, c.len(), &mut st.all);
                tw::hashp::hash_i32(okey, &st.all, hf, &mut st.hashes);
                let nm = tw::probe::probe_join(
                    &ht_li,
                    &st.hashes,
                    &st.all,
                    |row, t| row.0 == okey[t as usize],
                    policy,
                    &mut st.bufs,
                );
                if nm == 0 {
                    continue;
                }
                tw::gather::gather_build(&ht_li, &st.bufs.match_entry, |r| r.1, &mut st.k_nat);
                tw::gather::gather_build(&ht_li, &st.bufs.match_entry, |r| r.2, &mut st.v_amt);
                tw::gather::gather_i32(odate, &st.bufs.match_tuple, &mut st.v_date);
                tw::map::map_year(&st.v_date, &mut st.k_year);
                tw::hashp::iota(0, nm, &mut st.ordinals);
                tw::hashp::hash_i32_dense(&st.k_nat, hf, &mut st.ghash);
                tw::hashp::rehash_i32(&st.k_year, &st.ordinals, hf, &mut st.ghash);
                let (k_nat, k_year) = (&st.k_nat, &st.k_year);
                tw::grouping::find_groups(
                    &shard.ht,
                    &st.ghash,
                    &st.ordinals,
                    |k, j| {
                        let j = j as usize;
                        k.0 == k_nat[j] && k.1 == k_year[j]
                    },
                    &mut st.gb,
                );
                for &j in &st.gb.miss_sel {
                    let j = j as usize;
                    shard.update(
                        st.ghash[j],
                        (st.k_nat[j], st.k_year[j]),
                        || 0,
                        |a| *a += st.v_amt[j],
                    );
                }
                if st.gb.groups.is_empty() {
                    continue;
                }
                tw::gather::gather_i64(&st.v_amt, &st.gb.group_sel, policy, &mut st.v_amt_sel);
                tw::grouping::agg_update_i64(&mut shard.ht, &st.gb.groups, &st.v_amt_sel, |a, v| *a += v);
            }
        },
    );
    let shards = shards.into_iter().map(|(shard, _)| shard.finish()).collect();
    finish(db, merge_partitions(shards, &cfg.exec(), |a, b| *a += b))
}

/// Volcano: the same plan, interpreted. The driving orders scan is
/// morsel-partitioned across `cfg.threads` workers (the heavy build
/// chain is constructed per worker — the honest cost of a baseline
/// interpreter without shared operator state); partial per-day groups
/// merge in the per-year re-aggregation below.
pub fn volcano(db: &Database, cfg: &ExecCfg, p: &Q9Params) -> QueryResult {
    use dbep_runtime::Morsels;
    use dbep_volcano::{exchange, AggSpec, Aggregate, BinOp, Expr, HashJoin, Project, Scan, Select, Val};
    let ord = db.table("orders");
    let m = Morsels::new(ord.len());
    let partials = exchange::union(&cfg.exec(), |_| {
        let part_f = Select {
            input: Box::new(
                Scan::new(db.table("part"), &["p_partkey", "p_name"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            pred: Expr::Contains(Box::new(Expr::col(1)), p.needle.clone()),
        };
        // [p_partkey, p_name, ps_partkey, ps_suppkey, ps_supplycost]
        let j_ps = HashJoin::new(
            Box::new(part_f),
            vec![Expr::col(0)],
            Box::new(
                Scan::new(
                    db.table("partsupp"),
                    &["ps_partkey", "ps_suppkey", "ps_supplycost"],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
        );
        // Prune to [ps_partkey, ps_suppkey, ps_supplycost].
        let ps_view = Project {
            input: Box::new(j_ps),
            exprs: vec![Expr::col(2), Expr::col(3), Expr::col(4)],
        };
        // ⋈ lineitem on (partkey, suppkey):
        // [ps_pk, ps_sk, cost, l_orderkey, l_partkey, l_suppkey, qty, ext, disc]
        let j_li = HashJoin::new(
            Box::new(ps_view),
            vec![Expr::col(0), Expr::col(1)],
            Box::new(
                Scan::new(
                    db.table("lineitem"),
                    &[
                        "l_orderkey",
                        "l_partkey",
                        "l_suppkey",
                        "l_quantity",
                        "l_extendedprice",
                        "l_discount",
                    ],
                )
                .paced(cfg.throttle)
                .recorded(cfg.sched),
            ),
            vec![Expr::col(1), Expr::col(2)],
        );
        // ⋈ supplier: [s_suppkey, s_nationkey] ++ previous 9 cols.
        let j_s = HashJoin::new(
            Box::new(
                Scan::new(db.table("supplier"), &["s_suppkey", "s_nationkey"])
                    .paced(cfg.throttle)
                    .recorded(cfg.sched),
            ),
            vec![Expr::col(0)],
            Box::new(j_li),
            vec![Expr::col(5)], // l_suppkey position after build++probe concat
        );
        // amount = ext*(100-disc) - cost*qty/100 ; key cols: nationkey, orderkey.
        let amount = Expr::arith(
            BinOp::Sub,
            Expr::arith(
                BinOp::Mul,
                Expr::col(9),
                Expr::arith(BinOp::Sub, Expr::lit_i64(100), Expr::col(10)),
            ),
            Expr::arith(BinOp::Mul, Expr::col(4), Expr::col(8)),
        );
        let li_view = Project {
            input: Box::new(j_s),
            exprs: vec![Expr::col(1), Expr::col(5), amount],
        };
        // ⋈ orders: [nationkey, l_orderkey, amount, o_orderkey, o_year]
        let year_expr = Expr::col(4);
        let j_o = HashJoin::new(
            Box::new(li_view),
            vec![Expr::col(1)],
            Box::new(Project {
                input: Box::new(
                    Scan::new(ord, &["o_orderkey", "o_orderdate"])
                        .paced(cfg.throttle)
                        .recorded(cfg.sched)
                        .morsel_driven(&m),
                ),
                exprs: vec![Expr::col(0), Expr::col(1)],
            }),
            vec![Expr::col(0)],
        );
        Box::new(Aggregate::new(
            Box::new(j_o),
            vec![Expr::col(0), year_expr],
            vec![AggSpec::SumI64(Expr::col(2))],
        ))
    });
    let groups = partials
        .into_iter()
        .map(|row| {
            let nat = match &row[0] {
                Val::I32(v) => *v,
                other => panic!("unexpected nation key {other:?}"),
            };
            let year = year_of(match &row[1] {
                Val::I32(v) => *v,
                other => panic!("unexpected date {other:?}"),
            });
            ((nat, year), row[2].as_i64())
        })
        .collect::<Vec<_>>();
    // Dates group per-day above (and per worker); re-aggregate per year.
    let mut byyear: std::collections::HashMap<(i32, i32), i64> = std::collections::HashMap::new();
    for (k, v) in groups {
        *byyear.entry(k).or_insert(0) += v;
    }
    finish(db, byyear.into_iter().collect())
}

/// Registry entry (see [`crate::QueryPlan`]).
pub struct Q9;

impl crate::QueryPlan for Q9 {
    fn id(&self) -> crate::QueryId {
        crate::QueryId::Q9
    }

    fn tuples_scanned(&self, db: &Database) -> usize {
        db.table("part").len()
            + db.table("partsupp").len()
            + db.table("supplier").len()
            + db.table("lineitem").len()
            + db.table("orders").len()
    }

    fn stages(&self) -> &'static [crate::StageDesc] {
        use crate::{StageDesc, StageKind};
        const S: &[crate::StageDesc] = &[
            StageDesc::new("build-part", StageKind::JoinBuild),
            StageDesc::new("probe-partsupp", StageKind::JoinProbe),
            StageDesc::new("build-supplier", StageKind::JoinBuild),
            StageDesc::new("probe-lineitem", StageKind::JoinProbe),
            StageDesc::new("probe-orders", StageKind::JoinProbe),
        ];
        S
    }

    fn typer(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        typer(db, cfg, params.q9())
    }

    fn tectorwise(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        tectorwise(db, cfg, params.q9())
    }

    fn volcano(&self, db: &Database, cfg: &ExecCfg, params: &Params) -> QueryResult {
        volcano(db, cfg, params.q9())
    }
}
