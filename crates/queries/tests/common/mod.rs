//! Parameterized naive oracles shared by the oracle and parameter-sweep
//! suites.
//!
//! Every query is recomputed by an *independent* implementation (plain
//! nested loops + std HashMaps over the raw columns, following the SQL
//! text) reading the same bound [`Params`] the engines receive. This
//! catches semantic errors the engines could share — including
//! constant-folding bugs that only a non-default parameter instance can
//! expose.

#![allow(dead_code)] // each test binary uses a subset of the oracles

use dbep_queries::params::*;
use dbep_queries::result::{avg_i64, OrderBy, QueryResult, Value};
use dbep_queries::QueryId;
use dbep_storage::types::year_of;
use dbep_storage::Database;
use std::collections::{HashMap, HashSet};

/// Recompute `q` naively under the same bound parameters.
pub fn oracle(q: QueryId, db: &Database, params: &Params) -> QueryResult {
    match q {
        QueryId::Q1 => q1(db, params.q1()),
        QueryId::Q6 => q6(db, params.q6()),
        QueryId::Q3 => q3(db, params.q3()),
        QueryId::Q9 => q9(db, params.q9()),
        QueryId::Q18 => q18(db, params.q18()),
        QueryId::Q4 => q4(db, params.q4()),
        QueryId::Q12 => q12(db, params.q12()),
        QueryId::Q14 => q14(db, params.q14()),
        QueryId::Ssb1_1 => ssb1_1(db, params.ssb1_1()),
        QueryId::Ssb2_1 => ssb2_1(db, params.ssb2_1()),
        QueryId::Ssb3_1 => ssb3_1(db, params.ssb3_1()),
        QueryId::Ssb4_1 => ssb4_1(db, params.ssb4_1()),
    }
}

pub fn q1(db: &Database, p: &Q1Params) -> QueryResult {
    let li = db.table("lineitem");
    let ship = li.col("l_shipdate").dates();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let tax = li.col("l_tax").i64s();
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    // (sum_qty, sum_base, sum_dp, sum_charge, sum_disc, count)
    type Q1Sums = (i64, i64, i64, i128, i64, i64);
    let mut groups: HashMap<(u8, u8), Q1Sums> = HashMap::new();
    for i in 0..li.len() {
        if ship[i] <= p.ship_cut {
            let e = groups.entry((rf[i], ls[i])).or_default();
            let dp = ext[i] * (100 - disc[i]);
            e.0 += qty[i];
            e.1 += ext[i];
            e.2 += dp;
            e.3 += dp as i128 * (100 + tax[i]) as i128;
            e.4 += disc[i];
            e.5 += 1;
        }
    }
    let rows = groups
        .into_iter()
        .map(|((f, s), (q, b, dp, ch, d, c))| {
            vec![
                Value::Str((f as char).to_string()),
                Value::Str((s as char).to_string()),
                Value::dec2(q),
                Value::dec2(b),
                Value::dec4(dp as i128),
                Value::dec6(ch),
                Value::dec2(avg_i64(q, c)),
                Value::dec2(avg_i64(b, c)),
                Value::dec2(avg_i64(d, c)),
                Value::I64(c),
            ]
        })
        .collect();
    QueryResult::new(
        &[
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    )
}

pub fn q6(db: &Database, p: &Q6Params) -> QueryResult {
    let li = db.table("lineitem");
    let ship = li.col("l_shipdate").dates();
    let disc = li.col("l_discount").i64s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let mut revenue = 0i64;
    for i in 0..li.len() {
        if ship[i] >= p.ship_lo
            && ship[i] < p.ship_hi
            && disc[i] >= p.disc_lo
            && disc[i] <= p.disc_hi
            && qty[i] < p.qty_hi
        {
            revenue += ext[i] * disc[i];
        }
    }
    QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None)
}

pub fn q3(db: &Database, p: &Q3Params) -> QueryResult {
    let cust = db.table("customer");
    let chosen: HashSet<i32> = (0..cust.len())
        .filter(|&i| cust.col("c_mktsegment").strs().get(i) == p.segment)
        .map(|i| cust.col("c_custkey").i32s()[i])
        .collect();
    let ord = db.table("orders");
    let mut order_info: HashMap<i32, (i32, i32)> = HashMap::new();
    for i in 0..ord.len() {
        let odate = ord.col("o_orderdate").dates()[i];
        if odate < p.cut && chosen.contains(&ord.col("o_custkey").i32s()[i]) {
            order_info.insert(
                ord.col("o_orderkey").i32s()[i],
                (odate, ord.col("o_shippriority").i32s()[i]),
            );
        }
    }
    let li = db.table("lineitem");
    let mut groups: HashMap<(i32, i32, i32), i64> = HashMap::new();
    for i in 0..li.len() {
        if li.col("l_shipdate").dates()[i] > p.cut {
            let k = li.col("l_orderkey").i32s()[i];
            if let Some(&(odate, prio)) = order_info.get(&k) {
                *groups.entry((k, odate, prio)).or_default() +=
                    li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i]);
            }
        }
    }
    let rows = groups
        .into_iter()
        .map(|((k, d, pr), rev)| {
            vec![
                Value::I32(k),
                Value::dec4(rev as i128),
                Value::Date(d),
                Value::I32(pr),
            ]
        })
        .collect();
    QueryResult::new(
        &["l_orderkey", "revenue", "o_orderdate", "o_shippriority"],
        rows,
        &[OrderBy::desc(1), OrderBy::asc(2)],
        Some(10),
    )
}

pub fn q9(db: &Database, p: &Q9Params) -> QueryResult {
    let part = db.table("part");
    let chosen: HashSet<i32> = (0..part.len())
        .filter(|&i| part.col("p_name").strs().get(i).contains(&p.needle))
        .map(|i| part.col("p_partkey").i32s()[i])
        .collect();
    let ps = db.table("partsupp");
    let mut cost: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..ps.len() {
        cost.insert(
            (ps.col("ps_partkey").i32s()[i], ps.col("ps_suppkey").i32s()[i]),
            ps.col("ps_supplycost").i64s()[i],
        );
    }
    let supp = db.table("supplier");
    let nation_of: HashMap<i32, i32> = (0..supp.len())
        .map(|i| (supp.col("s_suppkey").i32s()[i], supp.col("s_nationkey").i32s()[i]))
        .collect();
    let ord = db.table("orders");
    let year_of_order: HashMap<i32, i32> = (0..ord.len())
        .map(|i| {
            (
                ord.col("o_orderkey").i32s()[i],
                year_of(ord.col("o_orderdate").dates()[i]),
            )
        })
        .collect();
    let li = db.table("lineitem");
    let mut groups: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..li.len() {
        let pk = li.col("l_partkey").i32s()[i];
        if !chosen.contains(&pk) {
            continue;
        }
        let sk = li.col("l_suppkey").i32s()[i];
        let amount = li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i])
            - cost[&(pk, sk)] * li.col("l_quantity").i64s()[i];
        let key = (nation_of[&sk], year_of_order[&li.col("l_orderkey").i32s()[i]]);
        *groups.entry(key).or_default() += amount;
    }
    let names = db.table("nation").col("n_name").strs();
    let rows = groups
        .into_iter()
        .map(|((n, y), a)| {
            vec![
                Value::Str(names.get(n as usize).to_string()),
                Value::I32(y),
                Value::dec4(a as i128),
            ]
        })
        .collect();
    QueryResult::new(
        &["nation", "o_year", "sum_profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::desc(1)],
        None,
    )
}

pub fn q18(db: &Database, p: &Q18Params) -> QueryResult {
    let li = db.table("lineitem");
    let mut qty_by_order: HashMap<i32, i64> = HashMap::new();
    for i in 0..li.len() {
        *qty_by_order.entry(li.col("l_orderkey").i32s()[i]).or_default() += li.col("l_quantity").i64s()[i];
    }
    let cust = db.table("customer");
    let cust_name: HashMap<i32, String> = (0..cust.len())
        .map(|i| {
            (
                cust.col("c_custkey").i32s()[i],
                cust.col("c_name").strs().get(i).to_string(),
            )
        })
        .collect();
    let ord = db.table("orders");
    let mut rows = Vec::new();
    for i in 0..ord.len() {
        let ok = ord.col("o_orderkey").i32s()[i];
        if let Some(&q) = qty_by_order.get(&ok) {
            if q > p.qty_limit {
                let ck = ord.col("o_custkey").i32s()[i];
                rows.push(vec![
                    Value::Str(cust_name[&ck].clone()),
                    Value::I32(ck),
                    Value::I32(ok),
                    Value::Date(ord.col("o_orderdate").dates()[i]),
                    Value::dec2(ord.col("o_totalprice").i64s()[i]),
                    Value::dec2(q),
                ]);
            }
        }
    }
    QueryResult::new(
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
            "sum_qty",
        ],
        rows,
        &[OrderBy::desc(4), OrderBy::asc(3)],
        Some(100),
    )
}

pub fn q4(db: &Database, p: &Q4Params) -> QueryResult {
    let li = db.table("lineitem");
    let mut late: HashSet<i32> = HashSet::new();
    for i in 0..li.len() {
        if li.col("l_commitdate").dates()[i] < li.col("l_receiptdate").dates()[i] {
            late.insert(li.col("l_orderkey").i32s()[i]);
        }
    }
    let ord = db.table("orders");
    let mut groups: HashMap<String, i64> = HashMap::new();
    for i in 0..ord.len() {
        let d = ord.col("o_orderdate").dates()[i];
        if d >= p.date_lo && d < p.date_hi && late.contains(&ord.col("o_orderkey").i32s()[i]) {
            *groups
                .entry(ord.col("o_orderpriority").strs().get(i).to_string())
                .or_default() += 1;
        }
    }
    let rows = groups
        .into_iter()
        .map(|(pr, n)| vec![Value::Str(pr), Value::I64(n)])
        .collect();
    QueryResult::new(
        &["o_orderpriority", "order_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

pub fn q12(db: &Database, p: &Q12Params) -> QueryResult {
    let ord = db.table("orders");
    let mut high_of: HashMap<i32, bool> = HashMap::new();
    for i in 0..ord.len() {
        let pr = ord.col("o_orderpriority").strs().get(i);
        high_of.insert(
            ord.col("o_orderkey").i32s()[i],
            pr == "1-URGENT" || pr == "2-HIGH",
        );
    }
    let li = db.table("lineitem");
    let mut groups: HashMap<String, (i64, i64)> = HashMap::new();
    for i in 0..li.len() {
        let mode = li.col("l_shipmode").strs().get(i);
        if mode != p.modes[0] && mode != p.modes[1] {
            continue;
        }
        let ship = li.col("l_shipdate").dates()[i];
        let commit = li.col("l_commitdate").dates()[i];
        let receipt = li.col("l_receiptdate").dates()[i];
        if commit < receipt && ship < commit && receipt >= p.receipt_lo && receipt < p.receipt_hi {
            let e = groups.entry(mode.to_string()).or_default();
            if high_of[&li.col("l_orderkey").i32s()[i]] {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    let rows = groups
        .into_iter()
        .map(|(m, (h, l))| vec![Value::Str(m), Value::I64(h), Value::I64(l)])
        .collect();
    QueryResult::new(
        &["l_shipmode", "high_line_count", "low_line_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    )
}

pub fn q14(db: &Database, p: &Q14Params) -> QueryResult {
    let part = db.table("part");
    let mut promo_of: HashMap<i32, bool> = HashMap::new();
    for i in 0..part.len() {
        promo_of.insert(
            part.col("p_partkey").i32s()[i],
            part.col("p_type").strs().get(i).starts_with(&p.prefix),
        );
    }
    let li = db.table("lineitem");
    let (mut promo, mut total) = (0i128, 0i128);
    for i in 0..li.len() {
        let ship = li.col("l_shipdate").dates()[i];
        if ship >= p.ship_lo && ship < p.ship_hi {
            let rev = (li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i])) as i128;
            if promo_of[&li.col("l_partkey").i32s()[i]] {
                promo += rev;
            }
            total += rev;
        }
    }
    let digits = if total == 0 { 0 } else { promo * 1_000_000 / total };
    QueryResult::new(&["promo_revenue"], vec![vec![Value::dec4(digits)]], &[], None)
}

pub fn ssb1_1(db: &Database, p: &SsbQ11Params) -> QueryResult {
    let d = db.table("date");
    let days: HashSet<i32> = (0..d.len())
        .filter(|&i| d.col("d_year").i32s()[i] == p.year)
        .map(|i| d.col("d_datekey").i32s()[i])
        .collect();
    let lo = db.table("lineorder");
    let mut revenue = 0i64;
    for i in 0..lo.len() {
        let disc = lo.col("lo_discount").i64s()[i];
        if (p.disc_lo..=p.disc_hi).contains(&disc)
            && lo.col("lo_quantity").i64s()[i] < p.qty_hi
            && days.contains(&lo.col("lo_orderdate").i32s()[i])
        {
            revenue += lo.col("lo_extendedprice").i64s()[i] * disc;
        }
    }
    QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None)
}

pub fn ssb2_1(db: &Database, p: &SsbQ21Params) -> QueryResult {
    let part = db.table("ssb_part");
    let brand_of: HashMap<i32, i32> = (0..part.len())
        .filter(|&i| part.col("p_category").i32s()[i] == p.category)
        .map(|i| (part.col("p_partkey").i32s()[i], part.col("p_brand1").i32s()[i]))
        .collect();
    let s = db.table("ssb_supplier");
    let supp_ok: HashSet<i32> = (0..s.len())
        .filter(|&i| s.col("s_region").i32s()[i] == p.region)
        .map(|i| s.col("s_suppkey").i32s()[i])
        .collect();
    let d = db.table("date");
    let year: HashMap<i32, i32> = (0..d.len())
        .map(|i| (d.col("d_datekey").i32s()[i], d.col("d_year").i32s()[i]))
        .collect();
    let lo = db.table("lineorder");
    let mut groups: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..lo.len() {
        let Some(&brand) = brand_of.get(&lo.col("lo_partkey").i32s()[i]) else {
            continue;
        };
        if !supp_ok.contains(&lo.col("lo_suppkey").i32s()[i]) {
            continue;
        }
        let y = year[&lo.col("lo_orderdate").i32s()[i]];
        *groups.entry((y, brand)).or_default() += lo.col("lo_revenue").i64s()[i];
    }
    let rows = groups
        .into_iter()
        .map(|((y, b), rev)| {
            vec![
                Value::dec2(rev),
                Value::I32(y),
                Value::Str(dbep_datagen::ssb::brand_name(b)),
            ]
        })
        .collect();
    QueryResult::new(
        &["sum_revenue", "d_year", "p_brand1"],
        rows,
        &[OrderBy::asc(1), OrderBy::asc(2)],
        None,
    )
}

pub fn ssb3_1(db: &Database, p: &SsbQ31Params) -> QueryResult {
    let s = db.table("ssb_supplier");
    let supp_nation: HashMap<i32, i32> = (0..s.len())
        .filter(|&i| s.col("s_region").i32s()[i] == p.supp_region)
        .map(|i| (s.col("s_suppkey").i32s()[i], s.col("s_nation").i32s()[i]))
        .collect();
    let c = db.table("ssb_customer");
    let cust_nation: HashMap<i32, i32> = (0..c.len())
        .filter(|&i| c.col("c_region").i32s()[i] == p.cust_region)
        .map(|i| (c.col("c_custkey").i32s()[i], c.col("c_nation").i32s()[i]))
        .collect();
    let d = db.table("date");
    let year: HashMap<i32, i32> = (0..d.len())
        .map(|i| (d.col("d_datekey").i32s()[i], d.col("d_year").i32s()[i]))
        .collect();
    let lo = db.table("lineorder");
    let mut groups: HashMap<(i32, i32, i32), i64> = HashMap::new();
    for i in 0..lo.len() {
        let Some(&cn) = cust_nation.get(&lo.col("lo_custkey").i32s()[i]) else {
            continue;
        };
        let Some(&sn) = supp_nation.get(&lo.col("lo_suppkey").i32s()[i]) else {
            continue;
        };
        let y = year[&lo.col("lo_orderdate").i32s()[i]];
        if !(p.year_lo..=p.year_hi).contains(&y) {
            continue;
        }
        *groups.entry((cn, sn, y)).or_default() += lo.col("lo_revenue").i64s()[i];
    }
    let rows = groups
        .into_iter()
        .map(|((cn, sn, y), rev)| {
            vec![
                Value::Str(dbep_datagen::ssb::NATIONS[cn as usize].0.to_string()),
                Value::Str(dbep_datagen::ssb::NATIONS[sn as usize].0.to_string()),
                Value::I32(y),
                Value::dec2(rev),
            ]
        })
        .collect();
    QueryResult::new(
        &["c_nation", "s_nation", "d_year", "revenue"],
        rows,
        &[OrderBy::asc(2), OrderBy::desc(3)],
        None,
    )
}

pub fn ssb4_1(db: &Database, p: &SsbQ41Params) -> QueryResult {
    let c = db.table("ssb_customer");
    let cust_nation: HashMap<i32, i32> = (0..c.len())
        .filter(|&i| c.col("c_region").i32s()[i] == p.cust_region)
        .map(|i| (c.col("c_custkey").i32s()[i], c.col("c_nation").i32s()[i]))
        .collect();
    let s = db.table("ssb_supplier");
    let supp_ok: HashSet<i32> = (0..s.len())
        .filter(|&i| s.col("s_region").i32s()[i] == p.supp_region)
        .map(|i| s.col("s_suppkey").i32s()[i])
        .collect();
    let part = db.table("ssb_part");
    let part_ok: HashSet<i32> = (0..part.len())
        .filter(|&i| p.mfgrs.contains(&part.col("p_mfgr").i32s()[i]))
        .map(|i| part.col("p_partkey").i32s()[i])
        .collect();
    let d = db.table("date");
    let year: HashMap<i32, i32> = (0..d.len())
        .map(|i| (d.col("d_datekey").i32s()[i], d.col("d_year").i32s()[i]))
        .collect();
    let lo = db.table("lineorder");
    let mut groups: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..lo.len() {
        let Some(&cn) = cust_nation.get(&lo.col("lo_custkey").i32s()[i]) else {
            continue;
        };
        if !supp_ok.contains(&lo.col("lo_suppkey").i32s()[i]) {
            continue;
        }
        if !part_ok.contains(&lo.col("lo_partkey").i32s()[i]) {
            continue;
        }
        let y = year[&lo.col("lo_orderdate").i32s()[i]];
        *groups.entry((y, cn)).or_default() +=
            lo.col("lo_revenue").i64s()[i] - lo.col("lo_supplycost").i64s()[i];
    }
    let rows = groups
        .into_iter()
        .map(|((y, cn), v)| {
            vec![
                Value::I32(y),
                Value::Str(dbep_datagen::ssb::NATIONS[cn as usize].0.to_string()),
                Value::dec2(v),
            ]
        })
        .collect();
    QueryResult::new(
        &["d_year", "c_nation", "profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    )
}
