//! Oracle tests: every query is recomputed by an *independent* naive
//! implementation (plain nested loops + std HashMaps over the raw
//! columns, following the SQL text — see `common/mod.rs`) and compared
//! against all three engines under the paper's default parameters. This
//! catches semantic errors the engines could share, since they reuse
//! plans and substrates. The `param_sweep` suite runs the same oracles
//! over randomized parameter bindings.

mod common;

use dbep_queries::params::Params;
use dbep_queries::result::{QueryResult, Value};
use dbep_queries::{run, Engine, ExecCfg, QueryId};
use dbep_storage::Database;

fn tpch() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::tpch::generate(0.02, 7))
}

fn ssb() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::ssb::generate(0.02, 7))
}

/// Engines must match the naive recomputation under default parameters.
fn check(q: QueryId, db: &Database) -> QueryResult {
    let oracle = common::oracle(q, db, &Params::default_for(q));
    for engine in Engine::ALL {
        let got = run(engine, q, db, &ExecCfg::default());
        assert_eq!(got, oracle, "{} on {engine:?} deviates from the oracle", q.name());
    }
    oracle
}

#[test]
fn q6_oracle() {
    check(QueryId::Q6, tpch());
}

#[test]
fn q1_oracle() {
    check(QueryId::Q1, tpch());
}

#[test]
fn q3_oracle() {
    check(QueryId::Q3, tpch());
}

#[test]
fn q9_oracle() {
    check(QueryId::Q9, tpch());
}

#[test]
fn q18_oracle() {
    let oracle = check(QueryId::Q18, tpch());
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q18 orders");
}

#[test]
fn q4_oracle() {
    let oracle = check(QueryId::Q4, tpch());
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q4 orders");
}

#[test]
fn q12_oracle() {
    let oracle = check(QueryId::Q12, tpch());
    assert!(
        !oracle.is_empty(),
        "test DB must contain qualifying Q12 lineitems"
    );
}

#[test]
fn q14_oracle() {
    let oracle = check(QueryId::Q14, tpch());
    assert_ne!(
        oracle.rows[0][0],
        Value::dec4(0),
        "test DB must contain Q14 window lineitems"
    );
}

#[test]
fn ssb_q1_1_oracle() {
    check(QueryId::Ssb1_1, ssb());
}

#[test]
fn ssb_q2_1_oracle() {
    let oracle = check(QueryId::Ssb2_1, ssb());
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q2.1 groups");
}

#[test]
fn ssb_q3_1_oracle() {
    let oracle = check(QueryId::Ssb3_1, ssb());
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q3.1 groups");
}

#[test]
fn ssb_q4_1_oracle() {
    check(QueryId::Ssb4_1, ssb());
}

#[test]
fn ssb_q2_1_and_q3_1_group_counts_are_plausible() {
    // The full oracles above cover the join/aggregate machinery; keep
    // the structural invariants too: group-key ranges and ordering.
    let db = ssb();
    let q2 = run(Engine::Typer, QueryId::Ssb2_1, db, &ExecCfg::default());
    for row in &q2.rows {
        let year = match row[1] {
            Value::I32(y) => y,
            _ => panic!("year column"),
        };
        assert!((1992..=1998).contains(&year));
        assert!(
            row[2].to_string().starts_with("MFGR#12"),
            "brand outside category: {}",
            row[2]
        );
    }
    let q3 = run(Engine::Typer, QueryId::Ssb3_1, db, &ExecCfg::default());
    // ORDER BY d_year ASC must hold.
    let years: Vec<i32> = q3
        .rows
        .iter()
        .map(|r| match r[2] {
            Value::I32(y) => y,
            _ => panic!("year column"),
        })
        .collect();
    assert!(years.windows(2).all(|w| w[0] <= w[1]), "q3.1 not ordered by year");
    assert!(years.iter().all(|y| (1992..=1997).contains(y)));
}
