//! Oracle tests: every query is recomputed by an *independent* naive
//! implementation (plain nested loops + std HashMaps over the raw
//! columns, following the SQL text) and compared against all three
//! engines. This catches semantic errors the engines could share,
//! since they reuse plans and substrates.

use dbep_queries::result::{avg_i64, OrderBy, QueryResult, Value};
use dbep_queries::{run, Engine, ExecCfg, QueryId};
use dbep_storage::types::{date, year_of};
use dbep_storage::Database;
use std::collections::HashMap;

fn tpch() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::tpch::generate(0.02, 7))
}

fn ssb() -> &'static Database {
    static DB: std::sync::OnceLock<Database> = std::sync::OnceLock::new();
    DB.get_or_init(|| dbep_datagen::ssb::generate(0.02, 7))
}

fn check(q: QueryId, db: &Database, oracle: QueryResult) {
    for engine in [Engine::Typer, Engine::Tectorwise, Engine::Volcano] {
        let got = run(engine, q, db, &ExecCfg::default());
        assert_eq!(got, oracle, "{} on {engine:?} deviates from the oracle", q.name());
    }
}

#[test]
fn q6_oracle() {
    let db = tpch();
    let li = db.table("lineitem");
    let ship = li.col("l_shipdate").dates();
    let disc = li.col("l_discount").i64s();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let mut revenue = 0i64;
    for i in 0..li.len() {
        if ship[i] >= date(1994, 1, 1)
            && ship[i] < date(1995, 1, 1)
            && disc[i] >= 5
            && disc[i] <= 7
            && qty[i] < 2400
        {
            revenue += ext[i] * disc[i];
        }
    }
    let oracle = QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None);
    check(QueryId::Q6, db, oracle);
}

#[test]
fn q1_oracle() {
    let db = tpch();
    let li = db.table("lineitem");
    let ship = li.col("l_shipdate").dates();
    let qty = li.col("l_quantity").i64s();
    let ext = li.col("l_extendedprice").i64s();
    let disc = li.col("l_discount").i64s();
    let tax = li.col("l_tax").i64s();
    let rf = li.col("l_returnflag").chars();
    let ls = li.col("l_linestatus").chars();
    // (sum_qty, sum_base, sum_dp, sum_charge, sum_disc, count)
    type Q1Sums = (i64, i64, i64, i128, i64, i64);
    let mut groups: HashMap<(u8, u8), Q1Sums> = HashMap::new();
    for i in 0..li.len() {
        if ship[i] <= date(1998, 9, 2) {
            let e = groups.entry((rf[i], ls[i])).or_default();
            let dp = ext[i] * (100 - disc[i]);
            e.0 += qty[i];
            e.1 += ext[i];
            e.2 += dp;
            e.3 += dp as i128 * (100 + tax[i]) as i128;
            e.4 += disc[i];
            e.5 += 1;
        }
    }
    let rows = groups
        .into_iter()
        .map(|((f, s), (q, b, dp, ch, d, c))| {
            vec![
                Value::Str((f as char).to_string()),
                Value::Str((s as char).to_string()),
                Value::dec2(q),
                Value::dec2(b),
                Value::dec4(dp as i128),
                Value::dec6(ch),
                Value::dec2(avg_i64(q, c)),
                Value::dec2(avg_i64(b, c)),
                Value::dec2(avg_i64(d, c)),
                Value::I64(c),
            ]
        })
        .collect();
    let oracle = QueryResult::new(
        &[
            "l_returnflag",
            "l_linestatus",
            "sum_qty",
            "sum_base_price",
            "sum_disc_price",
            "sum_charge",
            "avg_qty",
            "avg_price",
            "avg_disc",
            "count_order",
        ],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    );
    check(QueryId::Q1, db, oracle);
}

#[test]
fn q3_oracle() {
    let db = tpch();
    let cut = date(1995, 3, 15);
    let cust = db.table("customer");
    let building: std::collections::HashSet<i32> = (0..cust.len())
        .filter(|&i| cust.col("c_mktsegment").strs().get(i) == "BUILDING")
        .map(|i| cust.col("c_custkey").i32s()[i])
        .collect();
    let ord = db.table("orders");
    let mut order_info: HashMap<i32, (i32, i32)> = HashMap::new();
    for i in 0..ord.len() {
        let odate = ord.col("o_orderdate").dates()[i];
        if odate < cut && building.contains(&ord.col("o_custkey").i32s()[i]) {
            order_info.insert(
                ord.col("o_orderkey").i32s()[i],
                (odate, ord.col("o_shippriority").i32s()[i]),
            );
        }
    }
    let li = db.table("lineitem");
    let mut groups: HashMap<(i32, i32, i32), i64> = HashMap::new();
    for i in 0..li.len() {
        if li.col("l_shipdate").dates()[i] > cut {
            let k = li.col("l_orderkey").i32s()[i];
            if let Some(&(odate, prio)) = order_info.get(&k) {
                *groups.entry((k, odate, prio)).or_default() +=
                    li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i]);
            }
        }
    }
    let rows = groups
        .into_iter()
        .map(|((k, d, p), rev)| {
            vec![
                Value::I32(k),
                Value::dec4(rev as i128),
                Value::Date(d),
                Value::I32(p),
            ]
        })
        .collect();
    let oracle = QueryResult::new(
        &["l_orderkey", "revenue", "o_orderdate", "o_shippriority"],
        rows,
        &[OrderBy::desc(1), OrderBy::asc(2)],
        Some(10),
    );
    check(QueryId::Q3, db, oracle);
}

#[test]
fn q9_oracle() {
    let db = tpch();
    let part = db.table("part");
    let green: std::collections::HashSet<i32> = (0..part.len())
        .filter(|&i| part.col("p_name").strs().get(i).contains("green"))
        .map(|i| part.col("p_partkey").i32s()[i])
        .collect();
    let ps = db.table("partsupp");
    let mut cost: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..ps.len() {
        cost.insert(
            (ps.col("ps_partkey").i32s()[i], ps.col("ps_suppkey").i32s()[i]),
            ps.col("ps_supplycost").i64s()[i],
        );
    }
    let supp = db.table("supplier");
    let nation_of: HashMap<i32, i32> = (0..supp.len())
        .map(|i| (supp.col("s_suppkey").i32s()[i], supp.col("s_nationkey").i32s()[i]))
        .collect();
    let ord = db.table("orders");
    let year_of_order: HashMap<i32, i32> = (0..ord.len())
        .map(|i| {
            (
                ord.col("o_orderkey").i32s()[i],
                year_of(ord.col("o_orderdate").dates()[i]),
            )
        })
        .collect();
    let li = db.table("lineitem");
    let mut groups: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..li.len() {
        let pk = li.col("l_partkey").i32s()[i];
        if !green.contains(&pk) {
            continue;
        }
        let sk = li.col("l_suppkey").i32s()[i];
        let amount = li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i])
            - cost[&(pk, sk)] * li.col("l_quantity").i64s()[i];
        let key = (nation_of[&sk], year_of_order[&li.col("l_orderkey").i32s()[i]]);
        *groups.entry(key).or_default() += amount;
    }
    let names = db.table("nation").col("n_name").strs();
    let rows = groups
        .into_iter()
        .map(|((n, y), a)| {
            vec![
                Value::Str(names.get(n as usize).to_string()),
                Value::I32(y),
                Value::dec4(a as i128),
            ]
        })
        .collect();
    let oracle = QueryResult::new(
        &["nation", "o_year", "sum_profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::desc(1)],
        None,
    );
    check(QueryId::Q9, db, oracle);
}

#[test]
fn q18_oracle() {
    let db = tpch();
    let li = db.table("lineitem");
    let mut qty_by_order: HashMap<i32, i64> = HashMap::new();
    for i in 0..li.len() {
        *qty_by_order.entry(li.col("l_orderkey").i32s()[i]).or_default() += li.col("l_quantity").i64s()[i];
    }
    let cust = db.table("customer");
    let cust_name: HashMap<i32, String> = (0..cust.len())
        .map(|i| {
            (
                cust.col("c_custkey").i32s()[i],
                cust.col("c_name").strs().get(i).to_string(),
            )
        })
        .collect();
    let ord = db.table("orders");
    let mut rows = Vec::new();
    for i in 0..ord.len() {
        let ok = ord.col("o_orderkey").i32s()[i];
        if let Some(&q) = qty_by_order.get(&ok) {
            if q > 300 * 100 {
                let ck = ord.col("o_custkey").i32s()[i];
                rows.push(vec![
                    Value::Str(cust_name[&ck].clone()),
                    Value::I32(ck),
                    Value::I32(ok),
                    Value::Date(ord.col("o_orderdate").dates()[i]),
                    Value::dec2(ord.col("o_totalprice").i64s()[i]),
                    Value::dec2(q),
                ]);
            }
        }
    }
    let oracle = QueryResult::new(
        &[
            "c_name",
            "c_custkey",
            "o_orderkey",
            "o_orderdate",
            "o_totalprice",
            "sum_qty",
        ],
        rows,
        &[OrderBy::desc(4), OrderBy::asc(3)],
        Some(100),
    );
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q18 orders");
    check(QueryId::Q18, db, oracle);
}

#[test]
fn q4_oracle() {
    let db = tpch();
    let li = db.table("lineitem");
    let mut late: std::collections::HashSet<i32> = std::collections::HashSet::new();
    for i in 0..li.len() {
        if li.col("l_commitdate").dates()[i] < li.col("l_receiptdate").dates()[i] {
            late.insert(li.col("l_orderkey").i32s()[i]);
        }
    }
    let ord = db.table("orders");
    let mut groups: HashMap<String, i64> = HashMap::new();
    for i in 0..ord.len() {
        let d = ord.col("o_orderdate").dates()[i];
        if d >= date(1993, 7, 1) && d < date(1993, 10, 1) && late.contains(&ord.col("o_orderkey").i32s()[i]) {
            *groups
                .entry(ord.col("o_orderpriority").strs().get(i).to_string())
                .or_default() += 1;
        }
    }
    let rows = groups
        .into_iter()
        .map(|(p, n)| vec![Value::Str(p), Value::I64(n)])
        .collect();
    let oracle = QueryResult::new(
        &["o_orderpriority", "order_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    );
    assert!(!oracle.is_empty(), "test DB must contain qualifying Q4 orders");
    check(QueryId::Q4, db, oracle);
}

#[test]
fn q12_oracle() {
    let db = tpch();
    let ord = db.table("orders");
    let mut high_of: HashMap<i32, bool> = HashMap::new();
    for i in 0..ord.len() {
        let p = ord.col("o_orderpriority").strs().get(i);
        high_of.insert(ord.col("o_orderkey").i32s()[i], p == "1-URGENT" || p == "2-HIGH");
    }
    let li = db.table("lineitem");
    let mut groups: HashMap<String, (i64, i64)> = HashMap::new();
    for i in 0..li.len() {
        let mode = li.col("l_shipmode").strs().get(i);
        if mode != "MAIL" && mode != "SHIP" {
            continue;
        }
        let ship = li.col("l_shipdate").dates()[i];
        let commit = li.col("l_commitdate").dates()[i];
        let receipt = li.col("l_receiptdate").dates()[i];
        if commit < receipt && ship < commit && receipt >= date(1994, 1, 1) && receipt < date(1995, 1, 1) {
            let e = groups.entry(mode.to_string()).or_default();
            if high_of[&li.col("l_orderkey").i32s()[i]] {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    let rows = groups
        .into_iter()
        .map(|(m, (h, l))| vec![Value::Str(m), Value::I64(h), Value::I64(l)])
        .collect();
    let oracle = QueryResult::new(
        &["l_shipmode", "high_line_count", "low_line_count"],
        rows,
        &[OrderBy::asc(0)],
        None,
    );
    assert!(
        !oracle.is_empty(),
        "test DB must contain qualifying Q12 lineitems"
    );
    check(QueryId::Q12, db, oracle);
}

#[test]
fn q14_oracle() {
    let db = tpch();
    let part = db.table("part");
    let mut promo_of: HashMap<i32, bool> = HashMap::new();
    for i in 0..part.len() {
        promo_of.insert(
            part.col("p_partkey").i32s()[i],
            part.col("p_type").strs().get(i).starts_with("PROMO"),
        );
    }
    let li = db.table("lineitem");
    let (mut promo, mut total) = (0i128, 0i128);
    for i in 0..li.len() {
        let ship = li.col("l_shipdate").dates()[i];
        if ship >= date(1995, 9, 1) && ship < date(1995, 10, 1) {
            let rev = (li.col("l_extendedprice").i64s()[i] * (100 - li.col("l_discount").i64s()[i])) as i128;
            if promo_of[&li.col("l_partkey").i32s()[i]] {
                promo += rev;
            }
            total += rev;
        }
    }
    assert!(total > 0, "test DB must contain Q14 window lineitems");
    let oracle = QueryResult::new(
        &["promo_revenue"],
        vec![vec![Value::dec4(promo * 1_000_000 / total)]],
        &[],
        None,
    );
    check(QueryId::Q14, db, oracle);
}

#[test]
fn ssb_q1_1_oracle() {
    let db = ssb();
    let d = db.table("date");
    let days_1993: std::collections::HashSet<i32> = (0..d.len())
        .filter(|&i| d.col("d_year").i32s()[i] == 1993)
        .map(|i| d.col("d_datekey").i32s()[i])
        .collect();
    let lo = db.table("lineorder");
    let mut revenue = 0i64;
    for i in 0..lo.len() {
        let disc = lo.col("lo_discount").i64s()[i];
        if (1..=3).contains(&disc)
            && lo.col("lo_quantity").i64s()[i] < 2500
            && days_1993.contains(&lo.col("lo_orderdate").i32s()[i])
        {
            revenue += lo.col("lo_extendedprice").i64s()[i] * disc;
        }
    }
    let oracle = QueryResult::new(&["revenue"], vec![vec![Value::dec4(revenue as i128)]], &[], None);
    check(QueryId::Ssb1_1, db, oracle);
}

#[test]
fn ssb_q4_1_oracle() {
    let db = ssb();
    let america = dbep_datagen::ssb::region_code("AMERICA");
    let c = db.table("ssb_customer");
    let cust_nation: HashMap<i32, i32> = (0..c.len())
        .filter(|&i| c.col("c_region").i32s()[i] == america)
        .map(|i| (c.col("c_custkey").i32s()[i], c.col("c_nation").i32s()[i]))
        .collect();
    let s = db.table("ssb_supplier");
    let supp_ok: std::collections::HashSet<i32> = (0..s.len())
        .filter(|&i| s.col("s_region").i32s()[i] == america)
        .map(|i| s.col("s_suppkey").i32s()[i])
        .collect();
    let p = db.table("ssb_part");
    let part_ok: std::collections::HashSet<i32> = (0..p.len())
        .filter(|&i| p.col("p_mfgr").i32s()[i] <= 2)
        .map(|i| p.col("p_partkey").i32s()[i])
        .collect();
    let d = db.table("date");
    let year: HashMap<i32, i32> = (0..d.len())
        .map(|i| (d.col("d_datekey").i32s()[i], d.col("d_year").i32s()[i]))
        .collect();
    let lo = db.table("lineorder");
    let mut groups: HashMap<(i32, i32), i64> = HashMap::new();
    for i in 0..lo.len() {
        let Some(&cn) = cust_nation.get(&lo.col("lo_custkey").i32s()[i]) else {
            continue;
        };
        if !supp_ok.contains(&lo.col("lo_suppkey").i32s()[i]) {
            continue;
        }
        if !part_ok.contains(&lo.col("lo_partkey").i32s()[i]) {
            continue;
        }
        let y = year[&lo.col("lo_orderdate").i32s()[i]];
        *groups.entry((y, cn)).or_default() +=
            lo.col("lo_revenue").i64s()[i] - lo.col("lo_supplycost").i64s()[i];
    }
    let rows = groups
        .into_iter()
        .map(|((y, cn), v)| {
            vec![
                Value::I32(y),
                Value::Str(dbep_datagen::ssb::NATIONS[cn as usize].0.to_string()),
                Value::dec2(v),
            ]
        })
        .collect();
    let oracle = QueryResult::new(
        &["d_year", "c_nation", "profit"],
        rows,
        &[OrderBy::asc(0), OrderBy::asc(1)],
        None,
    );
    check(QueryId::Ssb4_1, db, oracle);
}

#[test]
fn ssb_q2_1_and_q3_1_group_counts_are_plausible() {
    // Full oracles above cover the join/aggregate machinery; for the two
    // remaining flights check structural invariants: group-key ranges
    // and totals consistent between engines and a direct scan.
    let db = ssb();
    let q2 = run(Engine::Typer, QueryId::Ssb2_1, db, &ExecCfg::default());
    for row in &q2.rows {
        let year = match row[1] {
            Value::I32(y) => y,
            _ => panic!("year column"),
        };
        assert!((1992..=1998).contains(&year));
        assert!(
            row[2].to_string().starts_with("MFGR#12"),
            "brand outside category: {}",
            row[2]
        );
    }
    let q3 = run(Engine::Typer, QueryId::Ssb3_1, db, &ExecCfg::default());
    // ORDER BY d_year ASC must hold.
    let years: Vec<i32> = q3
        .rows
        .iter()
        .map(|r| match r[2] {
            Value::I32(y) => y,
            _ => panic!("year column"),
        })
        .collect();
    assert!(years.windows(2).all(|w| w[0] <= w[1]), "q3.1 not ordered by year");
    assert!(years.iter().all(|y| (1992..=1997).contains(y)));
}
