//! Parameterized equivalence sweep: randomized-but-valid substitution
//! parameters drawn from the seeded PRNG, checked across **all 36
//! (engine, query) pairs** against the parameterized naive oracles.
//!
//! A fixed workload instance can hide constant-folding bugs (a filter
//! accidentally compiled against the paper's constant still passes every
//! fixed-instance test); sweeping the binding space cannot.

mod common;

use dbep_queries::params::*;
use dbep_queries::{run_with, Engine, ExecCfg, QueryId};
use dbep_runtime::rng::SmallRng;
use dbep_storage::types::date;
use dbep_storage::Database;

/// Non-default draws per query; with the three engines each, every
/// query contributes 9 randomized (engine, binding) checks.
const DRAWS: usize = 3;

fn pick<'a>(rng: &mut SmallRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Draw a valid parameter binding from the benchmark's substitution
/// domain (validating constructors reject anything outside it).
fn draw(q: QueryId, rng: &mut SmallRng) -> Params {
    use dbep_datagen::ssb::REGIONS;
    use dbep_datagen::tpch::{COLORS, SEGMENTS, SHIPMODES};
    match q {
        QueryId::Q1 => Q1Params::new(rng.gen_range(60..=120)).unwrap().into(),
        QueryId::Q6 => Q6Params::new(
            rng.gen_range(1993..=1997),
            rng.gen_range(2..=9),
            rng.gen_range(20..=30),
        )
        .unwrap()
        .into(),
        QueryId::Q3 => Q3Params::new(pick(rng, SEGMENTS), date(1995, 3, 1) + rng.gen_range(0..31))
            .unwrap()
            .into(),
        QueryId::Q9 => Q9Params::new(pick(rng, COLORS)).unwrap().into(),
        QueryId::Q18 => Q18Params::new(rng.gen_range(250..=330)).unwrap().into(),
        QueryId::Q4 => Q4Params::new(rng.gen_range(1993..=1997), rng.gen_range(1..=4))
            .unwrap()
            .into(),
        QueryId::Q12 => {
            let a = rng.gen_range(0..SHIPMODES.len());
            let b = (a + rng.gen_range(1..SHIPMODES.len())) % SHIPMODES.len();
            Q12Params::new(SHIPMODES[a], SHIPMODES[b], rng.gen_range(1993..=1997))
                .unwrap()
                .into()
        }
        QueryId::Q14 => Q14Params::new(rng.gen_range(1993..=1997), rng.gen_range(1..=12))
            .unwrap()
            .into(),
        QueryId::Ssb1_1 => {
            let lo = rng.gen_range(0i64..=8);
            SsbQ11Params::new(
                rng.gen_range(1992..=1998),
                lo,
                lo + rng.gen_range(0i64..=2),
                rng.gen_range(20..=40),
            )
            .unwrap()
            .into()
        }
        QueryId::Ssb2_1 => {
            let category = format!("MFGR#{}{}", rng.gen_range(1..=5), rng.gen_range(1..=5));
            SsbQ21Params::new(&category, pick(rng, REGIONS)).unwrap().into()
        }
        QueryId::Ssb3_1 => {
            let lo = rng.gen_range(1992..=1997);
            SsbQ31Params::new(
                pick(rng, REGIONS),
                pick(rng, REGIONS),
                lo,
                rng.gen_range(lo..=1998),
            )
            .unwrap()
            .into()
        }
        QueryId::Ssb4_1 => {
            let a = rng.gen_range(1..=5);
            let b = (a + rng.gen_range(1..=4) - 1) % 5 + 1;
            SsbQ41Params::new(pick(rng, REGIONS), pick(rng, REGIONS), a, b)
                .unwrap()
                .into()
        }
    }
}

#[test]
fn randomized_params_agree_with_oracles_on_all_36_pairs() {
    let tpch = dbep_datagen::tpch::generate(0.01, 7);
    let ssb = dbep_datagen::ssb::generate(0.01, 7);
    let cfg = ExecCfg::default();
    let mut rng = SmallRng::seed_from_u64(0xB1DD);
    let mut nonempty = 0usize;
    for q in QueryId::ALL {
        let db: &Database = if QueryId::SSB.contains(&q) { &ssb } else { &tpch };
        let mut done = 0;
        while done < DRAWS {
            let params = draw(q, &mut rng);
            if params == Params::default_for(q) {
                continue; // the sweep must exercise non-paper instances
            }
            let oracle = common::oracle(q, db, &params);
            nonempty += !oracle.is_empty() as usize;
            for engine in Engine::ALL {
                let got = run_with(engine, q, db, &cfg, &params);
                assert_eq!(
                    got,
                    oracle,
                    "{} on {engine:?} deviates from the oracle under {params:?}",
                    q.name()
                );
            }
            done += 1;
        }
    }
    // The sweep is vacuous if every random instance selects nothing.
    assert!(
        nonempty >= QueryId::ALL.len() * DRAWS / 2,
        "only {nonempty} non-empty oracle results — draws too selective"
    );
}

/// The randomized sweep repeated over compressed storage: fused
/// decompress-and-select scans must agree with the naive oracles under
/// arbitrary valid bindings, for every engine and every `SimdPolicy`.
/// (Constant-folding against a packed column's frame of reference is
/// exactly the class of bug only a non-default binding can expose.)
#[test]
fn randomized_params_agree_with_oracles_on_encoded_storage() {
    use dbep_vectorized::SimdPolicy;
    let tpch = dbep_datagen::tpch::generate_encoded(0.01, 7);
    let ssb = dbep_datagen::ssb::generate_encoded(0.01, 7);
    let mut rng = SmallRng::seed_from_u64(0xEC0D);
    for q in QueryId::ALL {
        let db: &Database = if QueryId::SSB.contains(&q) { &ssb } else { &tpch };
        let mut done = 0;
        while done < DRAWS {
            let params = draw(q, &mut rng);
            if params == Params::default_for(q) {
                continue;
            }
            let oracle = common::oracle(q, db, &params);
            for engine in Engine::ALL {
                for policy in [SimdPolicy::Scalar, SimdPolicy::Simd, SimdPolicy::Auto] {
                    let cfg = ExecCfg {
                        policy,
                        ..Default::default()
                    };
                    let got = run_with(engine, q, db, &cfg, &params);
                    assert_eq!(
                        got,
                        oracle,
                        "{} on encoded storage, {engine:?}/{policy:?}, deviates under {params:?}",
                        q.name()
                    );
                }
            }
            done += 1;
        }
    }
}

/// Binding draws must be reproducible: the sweep is seeded, so a failure
/// message's `params` can be turned into a fixed regression test.
#[test]
fn draws_are_deterministic() {
    for q in QueryId::ALL {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        assert_eq!(draw(q, &mut a), draw(q, &mut b), "{}", q.name());
    }
}
