//! Aggregation hash table and the two-phase parallel group-by (§3.2).
//!
//! "The group by operator is split into two phases for cache friendly
//! parallelization. A pre-aggregation handles heavy hitters and spills
//! groups into partitions. Afterwards, a final step aggregates the groups
//! in each partition."
//!
//! * [`AggHt`] — single-writer chaining table (index-linked, no atomics)
//!   used for each thread's pre-aggregation and for each final partition.
//! * [`GroupByShard`] — a bounded pre-aggregation table plus
//!   [`PARTITION_COUNT`] spill buffers keyed by hash radix.
//! * [`merge_partitions`] — the final phase: each partition is merged by
//!   exactly one worker, so no synchronization on group state is needed.

/// Number of spill partitions. 64 keeps every partition's final table
/// well inside L2 for the paper's workloads while giving 64-way final
/// parallelism.
pub const PARTITION_COUNT: usize = 64;

/// Radix partition of a hash. Uses bits 56..62, disjoint from the
/// directory slot bits (low) of any reasonably sized table.
#[inline]
pub fn partition_of(hash: u64) -> usize {
    ((hash >> 56) & (PARTITION_COUNT as u64 - 1)) as usize
}

struct AggEntry<K, A> {
    hash: u64,
    /// Index+1 of the next chain entry; 0 terminates.
    next: u32,
    key: K,
    agg: A,
}

/// Single-writer chaining aggregation hash table.
///
/// Entries are identified by dense `u32` indices, which the vectorized
/// engine uses as its "group pointers" (gather/scatter targets).
pub struct AggHt<K, A> {
    dir: Vec<u32>,
    mask: u64,
    entries: Vec<AggEntry<K, A>>,
}

impl<K: PartialEq, A> AggHt<K, A> {
    /// Table expecting roughly `groups` distinct keys (it grows if
    /// exceeded).
    pub fn with_capacity(groups: usize) -> Self {
        let dir_size = (groups.max(8) * 2).next_power_of_two();
        AggHt {
            dir: vec![0; dir_size],
            mask: (dir_size - 1) as u64,
            entries: Vec::with_capacity(groups),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the group for `(hash, key)`, if present.
    #[inline]
    pub fn find(&self, hash: u64, key: &K) -> Option<u32> {
        let mut idx = self.dir[(hash & self.mask) as usize];
        while idx != 0 {
            let e = &self.entries[idx as usize - 1];
            if e.hash == hash && e.key == *key {
                return Some(idx - 1);
            }
            idx = e.next;
        }
        None
    }

    /// Insert a group known to be absent; returns its index.
    pub fn insert_new(&mut self, hash: u64, key: K, agg: A) -> u32 {
        if self.entries.len() + 1 > self.dir.len() / 2 {
            self.grow();
        }
        let slot = (hash & self.mask) as usize;
        let idx = self.entries.len() as u32 + 1;
        self.entries.push(AggEntry {
            hash,
            next: self.dir[slot],
            key,
            agg,
        });
        self.dir[slot] = idx;
        idx - 1
    }

    fn grow(&mut self) {
        let new_size = self.dir.len() * 2;
        self.dir.clear();
        self.dir.resize(new_size, 0);
        self.mask = (new_size - 1) as u64;
        for (i, e) in self.entries.iter_mut().enumerate() {
            let slot = (e.hash & self.mask) as usize;
            e.next = self.dir[slot];
            self.dir[slot] = i as u32 + 1;
        }
    }

    /// Find-or-insert, folding one row into the group's aggregate.
    #[inline]
    pub fn update(&mut self, hash: u64, key: K, init: impl FnOnce() -> A, fold: impl FnOnce(&mut A)) {
        match self.find(hash, &key) {
            Some(idx) => fold(&mut self.entries[idx as usize].agg),
            None => {
                let mut agg = init();
                fold(&mut agg);
                self.insert_new(hash, key, agg);
            }
        }
    }

    #[inline]
    pub fn agg_mut(&mut self, idx: u32) -> &mut A {
        &mut self.entries[idx as usize].agg
    }

    #[inline]
    pub fn key(&self, idx: u32) -> &K {
        &self.entries[idx as usize].key
    }

    // --- raw chain access for the vectorized engine's primitives ---

    /// Head of the bucket chain for `hash` (index+1; 0 = empty).
    #[inline]
    pub fn head(&self, hash: u64) -> u32 {
        self.dir[(hash & self.mask) as usize]
    }

    /// Stored hash of chain node `idx_plus_1`.
    #[inline]
    pub fn node_hash(&self, idx_plus_1: u32) -> u64 {
        self.entries[idx_plus_1 as usize - 1].hash
    }

    /// Next chain node after `idx_plus_1` (index+1; 0 = end).
    #[inline]
    pub fn node_next(&self, idx_plus_1: u32) -> u32 {
        self.entries[idx_plus_1 as usize - 1].next
    }

    /// Consume the table, yielding `(hash, key, aggregate)` per group.
    pub fn drain(self) -> impl Iterator<Item = (u64, K, A)> {
        self.entries.into_iter().map(|e| (e.hash, e.key, e.agg))
    }

    /// Iterate `(key, aggregate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &A)> + '_ {
        self.entries.iter().map(|e| (&e.key, &e.agg))
    }
}

/// One worker's pre-aggregation state: a bounded [`AggHt`] plus spill
/// buffers partitioned by hash radix.
pub struct GroupByShard<K, A> {
    pub ht: AggHt<K, A>,
    max_groups: usize,
    spill: Vec<Vec<(u64, K, A)>>,
}

impl<K: PartialEq, A> GroupByShard<K, A> {
    /// `max_groups` bounds the pre-aggregation table; rows for further
    /// groups spill. The paper sizes this to stay cache-resident.
    pub fn new(max_groups: usize) -> Self {
        GroupByShard {
            ht: AggHt::with_capacity(max_groups.min(1 << 16)),
            max_groups,
            spill: (0..PARTITION_COUNT).map(|_| Vec::new()).collect(),
        }
    }

    /// Fold one row into its group, spilling if the group is new and the
    /// pre-aggregation table is full.
    #[inline]
    pub fn update(&mut self, hash: u64, key: K, init: impl FnOnce() -> A, fold: impl FnOnce(&mut A)) {
        if let Some(idx) = self.ht.find(hash, &key) {
            fold(self.ht.agg_mut(idx));
        } else if self.ht.len() < self.max_groups {
            let mut agg = init();
            fold(&mut agg);
            self.ht.insert_new(hash, key, agg);
        } else {
            let mut agg = init();
            fold(&mut agg);
            self.spill[partition_of(hash)].push((hash, key, agg));
        }
    }

    /// End of phase 1: flush the pre-aggregation table into the
    /// partitions and hand the buffers to the merge phase.
    pub fn finish(mut self) -> Vec<Vec<(u64, K, A)>> {
        for (hash, key, agg) in self.ht.drain() {
            self.spill[partition_of(hash)].push((hash, key, agg));
        }
        self.spill
    }
}

/// Final phase: merge all shards' partition buffers. Each partition is
/// processed by exactly one worker (partitions are dispensed as unit
/// morsels through `exec` — the shared pool when one is attached);
/// `combine` folds a partial aggregate into the surviving one. Result
/// order is unspecified.
pub fn merge_partitions<K, A>(
    shards: Vec<Vec<Vec<(u64, K, A)>>>,
    exec: &dbep_scheduler::ExecCtx,
    combine: impl Fn(&mut A, A) + Sync,
) -> Vec<(K, A)>
where
    K: PartialEq + Send + Sync,
    A: Send + Sync,
{
    use std::sync::Mutex;
    type SpillBuf<K, A> = Vec<(u64, K, A)>;
    let results: Vec<Mutex<Vec<(K, A)>>> = (0..PARTITION_COUNT).map(|_| Mutex::new(Vec::new())).collect();
    let shards: Vec<Vec<Mutex<SpillBuf<K, A>>>> = shards
        .into_iter()
        .map(|s| s.into_iter().map(Mutex::new).collect())
        .collect();
    let merge_one = |p: usize| {
        let expected: usize = shards
            .iter()
            .map(|s| s[p].lock().expect("spill lock").len())
            .sum();
        if expected == 0 {
            return;
        }
        let mut ht: AggHt<K, A> = AggHt::with_capacity(expected);
        for shard in &shards {
            let buf = std::mem::take(&mut *shard[p].lock().expect("spill lock"));
            for (hash, key, agg) in buf {
                match ht.find(hash, &key) {
                    Some(idx) => combine(ht.agg_mut(idx), agg),
                    None => {
                        ht.insert_new(hash, key, agg);
                    }
                }
            }
        }
        let groups: Vec<(K, A)> = ht.drain().map(|(_, k, a)| (k, a)).collect();
        *results[p].lock().expect("result lock") = groups;
    };
    exec.for_each_morsel(dbep_scheduler::Morsels::with_size(PARTITION_COUNT, 1), |_, r| {
        for p in r {
            merge_one(p);
        }
    });
    results
        .into_iter()
        .flat_map(|m| m.into_inner().expect("result lock"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::murmur2;

    #[test]
    fn update_and_find() {
        let mut ht: AggHt<u64, i64> = AggHt::with_capacity(4);
        for i in 0..100u64 {
            let key = i % 7;
            ht.update(murmur2(key), key, || 0, |a| *a += i as i64);
        }
        assert_eq!(ht.len(), 7);
        let mut sums = [0i64; 7];
        for i in 0..100u64 {
            sums[(i % 7) as usize] += i as i64;
        }
        for key in 0..7u64 {
            let idx = ht.find(murmur2(key), &key).expect("group exists");
            assert_eq!(*ht.key(idx), key);
            assert_eq!(*ht.agg_mut(idx), sums[key as usize]);
        }
        assert!(ht.find(murmur2(7), &7).is_none());
    }

    #[test]
    fn growth_preserves_groups() {
        let mut ht: AggHt<u64, u64> = AggHt::with_capacity(8);
        for k in 0..10_000u64 {
            ht.update(murmur2(k), k, || 0, |a| *a += 1);
        }
        assert_eq!(ht.len(), 10_000);
        for k in 0..10_000u64 {
            assert!(ht.find(murmur2(k), &k).is_some(), "lost key {k}");
        }
    }

    #[test]
    fn chain_walk_api() {
        let mut ht: AggHt<u64, u64> = AggHt::with_capacity(8);
        for k in 0..64u64 {
            ht.update(murmur2(k), k, || 0, |a| *a += 1);
        }
        // Every key must be reachable through head/node_next alone.
        for k in 0..64u64 {
            let h = murmur2(k);
            let mut node = ht.head(h);
            let mut found = false;
            while node != 0 {
                if ht.node_hash(node) == h && *ht.key(node - 1) == k {
                    found = true;
                    break;
                }
                node = ht.node_next(node);
            }
            assert!(found, "key {k} unreachable via chain");
        }
    }

    #[test]
    fn shard_spills_beyond_capacity() {
        let mut shard: GroupByShard<u64, i64> = GroupByShard::new(4);
        for i in 0..1000u64 {
            let key = i % 100; // 100 groups, only 4 fit
            shard.update(murmur2(key), key, || 0, |a| *a += 1);
        }
        let parts = shard.finish();
        let total_rows: usize = parts.iter().map(|p| p.len()).sum();
        assert!(total_rows >= 100, "all groups must surface");
        let merged = merge_partitions(vec![parts], &dbep_scheduler::ExecCtx::inline(), |a, b| *a += b);
        assert_eq!(merged.len(), 100);
        for (_k, count) in merged {
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn multi_shard_merge_parallel() {
        // 4 shards, overlapping groups; merged counts must match a
        // sequential model.
        let mut shards = Vec::new();
        for s in 0..4u64 {
            let mut shard: GroupByShard<u64, i64> = GroupByShard::new(16);
            for i in 0..5000u64 {
                let key = (i + s) % 997;
                shard.update(murmur2(key), key, || 0, |a| *a += 1);
            }
            shards.push(shard.finish());
        }
        let merged = merge_partitions(shards, &dbep_scheduler::ExecCtx::spawn(4), |a, b| *a += b);
        assert_eq!(merged.len(), 997);
        let total: i64 = merged.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, 4 * 5000);
    }

    #[test]
    fn empty_merge() {
        let merged: Vec<(u64, i64)> =
            merge_partitions(Vec::new(), &dbep_scheduler::ExecCtx::spawn(2), |a, b| *a += b);
        assert!(merged.is_empty());
    }

    #[test]
    fn partition_of_is_in_range() {
        for k in 0..100_000u64 {
            assert!(partition_of(murmur2(k)) < PARTITION_COUNT);
        }
    }
}
