//! CPU performance counters via `perf_event_open`, with graceful
//! degradation.
//!
//! The paper normalizes counters "by the total number of tuples scanned
//! by that query" (§3.4) to produce Table 1, Fig. 4 and Fig. 7. We open
//! one counter per hardware event for the calling thread; on kernels or
//! containers where perf is unavailable every event reads as `None` and
//! callers fall back to wall-clock/TSC cycles (documented in
//! EXPERIMENTS.md).

use std::time::{Duration, Instant};

/// Minimal hand-rolled FFI to the platform C library (the workspace is
/// dependency-free, so no `libc` crate). Only the four calls the perf
/// wrapper needs; all are gated to Linux targets below.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    #![allow(non_upper_case_globals)]
    use std::ffi::{c_int, c_long, c_ulong, c_void};

    extern "C" {
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    pub const SYS_perf_event_open: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_perf_event_open: c_long = 241;
}

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3; // LLC misses
const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
const PERF_COUNT_HW_STALLED_CYCLES_BACKEND: u64 = 7;

// PERF_COUNT_HW_CACHE_L1D (0) | READ (0) << 8 | MISS (1) << 16
const L1D_READ_MISS: u64 = 1 << 16;

const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
const PERF_EVENT_IOC_DISABLE: u64 = 0x2401;
const PERF_EVENT_IOC_RESET: u64 = 0x2403;

/// Subset of `struct perf_event_attr` (PERF_ATTR_SIZE_VER5 layout);
/// trailing fields we never set are zero-initialized padding.
#[repr(C)]
#[derive(Default)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved_2: u16,
}

const FLAG_DISABLED: u64 = 1 << 0;
const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const FLAG_EXCLUDE_HV: u64 = 1 << 6;

struct Counter {
    fd: i32,
}

impl Counter {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn open(type_: u32, config: u64) -> Option<Counter> {
        let mut attr = PerfEventAttr {
            type_,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            flags: FLAG_DISABLED | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
            ..Default::default()
        };
        // SAFETY: attr is a properly sized, zero-padded perf_event_attr;
        // pid=0 (self), cpu=-1 (any), group=-1, flags=0.
        let fd = unsafe {
            sys::syscall(
                sys::SYS_perf_event_open,
                &mut attr as *mut PerfEventAttr,
                0i32,
                -1i32,
                -1i32,
                0u64,
            )
        };
        if fd < 0 {
            return None;
        }
        Some(Counter { fd: fd as i32 })
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn open(_type: u32, _config: u64) -> Option<Counter> {
        None
    }

    fn ioctl(&self, req: u64) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        // SAFETY: fd is a valid perf event fd owned by self.
        unsafe {
            sys::ioctl(self.fd, req, 0u64);
        }
        #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
        let _ = req;
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn read(&self) -> Option<u64> {
        let mut value: u64 = 0;
        // SAFETY: reading 8 bytes into a u64 from our own fd.
        let n = unsafe { sys::read(self.fd, &mut value as *mut u64 as *mut std::ffi::c_void, 8) };
        (n == 8).then_some(value)
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn read(&self) -> Option<u64> {
        None
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        // SAFETY: closing our own fd exactly once.
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Read the time-stamp counter (x86) or 0 elsewhere.
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` is always available on x86-64.
    unsafe {
        std::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

/// Estimated TSC ticks per nanosecond (calibrated once). Used to express
/// wall time in cycles when perf counters are unavailable.
pub fn tsc_per_ns() -> f64 {
    use std::sync::OnceLock;
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let t0 = Instant::now();
        let c0 = rdtsc();
        std::thread::sleep(Duration::from_millis(20));
        let c1 = rdtsc();
        let ns = t0.elapsed().as_nanos() as f64;
        if c1 > c0 && ns > 0.0 {
            (c1 - c0) as f64 / ns
        } else {
            1.0 // non-x86 fallback: treat 1 ns as 1 "cycle"
        }
    })
}

/// One measurement region's counter deltas. Missing events are `None`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CounterValues {
    pub wall: Duration,
    pub tsc_cycles: u64,
    pub cycles: Option<u64>,
    pub instructions: Option<u64>,
    pub l1d_miss: Option<u64>,
    pub llc_miss: Option<u64>,
    pub branch_miss: Option<u64>,
    pub stalled_backend: Option<u64>,
}

impl CounterValues {
    /// Core cycles: the perf counter when available, TSC delta otherwise.
    pub fn cycles_estimate(&self) -> u64 {
        self.cycles.unwrap_or(self.tsc_cycles)
    }

    /// Instructions per cycle, if both events were measured.
    pub fn ipc(&self) -> Option<f64> {
        match (self.instructions, self.cycles) {
            (Some(i), Some(c)) if c > 0 => Some(i as f64 / c as f64),
            _ => None,
        }
    }

    /// True if real hardware counters (not just TSC) were captured.
    pub fn has_hw_counters(&self) -> bool {
        self.cycles.is_some()
    }
}

/// A set of per-thread hardware counters bracketing a measurement region.
pub struct CounterSet {
    cycles: Option<Counter>,
    instructions: Option<Counter>,
    l1d_miss: Option<Counter>,
    llc_miss: Option<Counter>,
    branch_miss: Option<Counter>,
    stalled_backend: Option<Counter>,
    start_wall: Instant,
    start_tsc: u64,
}

impl CounterSet {
    /// Open, reset and enable all events that the kernel permits.
    pub fn start() -> CounterSet {
        let open_hw = |config| Counter::open(PERF_TYPE_HARDWARE, config);
        let set = CounterSet {
            cycles: open_hw(PERF_COUNT_HW_CPU_CYCLES),
            instructions: open_hw(PERF_COUNT_HW_INSTRUCTIONS),
            l1d_miss: Counter::open(PERF_TYPE_HW_CACHE, L1D_READ_MISS),
            llc_miss: open_hw(PERF_COUNT_HW_CACHE_MISSES),
            branch_miss: open_hw(PERF_COUNT_HW_BRANCH_MISSES),
            stalled_backend: open_hw(PERF_COUNT_HW_STALLED_CYCLES_BACKEND),
            start_wall: Instant::now(),
            start_tsc: rdtsc(),
        };
        for c in set.all() {
            c.ioctl(PERF_EVENT_IOC_RESET);
            c.ioctl(PERF_EVENT_IOC_ENABLE);
        }
        set
    }

    fn all(&self) -> impl Iterator<Item = &Counter> {
        [
            &self.cycles,
            &self.instructions,
            &self.l1d_miss,
            &self.llc_miss,
            &self.branch_miss,
            &self.stalled_backend,
        ]
        .into_iter()
        .flatten()
    }

    /// Disable and read all events.
    pub fn stop(self) -> CounterValues {
        let tsc_cycles = rdtsc().saturating_sub(self.start_tsc);
        let wall = self.start_wall.elapsed();
        for c in self.all() {
            c.ioctl(PERF_EVENT_IOC_DISABLE);
        }
        CounterValues {
            wall,
            tsc_cycles,
            cycles: self.cycles.as_ref().and_then(Counter::read),
            instructions: self.instructions.as_ref().and_then(Counter::read),
            l1d_miss: self.l1d_miss.as_ref().and_then(Counter::read),
            llc_miss: self.llc_miss.as_ref().and_then(Counter::read),
            branch_miss: self.branch_miss.as_ref().and_then(Counter::read),
            stalled_backend: self.stalled_backend.as_ref().and_then(Counter::read),
        }
    }

    /// Whether this process can read hardware counters at all.
    pub fn available() -> bool {
        Counter::open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES).is_some()
    }
}

/// Measure a closure, returning its result and the counter deltas.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, CounterValues) {
    let set = CounterSet::start();
    let out = f();
    (out, set.stop())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_never_panics_and_tracks_wall_time() {
        let (sum, vals) = measure(|| {
            let mut s = 0u64;
            for i in 0..2_000_000u64 {
                s = s.wrapping_add(i * i);
            }
            std::hint::black_box(s)
        });
        assert_ne!(sum, 0);
        assert!(vals.wall > Duration::ZERO);
        // TSC must move forward on x86.
        #[cfg(target_arch = "x86_64")]
        assert!(vals.tsc_cycles > 0);
    }

    #[test]
    fn counters_plausible_when_available() {
        if !CounterSet::available() {
            eprintln!("perf counters unavailable; skipping plausibility check");
            return;
        }
        let (_, vals) = measure(|| {
            let mut s = 0u64;
            for i in 0..5_000_000u64 {
                s = s.wrapping_add(std::hint::black_box(i));
            }
            s
        });
        let instr = vals.instructions.expect("instructions counted");
        assert!(instr > 5_000_000, "loop must retire > 1 instr/iter, got {instr}");
        assert!(vals.ipc().expect("ipc") > 0.1);
    }

    #[test]
    fn tsc_rate_is_sane() {
        let r = tsc_per_ns();
        // Any real machine is between 0.5 and 6 GHz; fallback is 1.0.
        assert!((0.4..=7.0).contains(&r), "tsc rate {r}");
    }
}
