//! CPU performance counters via `perf_event_open`, with graceful
//! degradation.
//!
//! The paper normalizes counters "by the total number of tuples scanned
//! by that query" (§3.4) to produce Table 1, Fig. 4 and Fig. 7. We open
//! one counter per hardware event for the calling thread; on kernels or
//! containers where perf is unavailable every event reads as `None` and
//! callers fall back to wall-clock/TSC cycles (documented in
//! EXPERIMENTS.md).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Minimal hand-rolled FFI to the platform C library (the workspace is
/// dependency-free, so no `libc` crate). Only the four calls the perf
/// wrapper needs; all are gated to Linux targets below.
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    #![allow(non_upper_case_globals)]
    use std::ffi::{c_int, c_long, c_ulong, c_void};

    extern "C" {
        pub fn syscall(num: c_long, ...) -> c_long;
        pub fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    pub const SYS_perf_event_open: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_perf_event_open: c_long = 241;
}

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_CACHE_MISSES: u64 = 3; // LLC misses
const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
const PERF_COUNT_HW_STALLED_CYCLES_BACKEND: u64 = 7;

// PERF_COUNT_HW_CACHE_L1D (0) | READ (0) << 8 | MISS (1) << 16
const L1D_READ_MISS: u64 = 1 << 16;

const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
const PERF_EVENT_IOC_DISABLE: u64 = 0x2401;
const PERF_EVENT_IOC_RESET: u64 = 0x2403;

/// `read()` on the group leader returns `[nr, value...]` for the whole
/// group in attach order — one syscall for all events, and the kernel
/// schedules the group atomically (all counting or none).
const PERF_FORMAT_GROUP: u64 = 1 << 3;
/// `ioctl` argument applying ENABLE/DISABLE/RESET to the whole group.
const PERF_IOC_FLAG_GROUP: u64 = 1;

/// Subset of `struct perf_event_attr` (PERF_ATTR_SIZE_VER5 layout);
/// trailing fields we never set are zero-initialized padding.
#[repr(C)]
#[derive(Default)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup: u32,
    bp_type: u32,
    config1: u64,
    config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved_2: u16,
}

const FLAG_DISABLED: u64 = 1 << 0;
const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const FLAG_EXCLUDE_HV: u64 = 1 << 6;

struct Counter {
    fd: i32,
}

impl Counter {
    fn open(type_: u32, config: u64) -> Option<Counter> {
        Counter::open_in(type_, config, -1, 0, true)
    }

    /// Open an event, optionally attached to a group leader's fd and with
    /// an explicit `read_format`. Group siblings pass `disabled = false`
    /// so they count exactly while their (initially disabled) leader does.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn open_in(type_: u32, config: u64, group_fd: i32, read_format: u64, disabled: bool) -> Option<Counter> {
        let disabled_flag = if disabled { FLAG_DISABLED } else { 0 };
        let mut attr = PerfEventAttr {
            type_,
            size: std::mem::size_of::<PerfEventAttr>() as u32,
            config,
            read_format,
            flags: disabled_flag | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
            ..Default::default()
        };
        // SAFETY: attr is a properly sized, zero-padded perf_event_attr;
        // pid=0 (self), cpu=-1 (any), group_fd either -1 or a leader fd
        // we own, flags=0.
        let fd = unsafe {
            sys::syscall(
                sys::SYS_perf_event_open,
                &mut attr as *mut PerfEventAttr,
                0i32,
                -1i32,
                group_fd,
                0u64,
            )
        };
        if fd < 0 {
            return None;
        }
        Some(Counter { fd: fd as i32 })
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn open_in(
        _type: u32,
        _config: u64,
        _group_fd: i32,
        _read_format: u64,
        _disabled: bool,
    ) -> Option<Counter> {
        None
    }

    fn ioctl(&self, req: u64) {
        self.ioctl_arg(req, 0);
    }

    fn ioctl_arg(&self, req: u64, arg: u64) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        // SAFETY: fd is a valid perf event fd owned by self.
        unsafe {
            sys::ioctl(self.fd, req, arg);
        }
        #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
        let _ = (req, arg);
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn read(&self) -> Option<u64> {
        let mut value: u64 = 0;
        // SAFETY: reading 8 bytes into a u64 from our own fd.
        let n = unsafe { sys::read(self.fd, &mut value as *mut u64 as *mut std::ffi::c_void, 8) };
        (n == 8).then_some(value)
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn read(&self) -> Option<u64> {
        None
    }

    /// Read up to `buf.len()` u64 words (the PERF_FORMAT_GROUP layout);
    /// returns the number of whole words read.
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    fn read_words(&self, buf: &mut [u64]) -> Option<usize> {
        // SAFETY: reading at most size_of_val(buf) bytes into buf from
        // our own fd.
        let n = unsafe {
            sys::read(
                self.fd,
                buf.as_mut_ptr() as *mut std::ffi::c_void,
                std::mem::size_of_val(buf),
            )
        };
        (n > 0 && n % 8 == 0).then_some(n as usize / 8)
    }

    #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    fn read_words(&self, _buf: &mut [u64]) -> Option<usize> {
        None
    }
}

impl Drop for Counter {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        // SAFETY: closing our own fd exactly once.
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Read the time-stamp counter (x86) or 0 elsewhere.
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` is always available on x86-64.
    unsafe {
        std::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    0
}

/// Estimated TSC ticks per nanosecond (calibrated once). Used to express
/// wall time in cycles when perf counters are unavailable.
pub fn tsc_per_ns() -> f64 {
    use std::sync::OnceLock;
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let t0 = Instant::now();
        let c0 = rdtsc();
        std::thread::sleep(Duration::from_millis(20));
        let c1 = rdtsc();
        let ns = t0.elapsed().as_nanos() as f64;
        if c1 > c0 && ns > 0.0 {
            (c1 - c0) as f64 / ns
        } else {
            1.0 // non-x86 fallback: treat 1 ns as 1 "cycle"
        }
    })
}

/// One measurement region's counter deltas. Missing events are `None`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CounterValues {
    pub wall: Duration,
    pub tsc_cycles: u64,
    pub cycles: Option<u64>,
    pub instructions: Option<u64>,
    pub l1d_miss: Option<u64>,
    pub llc_miss: Option<u64>,
    pub branch_miss: Option<u64>,
    pub stalled_backend: Option<u64>,
}

impl CounterValues {
    /// Core cycles: the perf counter when available, TSC delta otherwise.
    pub fn cycles_estimate(&self) -> u64 {
        self.cycles.unwrap_or(self.tsc_cycles)
    }

    /// Instructions per cycle, if both events were measured.
    pub fn ipc(&self) -> Option<f64> {
        match (self.instructions, self.cycles) {
            (Some(i), Some(c)) if c > 0 => Some(i as f64 / c as f64),
            _ => None,
        }
    }

    /// True if real hardware counters (not just TSC) were captured.
    pub fn has_hw_counters(&self) -> bool {
        self.cycles.is_some()
    }
}

/// A set of per-thread hardware counters bracketing a measurement region.
pub struct CounterSet {
    cycles: Option<Counter>,
    instructions: Option<Counter>,
    l1d_miss: Option<Counter>,
    llc_miss: Option<Counter>,
    branch_miss: Option<Counter>,
    stalled_backend: Option<Counter>,
    start_wall: Instant,
    start_tsc: u64,
}

impl CounterSet {
    /// Open, reset and enable all events that the kernel permits.
    pub fn start() -> CounterSet {
        let open_hw = |config| Counter::open(PERF_TYPE_HARDWARE, config);
        let set = CounterSet {
            cycles: open_hw(PERF_COUNT_HW_CPU_CYCLES),
            instructions: open_hw(PERF_COUNT_HW_INSTRUCTIONS),
            l1d_miss: Counter::open(PERF_TYPE_HW_CACHE, L1D_READ_MISS),
            llc_miss: open_hw(PERF_COUNT_HW_CACHE_MISSES),
            branch_miss: open_hw(PERF_COUNT_HW_BRANCH_MISSES),
            stalled_backend: open_hw(PERF_COUNT_HW_STALLED_CYCLES_BACKEND),
            start_wall: Instant::now(),
            start_tsc: rdtsc(),
        };
        for c in set.all() {
            c.ioctl(PERF_EVENT_IOC_RESET);
            c.ioctl(PERF_EVENT_IOC_ENABLE);
        }
        set
    }

    fn all(&self) -> impl Iterator<Item = &Counter> {
        [
            &self.cycles,
            &self.instructions,
            &self.l1d_miss,
            &self.llc_miss,
            &self.branch_miss,
            &self.stalled_backend,
        ]
        .into_iter()
        .flatten()
    }

    /// Disable and read all events.
    pub fn stop(self) -> CounterValues {
        let tsc_cycles = rdtsc().saturating_sub(self.start_tsc);
        let wall = self.start_wall.elapsed();
        for c in self.all() {
            c.ioctl(PERF_EVENT_IOC_DISABLE);
        }
        CounterValues {
            wall,
            tsc_cycles,
            cycles: self.cycles.as_ref().and_then(Counter::read),
            instructions: self.instructions.as_ref().and_then(Counter::read),
            l1d_miss: self.l1d_miss.as_ref().and_then(Counter::read),
            llc_miss: self.llc_miss.as_ref().and_then(Counter::read),
            branch_miss: self.branch_miss.as_ref().and_then(Counter::read),
            stalled_backend: self.stalled_backend.as_ref().and_then(Counter::read),
        }
    }

    /// Whether this process can read hardware counters at all.
    pub fn available() -> bool {
        Counter::open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES).is_some()
    }
}

/// Measure a closure, returning its result and the counter deltas.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, CounterValues) {
    let set = CounterSet::start();
    let out = f();
    (out, set.stop())
}

/// One atomic reading of a counter group. Unlike [`CounterValues`] the
/// fields are plain (a sibling the kernel refused simply stays 0), so
/// readings subtract cleanly into per-region deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupReading {
    pub cycles: u64,
    pub instructions: u64,
    pub llc_miss: u64,
    pub branch_miss: u64,
}

impl GroupReading {
    /// Counter deltas since `start` (saturating; group reads are
    /// monotone but a reading of 0 means "event absent").
    pub fn delta_since(&self, start: &GroupReading) -> GroupReading {
        GroupReading {
            cycles: self.cycles.saturating_sub(start.cycles),
            instructions: self.instructions.saturating_sub(start.instructions),
            llc_miss: self.llc_miss.saturating_sub(start.llc_miss),
            branch_miss: self.branch_miss.saturating_sub(start.branch_miss),
        }
    }

    /// Instructions per cycle, if both events counted.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0 && self.instructions > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }
}

/// Slot order of the events a [`CounterGroup`] tries to attach.
const GROUP_EVENTS: [(u32, u64); 4] = [
    (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES), // leader
    (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
    (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
    (PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
];

/// A perf event *group* for the calling thread: cycles (leader) plus
/// instructions, LLC misses and branch misses, read atomically with one
/// `read()` via `PERF_FORMAT_GROUP`. The group counts continuously from
/// `open()`; callers bracket regions by subtracting two [`read`]s
/// ([`GroupReading::delta_since`]), which is what per-*stage*
/// attribution needs — no reset, so concurrent regions on the same
/// thread stay consistent.
///
/// [`read`]: CounterGroup::read
pub struct CounterGroup {
    /// Leader first; `slots[i]` is the [`GROUP_EVENTS`] index of the
    /// i-th value in the kernel's read layout (attach order).
    events: Vec<Counter>,
    slots: Vec<usize>,
}

impl CounterGroup {
    /// Open and enable the group; `None` when the leader cannot open
    /// (perf unavailable). Siblings that fail to open are skipped.
    pub fn open() -> Option<CounterGroup> {
        let (lt, lc) = GROUP_EVENTS[0];
        let leader = Counter::open_in(lt, lc, -1, PERF_FORMAT_GROUP, true)?;
        let leader_fd = leader.fd;
        let mut events = vec![leader];
        let mut slots = vec![0];
        for (slot, &(t, c)) in GROUP_EVENTS.iter().enumerate().skip(1) {
            if let Some(sib) = Counter::open_in(t, c, leader_fd, PERF_FORMAT_GROUP, false) {
                events.push(sib);
                slots.push(slot);
            }
        }
        let group = CounterGroup { events, slots };
        group.events[0].ioctl_arg(PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        group.events[0].ioctl_arg(PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
        Some(group)
    }

    /// Events that actually attached (1 = leader only).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Never true: `open` fails instead of returning an empty group.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One atomic reading of every attached event.
    pub fn read(&self) -> Option<GroupReading> {
        // PERF_FORMAT_GROUP layout: [nr, value0, value1, ...].
        let mut buf = [0u64; 1 + GROUP_EVENTS.len()];
        let words = self.events[0].read_words(&mut buf)?;
        let nr = buf[0] as usize;
        if nr != self.events.len() || words != 1 + nr {
            return None;
        }
        let mut reading = GroupReading::default();
        for (i, &slot) in self.slots.iter().enumerate() {
            let v = buf[1 + i];
            match slot {
                0 => reading.cycles = v,
                1 => reading.instructions = v,
                2 => reading.llc_miss = v,
                3 => reading.branch_miss = v,
                _ => {}
            }
        }
        Some(reading)
    }
}

impl Drop for CounterGroup {
    fn drop(&mut self) {
        self.events[0].ioctl_arg(PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    }
}

std::thread_local! {
    /// One lazily-opened group per thread: opening perf fds per stage
    /// would dominate short stages, so each thread keeps its group for
    /// its lifetime and regions subtract readings.
    static THREAD_GROUP: std::cell::OnceCell<Option<CounterGroup>> =
        const { std::cell::OnceCell::new() };
}

/// Run `f` with the calling thread's counter group; `None` when perf is
/// unavailable (the group failed to open on first use).
pub fn with_thread_group<R>(f: impl FnOnce(&CounterGroup) -> R) -> Option<R> {
    THREAD_GROUP.with(|cell| cell.get_or_init(CounterGroup::open).as_ref().map(f))
}

/// Counter totals attributed to one stage. `samples` is the number of
/// guard regions folded in (0 means the stage ran without counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounterValues {
    pub cycles: u64,
    pub instructions: u64,
    pub llc_miss: u64,
    pub branch_miss: u64,
    pub samples: u64,
}

impl StageCounterValues {
    /// Instructions per cycle, if both events counted.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0 && self.instructions > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }
}

/// Per-stage hardware-counter accumulators for one query run: the
/// Table-1 attribution ("where do the cycles/misses go?") sliced by
/// pipeline stage instead of whole query. Thread-safe; each guard adds
/// its thread's group delta to its stage. Deltas cover exactly the
/// calling thread, so totals are exact for single-threaded runs and
/// per-thread attribution evidence otherwise.
pub struct StageCounters {
    stages: Vec<StageCells>,
}

#[derive(Default)]
struct StageCells {
    cycles: AtomicU64,
    instructions: AtomicU64,
    llc_miss: AtomicU64,
    branch_miss: AtomicU64,
    samples: AtomicU64,
}

impl StageCounters {
    pub fn new(stages: usize) -> StageCounters {
        StageCounters {
            stages: (0..stages).map(|_| StageCells::default()).collect(),
        }
    }

    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Begin a counted region attributed to `stage`; the returned guard
    /// folds the delta in when dropped. `None` (cheaply, after the first
    /// probe) when perf is unavailable or the index is out of range.
    pub fn start_stage(&self, stage: usize) -> Option<StageCounterGuard<'_>> {
        if stage >= self.stages.len() {
            return None;
        }
        let start = with_thread_group(CounterGroup::read)??;
        Some(StageCounterGuard {
            owner: self,
            stage,
            start,
        })
    }

    /// Fold a measured delta into `stage`'s totals.
    pub fn record(&self, stage: usize, delta: GroupReading) {
        if let Some(cells) = self.stages.get(stage) {
            // ORDERING: Relaxed — independent statistics counters; the
            // final snapshot happens after the run joins its workers.
            cells.cycles.fetch_add(delta.cycles, Ordering::Relaxed);
            cells
                .instructions
                .fetch_add(delta.instructions, Ordering::Relaxed);
            cells.llc_miss.fetch_add(delta.llc_miss, Ordering::Relaxed);
            cells.branch_miss.fetch_add(delta.branch_miss, Ordering::Relaxed);
            cells.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current totals, one entry per stage.
    pub fn snapshot(&self) -> Vec<StageCounterValues> {
        self.stages
            .iter()
            .map(|c| StageCounterValues {
                // ORDERING: Relaxed — statistics reads (see `record`).
                cycles: c.cycles.load(Ordering::Relaxed),
                instructions: c.instructions.load(Ordering::Relaxed),
                llc_miss: c.llc_miss.load(Ordering::Relaxed),
                branch_miss: c.branch_miss.load(Ordering::Relaxed),
                samples: c.samples.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Sum over all stages (for whole-run cross-checks).
    pub fn total(&self) -> StageCounterValues {
        let mut t = StageCounterValues::default();
        for v in self.snapshot() {
            t.cycles += v.cycles;
            t.instructions += v.instructions;
            t.llc_miss += v.llc_miss;
            t.branch_miss += v.branch_miss;
            t.samples += v.samples;
        }
        t
    }
}

/// RAII region: reads the thread's group at construction and folds the
/// delta into the owning [`StageCounters`] on drop.
pub struct StageCounterGuard<'a> {
    owner: &'a StageCounters,
    stage: usize,
    start: GroupReading,
}

impl Drop for StageCounterGuard<'_> {
    fn drop(&mut self) {
        if let Some(Some(end)) = with_thread_group(CounterGroup::read) {
            self.owner.record(self.stage, end.delta_since(&self.start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_never_panics_and_tracks_wall_time() {
        let (sum, vals) = measure(|| {
            let mut s = 0u64;
            for i in 0..2_000_000u64 {
                s = s.wrapping_add(i * i);
            }
            std::hint::black_box(s)
        });
        assert_ne!(sum, 0);
        assert!(vals.wall > Duration::ZERO);
        // TSC must move forward on x86.
        #[cfg(target_arch = "x86_64")]
        assert!(vals.tsc_cycles > 0);
    }

    #[test]
    fn counters_plausible_when_available() {
        if !CounterSet::available() {
            eprintln!("perf counters unavailable; skipping plausibility check");
            return;
        }
        let (_, vals) = measure(|| {
            let mut s = 0u64;
            for i in 0..5_000_000u64 {
                s = s.wrapping_add(std::hint::black_box(i));
            }
            s
        });
        let instr = vals.instructions.expect("instructions counted");
        assert!(instr > 5_000_000, "loop must retire > 1 instr/iter, got {instr}");
        assert!(vals.ipc().expect("ipc") > 0.1);
    }

    #[test]
    fn tsc_rate_is_sane() {
        let r = tsc_per_ns();
        // Any real machine is between 0.5 and 6 GHz; fallback is 1.0.
        assert!((0.4..=7.0).contains(&r), "tsc rate {r}");
    }

    #[test]
    fn group_readings_are_monotone_when_available() {
        let Some(group) = CounterGroup::open() else {
            eprintln!("perf groups unavailable; skipping");
            return;
        };
        assert!(!group.is_empty());
        let a = group.read().expect("group read");
        let mut s = 0u64;
        for i in 0..2_000_000u64 {
            s = s.wrapping_add(std::hint::black_box(i));
        }
        std::hint::black_box(s);
        let b = group.read().expect("group read");
        let d = b.delta_since(&a);
        assert!(d.instructions > 1_000_000, "loop retires instructions, got {d:?}");
        assert!(b.cycles >= a.cycles, "cycles are monotone");
        assert!(d.ipc().expect("ipc") > 0.05);
    }

    #[test]
    fn delta_since_saturates() {
        let lo = GroupReading {
            cycles: 5,
            ..GroupReading::default()
        };
        let hi = GroupReading {
            cycles: 9,
            instructions: 2,
            ..GroupReading::default()
        };
        assert_eq!(hi.delta_since(&lo).cycles, 4);
        assert_eq!(lo.delta_since(&hi).cycles, 0);
        assert_eq!(GroupReading::default().ipc(), None);
    }

    #[test]
    fn stage_counters_accumulate_recorded_deltas() {
        let sc = StageCounters::new(2);
        assert_eq!(sc.stages(), 2);
        let d = GroupReading {
            cycles: 100,
            instructions: 250,
            llc_miss: 3,
            branch_miss: 1,
        };
        sc.record(0, d);
        sc.record(0, d);
        sc.record(1, d);
        sc.record(9, d); // out of range: ignored
        let snap = sc.snapshot();
        assert_eq!(snap[0].cycles, 200);
        assert_eq!(snap[0].samples, 2);
        assert_eq!(snap[1].instructions, 250);
        assert!((snap[1].ipc().unwrap() - 2.5).abs() < 1e-9);
        let total = sc.total();
        assert_eq!(total.cycles, 300);
        assert_eq!(total.samples, 3);
    }

    #[test]
    fn stage_guards_attribute_to_their_stage() {
        let sc = StageCounters::new(3);
        {
            let _g = sc.start_stage(1);
            let mut s = 0u64;
            for i in 0..1_000_000u64 {
                s = s.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(s);
        }
        assert!(sc.start_stage(7).is_none(), "out-of-range stage");
        let snap = sc.snapshot();
        if with_thread_group(|_| ()).is_none() {
            assert_eq!(snap[1].samples, 0, "no counters, no samples");
            return;
        }
        assert_eq!(snap[1].samples, 1);
        assert!(
            snap[1].instructions > 500_000,
            "stage 1 owns the loop: {:?}",
            snap[1]
        );
        assert_eq!(snap[0], StageCounterValues::default());
        assert_eq!(snap[2], StageCounterValues::default());
    }
}
