//! Hash functions.
//!
//! The paper settles on **Murmur2** for Tectorwise and a **CRC32-based
//! hash** ("combines two 32-bit CRC results into a single 64-bit hash")
//! for Typer (§4.1): Murmur2 needs roughly twice the instructions but has
//! higher throughput, which suits Tectorwise's separated hash primitive;
//! CRC's short dependency chain suits Typer's fused loops. Both are
//! provided here and both engines can be switched for the ablation
//! (`experiments table1 --swap-hash`).

/// Which hash function a query plan uses. Defaults follow §4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HashFn {
    Murmur2,
    Crc,
}

const MURMUR_M: u64 = 0xc6a4_a793_5bd1_e995;
const MURMUR_R: u32 = 47;
const MURMUR_SEED: u64 = 0x8445_d61a_4e77_4912;

/// MurmurHash64A of a single 64-bit key (the VectorWise-style hash).
#[inline]
pub fn murmur2(key: u64) -> u64 {
    let mut h = MURMUR_SEED ^ MURMUR_M.wrapping_mul(8);
    let mut k = key.wrapping_mul(MURMUR_M);
    k ^= k >> MURMUR_R;
    k = k.wrapping_mul(MURMUR_M);
    h ^= k;
    h = h.wrapping_mul(MURMUR_M);
    h ^= h >> MURMUR_R;
    h = h.wrapping_mul(MURMUR_M);
    h ^= h >> MURMUR_R;
    h
}

/// Combine an existing hash with another 64-bit key column (Tectorwise's
/// `rehash` primitive for composite keys).
#[inline]
pub fn rehash_murmur2(h: u64, key: u64) -> u64 {
    let mut k = key.wrapping_mul(MURMUR_M);
    k ^= k >> MURMUR_R;
    k = k.wrapping_mul(MURMUR_M);
    let mut h = (h ^ k).wrapping_mul(MURMUR_M);
    h ^= h >> MURMUR_R;
    h
}

/// MurmurHash64A over a byte string (string join/filter keys).
pub fn hash_bytes_murmur2(bytes: &[u8]) -> u64 {
    let mut h = MURMUR_SEED ^ MURMUR_M.wrapping_mul(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let mut k = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        k = k.wrapping_mul(MURMUR_M);
        k ^= k >> MURMUR_R;
        k = k.wrapping_mul(MURMUR_M);
        h ^= k;
        h = h.wrapping_mul(MURMUR_M);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(MURMUR_M);
    }
    h ^= h >> MURMUR_R;
    h = h.wrapping_mul(MURMUR_M);
    h ^= h >> MURMUR_R;
    h
}

// ---------------------------------------------------------------------
// CRC32C-based hashing (Typer / HyPer style).
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[inline]
fn has_sse42() -> bool {
    // Detection is one load + predictable branch per call; the hardware
    // path compiles to a single `crc32` instruction.
    use std::sync::OnceLock;
    static HAS: OnceLock<bool> = OnceLock::new();
    *HAS.get_or_init(|| std::arch::is_x86_feature_detected!("sse4.2"))
}

/// # Safety
/// Requires SSE4.2 — callers check [`has_sse42`] first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
#[inline]
unsafe fn crc32_hw(seed: u32, key: u64) -> u32 {
    std::arch::x86_64::_mm_crc32_u64(seed as u64, key) as u32
}

/// Software CRC32C (Castagnoli), bitwise; only the fallback path.
///
/// Matches the semantics of `_mm_crc32_u64`: the seed is the running CRC
/// state, with no initial or final complement.
fn crc32_sw(seed: u32, key: u64) -> u32 {
    let mut crc = seed;
    for i in 0..8 {
        let byte = (key >> (i * 8)) as u8;
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0x82f6_3b78 & mask);
        }
    }
    crc
}

#[inline]
fn crc32(seed: u32, key: u64) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if has_sse42() {
            // SAFETY: guarded by runtime detection of sse4.2.
            return unsafe { crc32_hw(seed, key) };
        }
    }
    crc32_sw(seed, key)
}

/// HyPer-style 64-bit hash: two independent 32-bit CRCs of the key,
/// concatenated and multiplied to spread entropy into the high bits
/// (the directory tag lives there).
#[inline]
pub fn crc64(key: u64) -> u64 {
    let lo = crc32(0xD7E8_9A2C, key) as u64;
    let hi = crc32(0x8F41_5C6B, key) as u64;
    (lo | (hi << 32)).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Combine an existing CRC-based hash with another key column.
#[inline]
pub fn rehash_crc(h: u64, key: u64) -> u64 {
    crc64(h ^ key.rotate_left(32))
}

impl HashFn {
    /// Hash one 64-bit key.
    #[inline]
    pub fn hash(self, key: u64) -> u64 {
        match self {
            HashFn::Murmur2 => murmur2(key),
            HashFn::Crc => crc64(key),
        }
    }

    /// Fold another key column into an existing hash (composite keys).
    #[inline]
    pub fn rehash(self, h: u64, key: u64) -> u64 {
        match self {
            HashFn::Murmur2 => rehash_murmur2(h, key),
            HashFn::Crc => rehash_crc(h, key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur_reference_vectors() {
        // Self-consistency + known dispersion properties.
        assert_ne!(murmur2(0), 0);
        assert_ne!(murmur2(0), murmur2(1));
        assert_ne!(murmur2(u64::MAX), murmur2(u64::MAX - 1));
    }

    #[test]
    fn crc_sw_matches_hw() {
        // On machines with SSE4.2 the software path must agree with the
        // hardware instruction — they implement the same polynomial.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("sse4.2") {
            for k in [0u64, 1, 42, 0xdead_beef_cafe_babe, u64::MAX] {
                let hw = unsafe { crc32_hw(123, k) };
                assert_eq!(crc32_sw(123, k), hw, "key {k:#x}");
            }
        }
    }

    #[test]
    fn hashes_fill_high_bits() {
        // The join-table tag uses bits 48..64; a hash that never sets them
        // would disable the Bloom filter. Check dispersion over a sample.
        let mut seen_tags_m = std::collections::HashSet::new();
        let mut seen_tags_c = std::collections::HashSet::new();
        for k in 0..4096u64 {
            seen_tags_m.insert(murmur2(k) >> 60);
            seen_tags_c.insert(crc64(k) >> 60);
        }
        assert!(seen_tags_m.len() >= 12, "murmur high bits collapse");
        assert!(seen_tags_c.len() >= 12, "crc high bits collapse");
    }

    #[test]
    fn rehash_differs_from_hash() {
        let h = murmur2(7);
        assert_ne!(rehash_murmur2(h, 9), murmur2(9));
        assert_ne!(rehash_crc(crc64(7), 9), crc64(9));
        // Order sensitivity: (a,b) != (b,a).
        assert_ne!(rehash_murmur2(murmur2(1), 2), rehash_murmur2(murmur2(2), 1));
    }

    #[test]
    fn byte_hash_handles_all_lengths() {
        let mut prev = Vec::new();
        for len in 0..32 {
            let buf: Vec<u8> = (0..len as u8).collect();
            let h = hash_bytes_murmur2(&buf);
            assert!(!prev.contains(&h), "collision at length {len}");
            prev.push(h);
        }
        assert_ne!(hash_bytes_murmur2(b"BUILDING"), hash_bytes_murmur2(b"BUILDINh"));
    }

    #[test]
    fn hashfn_dispatch() {
        assert_eq!(HashFn::Murmur2.hash(99), murmur2(99));
        assert_eq!(HashFn::Crc.hash(99), crc64(99));
        assert_eq!(HashFn::Murmur2.rehash(1, 2), rehash_murmur2(1, 2));
        assert_eq!(HashFn::Crc.rehash(1, 2), rehash_crc(1, 2));
    }
}
