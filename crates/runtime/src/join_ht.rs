//! Chaining join hash table with tagged directory pointers.
//!
//! This is the §3.2 join structure shared by both engines:
//!
//! * one directory word per bucket, chaining for collisions;
//! * entries in **row format** (hash + packed key/payload) for cache
//!   locality during probes;
//! * the 16 unused high bits of each directory pointer hold a tiny
//!   Bloom-filter-like tag: every key in a bucket sets one of 16 bits
//!   chosen by its hash, so a probe whose tag bit is absent skips the
//!   chain walk entirely — "a probe miss usually does not have to
//!   traverse the collision list".
//!
//! The build is morsel-friendly and mirrors HyPer's two phases: worker
//! threads first materialize entries into thread-local shards
//! ([`JoinHtShard`]), then — after a pipeline barrier — the directory is
//! allocated at a power-of-two size and all workers publish their entries
//! with lock-free CAS prepends.

use std::sync::atomic::{AtomicU64, Ordering};

const PTR_MASK: u64 = 0x0000_FFFF_FFFF_FFFF;

/// Tag bit for a hash, positioned in the high 16 bits of a directory word.
#[inline]
fn tag_of(hash: u64) -> u64 {
    1u64 << (48 + ((hash >> 48) & 15) as u32)
}

/// One hash-table entry in row format.
#[repr(C)]
pub struct Entry<T> {
    /// Tagged word of the bucket head this entry was prepended over.
    /// Follow with [`JoinHt::next_addr`], which masks the tag bits.
    next: AtomicU64,
    pub hash: u64,
    pub row: T,
}

/// Thread-local build-side buffer (phase 1 of the build).
pub struct JoinHtShard<T> {
    entries: Vec<Entry<T>>,
}

impl<T> Default for JoinHtShard<T> {
    fn default() -> Self {
        JoinHtShard { entries: Vec::new() }
    }
}

impl<T> JoinHtShard<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        JoinHtShard {
            entries: Vec::with_capacity(n),
        }
    }

    #[inline]
    pub fn push(&mut self, hash: u64, row: T) {
        self.entries.push(Entry {
            next: AtomicU64::new(0),
            hash,
            row,
        });
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The shared chaining hash table (probe side is fully concurrent).
pub struct JoinHt<T> {
    dir: Vec<AtomicU64>,
    mask: u64,
    // Entry storage. Directory words point directly into these buffers,
    // so they are never touched again after the build.
    shards: Vec<Vec<Entry<T>>>,
    len: usize,
    use_tags: bool,
}

impl<T: Send + Sync> JoinHt<T> {
    /// Finalize a set of thread-local shards into a probe-ready table
    /// (phase 2 of the build). Shards are dispensed as unit morsels
    /// through `exec` — workers of the shared pool (or the scoped
    /// fallback workers) publish entries concurrently with lock-free
    /// CAS prepends.
    pub fn from_shards(shards: Vec<JoinHtShard<T>>, exec: &dbep_scheduler::ExecCtx) -> Self {
        Self::from_shards_cfg(shards, exec, true)
    }

    /// As [`JoinHt::from_shards`], with the Bloom-tag optimization
    /// switchable for the `fig9 --no-tag` ablation.
    pub fn from_shards_cfg(
        shards: Vec<JoinHtShard<T>>,
        exec: &dbep_scheduler::ExecCtx,
        use_tags: bool,
    ) -> Self {
        let len: usize = shards.iter().map(|s| s.entries.len()).sum();
        // Load factor <= 0.5, like the paper's test system.
        let dir_size = (len * 2).next_power_of_two().max(2);
        let mut dir = Vec::with_capacity(dir_size);
        dir.resize_with(dir_size, || AtomicU64::new(0));
        let ht = JoinHt {
            dir,
            mask: (dir_size - 1) as u64,
            shards: shards.into_iter().map(|s| s.entries).collect(),
            len,
            use_tags,
        };
        let insert_shard = |shard: &Vec<Entry<T>>| {
            for e in shard {
                let addr = e as *const Entry<T> as u64;
                debug_assert_eq!(addr & !PTR_MASK, 0, "entry address exceeds 48 bits");
                let slot = &ht.dir[(e.hash & ht.mask) as usize];
                let tag = if use_tags { tag_of(e.hash) } else { 0 };
                // ORDERING: Relaxed — seed value for the CAS loop; a
                // stale read only costs one extra iteration.
                let mut old = slot.load(Ordering::Relaxed);
                loop {
                    // ORDERING: Relaxed store of `next` — the Release
                    // CAS below publishes it together with the slot
                    // word; its failure ordering is Relaxed because a
                    // failed CAS publishes nothing.
                    e.next.store(old, Ordering::Relaxed);
                    let new = (old & !PTR_MASK) | tag | addr;
                    // ORDERING: Release on success publishes `next`
                    // together with the slot word; Relaxed on failure —
                    // a failed CAS publishes nothing.
                    match slot.compare_exchange_weak(old, new, Ordering::Release, Ordering::Relaxed) {
                        Ok(_) => break,
                        Err(cur) => old = cur,
                    }
                }
            }
        };
        exec.for_each_morsel(dbep_scheduler::Morsels::with_size(ht.shards.len(), 1), |_, r| {
            for i in r {
                insert_shard(&ht.shards[i]);
            }
        });
        ht
    }

    /// Convenience single-threaded build from `(hash, row)` pairs.
    pub fn build(rows: impl IntoIterator<Item = (u64, T)>) -> Self {
        let mut shard = JoinHtShard::new();
        for (h, r) in rows {
            shard.push(h, r);
        }
        Self::from_shards(vec![shard], &dbep_scheduler::ExecCtx::inline())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of directory + entries — the probe working set (Fig. 9).
    pub fn memory_bytes(&self) -> usize {
        self.dir.len() * 8 + self.len * std::mem::size_of::<Entry<T>>()
    }

    /// Address of the first chain entry for `hash`, or 0.
    ///
    /// A zero return means "definitely no match in this bucket" — either
    /// the bucket is empty or the tag filter proves the key absent.
    #[inline]
    pub fn chain_head(&self, hash: u64) -> u64 {
        // ORDERING: Relaxed — build and probe are separate pipeline
        // phases; the scheduler's join on the build morsels is the
        // happens-before edge, so probes never race with inserts.
        let word = self.dir[(hash & self.mask) as usize].load(Ordering::Relaxed);
        if self.use_tags && word & tag_of(hash) == 0 {
            return 0;
        }
        word & PTR_MASK
    }

    /// Dereference an entry address obtained from [`JoinHt::chain_head`] /
    /// [`JoinHt::next_addr`] **of this table**.
    ///
    /// # Safety
    /// `addr` must be a non-zero address produced by this table's chain
    /// traversal; the table keeps all entry storage alive and immutable,
    /// so such addresses are valid for `&self`'s lifetime.
    #[inline]
    pub unsafe fn entry_at(&self, addr: u64) -> &Entry<T> {
        &*(addr as *const Entry<T>)
    }

    /// Address of the next chain entry after `e`, or 0 at chain end.
    #[inline]
    pub fn next_addr(e: &Entry<T>) -> u64 {
        // ORDERING: Relaxed — entries are immutable once the build
        // phase joins (see [`JoinHt::chain_head`]).
        e.next.load(Ordering::Relaxed) & PTR_MASK
    }

    /// Existence-only probe (semi-join path): `true` iff any entry with
    /// this hash satisfies `eq`. Stops at the first hit, so an EXISTS
    /// subquery never walks past its witness — the compiled engines'
    /// semi-join probe (Q4) and the scalar model the vectorized
    /// `probe_semijoin` primitive must agree with.
    #[inline]
    pub fn contains(&self, hash: u64, eq: impl Fn(&T) -> bool) -> bool {
        self.probe(hash).any(|e| eq(&e.row))
    }

    /// Iterate all entries whose stored hash equals `hash` (callers
    /// re-check the key, as both engines do).
    #[inline]
    pub fn probe(&self, hash: u64) -> ProbeIter<'_, T> {
        ProbeIter {
            ht: self,
            addr: self.chain_head(hash),
            hash,
        }
    }

    /// Iterate every entry in the table (used by tests and by the final
    /// phases of some plans).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> + '_ {
        self.shards.iter().flatten()
    }
}

/// Iterator over hash-equal candidate entries of one bucket chain.
pub struct ProbeIter<'a, T> {
    ht: &'a JoinHt<T>,
    addr: u64,
    hash: u64,
}

impl<'a, T: Send + Sync> Iterator for ProbeIter<'a, T> {
    type Item = &'a Entry<T>;

    #[inline]
    fn next(&mut self) -> Option<&'a Entry<T>> {
        while self.addr != 0 {
            // SAFETY: addr originates from this table's chain.
            let e = unsafe { self.ht.entry_at(self.addr) };
            self.addr = JoinHt::next_addr(e);
            if e.hash == self.hash {
                return Some(e);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::murmur2;

    fn probe_keys(ht: &JoinHt<(u64, u64)>, key: u64) -> Vec<u64> {
        let mut v: Vec<u64> = ht
            .probe(murmur2(key))
            .filter(|e| e.row.0 == key)
            .map(|e| e.row.1)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn build_and_probe() {
        let ht = JoinHt::build((0..1000u64).map(|k| (murmur2(k), (k, k * 10))));
        assert_eq!(ht.len(), 1000);
        for k in 0..1000 {
            assert_eq!(probe_keys(&ht, k), vec![k * 10], "key {k}");
        }
        // Misses.
        for k in 1000..2000 {
            assert!(probe_keys(&ht, k).is_empty());
        }
    }

    #[test]
    fn duplicate_keys_yield_all_matches() {
        let mut rows = Vec::new();
        for k in 0..100u64 {
            for dup in 0..3 {
                rows.push((murmur2(k), (k, dup)));
            }
        }
        let ht = JoinHt::build(rows);
        for k in 0..100 {
            assert_eq!(probe_keys(&ht, k), vec![0, 1, 2]);
        }
    }

    #[test]
    fn contains_is_existence_only() {
        // Duplicate keys: contains() is true exactly once per key class,
        // regardless of how many matching entries chain behind it.
        let mut rows = Vec::new();
        for k in 0..200u64 {
            for dup in 0..(k % 3 + 1) {
                rows.push((murmur2(k), (k, dup)));
            }
        }
        let ht = JoinHt::build(rows);
        for k in 0..200u64 {
            assert!(ht.contains(murmur2(k), |r| r.0 == k), "key {k}");
        }
        for k in 200..500u64 {
            assert!(!ht.contains(murmur2(k), |r| r.0 == k), "key {k}");
        }
    }

    #[test]
    fn empty_table() {
        let ht: JoinHt<(u64, u64)> = JoinHt::build(std::iter::empty());
        assert!(ht.is_empty());
        assert_eq!(ht.chain_head(murmur2(7)), 0);
        assert!(probe_keys(&ht, 7).is_empty());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let per_shard = 5000usize;
        let shards: Vec<JoinHtShard<(u64, u64)>> = (0..4)
            .map(|s| {
                let mut shard = JoinHtShard::with_capacity(per_shard);
                for i in 0..per_shard as u64 {
                    let k = s as u64 * per_shard as u64 + i;
                    shard.push(murmur2(k), (k, k + 1));
                }
                shard
            })
            .collect();
        let ht = JoinHt::from_shards(shards, &dbep_scheduler::ExecCtx::spawn(4));
        assert_eq!(ht.len(), 4 * per_shard);
        for k in [0u64, 1, 4999, 5000, 19_999] {
            assert_eq!(probe_keys(&ht, k), vec![k + 1]);
        }
        assert_eq!(ht.iter().count(), 4 * per_shard);
    }

    #[test]
    fn tags_do_not_change_results() {
        let rows: Vec<(u64, (u64, u64))> = (0..2000u64).map(|k| (murmur2(k), (k, k))).collect();
        let mut s1 = JoinHtShard::new();
        let mut s2 = JoinHtShard::new();
        for &(h, r) in &rows {
            s1.push(h, r);
            s2.push(h, r);
        }
        let tagged = JoinHt::from_shards_cfg(vec![s1], &dbep_scheduler::ExecCtx::inline(), true);
        let untagged = JoinHt::from_shards_cfg(vec![s2], &dbep_scheduler::ExecCtx::inline(), false);
        for k in 0..4000 {
            assert_eq!(probe_keys(&tagged, k), probe_keys(&untagged, k), "key {k}");
        }
    }

    #[test]
    fn memory_accounting() {
        let ht = JoinHt::build((0..100u64).map(|k| (murmur2(k), (k, k))));
        // 256-slot directory (100 * 2 -> 256) + 100 entries of 32 bytes.
        assert_eq!(ht.memory_bytes(), 256 * 8 + 100 * 32);
    }
}
