//! Shared execution substrate.
//!
//! Everything in this crate is used by *both* engines, which is the core
//! methodological requirement of the paper (§3): identical algorithms and
//! data structures, so that vectorized-versus-compiled is the only
//! difference.
//!
//! * [`hash`] — Murmur2-64A (Tectorwise's hash) and a CRC32C-based 64-bit
//!   hash (Typer's hash), §4.1.
//! * [`join_ht`] — chaining join hash table whose directory words carry a
//!   16-bit Bloom-filter-like tag in the unused pointer bits, §3.2.
//! * [`agg_ht`] — aggregation hash table plus the two-phase
//!   (pre-aggregate, spill to partitions, final aggregate) group-by
//!   machinery, §3.2.
//! * morsel-driven work distribution now lives in `dbep-scheduler`
//!   (atomic cursor over fixed-size tuple ranges, pipeline barriers,
//!   and the shared inter-query worker pool, §6.1); the dispenser and
//!   the spawn-per-query fallback are re-exported here for the
//!   execution layers.
//! * [`counters`] — `perf_event_open` CPU counters with graceful
//!   degradation, used to produce Table 1 / Fig. 4 / Fig. 7.
//! * [`simd`] — runtime ISA detection for the SIMD primitives of §5.

pub mod agg_ht;
pub mod counters;
pub mod hash;
pub mod join_ht;
pub mod rng;
pub mod simd;

pub use agg_ht::{AggHt, GroupByShard, PARTITION_COUNT};
pub use counters::{CounterSet, CounterValues};
pub use dbep_scheduler::{map_workers, scope_workers, ExecCtx, Morsels, MORSEL_TUPLES};
pub use hash::{crc64, hash_bytes_murmur2, murmur2, rehash_crc, rehash_murmur2, HashFn};
pub use join_ht::JoinHt;
pub use rng::SmallRng;
pub use simd::{simd_level, SimdLevel};
