//! Morsel-driven work distribution (§6.1).
//!
//! Both engines parallelize the same way HyPer does \[22\]: the table-scan
//! loop of every pipeline is replaced by workers repeatedly *claiming*
//! fixed-size tuple ranges ("morsels") from a shared lock-free cursor.
//! Pipeline-breaking operators synchronize phases with a barrier, and
//! operators expose *shared state* (e.g. the build-side hash table) that
//! all workers cooperate on.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in tuples. HyPer-style systems use 10k–100k;
/// 16 Ki keeps per-claim overhead negligible while load-balancing well.
pub const MORSEL_TUPLES: usize = 16 * 1024;

/// A lock-free dispenser of tuple ranges over `0..total`.
pub struct Morsels {
    next: AtomicUsize,
    total: usize,
    morsel: usize,
}

impl Morsels {
    pub fn new(total: usize) -> Self {
        Self::with_size(total, MORSEL_TUPLES)
    }

    pub fn with_size(total: usize, morsel: usize) -> Self {
        assert!(morsel > 0, "morsel size must be positive");
        Morsels {
            next: AtomicUsize::new(0),
            total,
            morsel,
        }
    }

    /// Claim the next morsel; `None` once the relation is exhausted.
    #[inline]
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.morsel).min(self.total))
    }

    pub fn total(&self) -> usize {
        self.total
    }
}

/// Run `f(worker_id)` on `threads` workers. With `threads <= 1` the
/// closure runs inline on the caller (no thread spawn), which keeps
/// single-threaded measurements clean.
pub fn scope_workers(threads: usize, f: impl Fn(usize) + Sync) {
    if threads <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        for w in 0..threads {
            let f = &f;
            s.spawn(move || f(w));
        }
    });
}

/// Collect one value per worker from a parallel region (used to gather
/// thread-local build shards / pre-aggregation shards).
pub fn map_workers<T: Send>(threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..threads.max(1)).map(|_| None).collect();
    if threads <= 1 {
        out[0] = Some(f(0));
    } else {
        let cells: Vec<std::sync::Mutex<&mut Option<T>>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|s| {
            for (w, cell) in cells.iter().enumerate() {
                let f = &f;
                s.spawn(move || {
                    let v = f(w);
                    **cell.lock().expect("worker cell") = Some(v);
                });
            }
        });
    }
    out.into_iter()
        .map(|v| v.expect("worker produced a value"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn morsels_cover_exactly_once() {
        let m = Morsels::with_size(100_000, 1024);
        let mut seen = vec![false; 100_000];
        while let Some(r) = m.claim() {
            for i in r {
                assert!(!seen[i], "tuple {i} dispensed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "gap in coverage");
    }

    #[test]
    fn morsels_parallel_sum() {
        // Sum 0..N via 8 workers claiming morsels; must equal closed form.
        let n = 1_000_000usize;
        let m = Morsels::new(n);
        let total = AtomicU64::new(0);
        scope_workers(8, |_| {
            let mut local = 0u64;
            while let Some(r) = m.claim() {
                for i in r {
                    local += i as u64;
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn empty_relation() {
        let m = Morsels::new(0);
        assert!(m.claim().is_none());
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        scope_workers(1, |w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn map_workers_collects_in_order() {
        let vals = map_workers(6, |w| w * w);
        assert_eq!(vals, vec![0, 1, 4, 9, 16, 25]);
        let single = map_workers(1, |w| w + 41);
        assert_eq!(single, vec![41]);
    }
}
