//! Small deterministic PRNG (xoshiro256** seeded via SplitMix64).
//!
//! The workspace is dependency-free, so the data generators and the
//! benchmark harness use this instead of the `rand` crate. The generator
//! is seeded, portable and stable across platforms — the same `(sf,
//! seed)` always yields byte-identical databases, which the cross-engine
//! equivalence tests rely on.

use std::ops::{Range, RangeInclusive};

/// xoshiro256** by Blackman & Vigna: 256-bit state, fast, and far better
/// distributed than the benchmark data needs.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Expand a 64-bit seed into the full state (never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `range` (half-open or inclusive integer ranges).
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // Compare against p scaled to the full 64-bit range; exact enough
        // for data generation (p = 1.0 saturates to always-true).
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Multiply-shift bounded sampling (Lemire): uniform enough for data
/// generation, branch-free, deterministic.
#[inline]
fn bounded(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// Integer ranges a [`SmallRng`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($ty:ty) => {
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain range: any value is uniform.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + bounded(rng, span) as i128) as $ty
            }
        }
    };
}

impl_sample_range!(i32);
impl_sample_range!(i64);
impl_sample_range!(u32);
impl_sample_range!(u64);
impl_sample_range!(usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1i64..=7);
            assert!((1..=7).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
