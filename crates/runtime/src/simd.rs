//! Runtime SIMD capability detection (§5).
//!
//! The paper's SIMD study targets AVX-512 ("compress store" selections,
//! gathers, masking). We dispatch at runtime so the same binary runs the
//! scalar baselines unvectorized on any x86-64 and uses 512-bit (or
//! 256-bit) paths where present. The scalar fallback keeps non-x86 hosts
//! working.

/// Best instruction set available for the hand-written SIMD primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    Scalar,
    Avx2,
    /// AVX-512 F+BW+DQ+VL: compress-store, 16-lane gathers, masking.
    Avx512,
}

/// Detected once, cached.
pub fn simd_level() -> SimdLevel {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return SimdLevel::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        SimdLevel::Scalar
    })
}

/// Human-readable ISA summary for the Table 4 hardware report.
pub fn describe() -> String {
    let mut parts = vec![format!("dispatch={:?}", simd_level())];
    #[cfg(target_arch = "x86_64")]
    {
        for (name, have) in [
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx512bw", std::arch::is_x86_feature_detected!("avx512bw")),
            ("avx512vl", std::arch::is_x86_feature_detected!("avx512vl")),
        ] {
            if have {
                parts.push(name.to_string());
            }
        }
    }
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        assert_eq!(simd_level(), simd_level());
    }

    #[test]
    fn describe_mentions_dispatch() {
        assert!(describe().contains("dispatch="));
    }

    #[test]
    fn ordering_reflects_capability() {
        assert!(SimdLevel::Avx512 > SimdLevel::Avx2);
        assert!(SimdLevel::Avx2 > SimdLevel::Scalar);
    }
}
