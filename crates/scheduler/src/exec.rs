//! [`ExecCtx`] — how execution code reaches the scheduler.
//!
//! Every parallel region of the engines (fused scan loops, vectorized
//! chunk loops, hash-table publishes, partition merges, exchange
//! unions) is written against this context. With a [`QueryRun`]
//! attached, regions submit to the shared pool (morsel-level
//! inter-query scheduling, fixed worker count); without one, they fall
//! back to the original spawn-per-query scoped threads — inline on the
//! caller for `threads <= 1`, which keeps single-query measurements
//! clean and preserves the paper-reproduction perf path.

use crate::morsel::Morsels;
use crate::pool::QueryRun;
use crate::{map_workers, scope_workers};
use std::ops::Range;
use std::sync::Mutex;

/// Execution context of one query run: requested thread count plus the
/// optional pool attachment.
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    /// Requested degree of parallelism (`ExecCfg.threads`).
    pub threads: usize,
    /// Attached scheduler run; `None` = spawn-per-query fallback.
    pub run: Option<&'a QueryRun>,
}

impl<'a> ExecCtx<'a> {
    /// Single-threaded, inline execution (no pool, no spawns).
    pub fn inline() -> Self {
        ExecCtx {
            threads: 1,
            run: None,
        }
    }

    /// Spawn-per-query fallback at `threads` workers.
    pub fn spawn(threads: usize) -> Self {
        ExecCtx { threads, run: None }
    }

    /// Pool-attached execution; `threads` still caps this query's
    /// concurrent workers on the pool.
    pub fn pooled(threads: usize, run: &'a QueryRun) -> Self {
        ExecCtx {
            threads,
            run: Some(run),
        }
    }

    /// Number of worker *slots* bodies may be invoked with: the pool's
    /// worker count when attached (any pool worker may execute a
    /// morsel), the spawned worker count otherwise.
    pub fn workers(&self) -> usize {
        match self.run {
            Some(run) => run.workers(),
            None => self.threads.max(1),
        }
    }

    /// Effective degree of parallelism of this query: the requested
    /// thread count, capped by the pool size when pooled.
    pub fn parallelism(&self) -> usize {
        match self.run {
            Some(run) => self.threads.clamp(1, run.workers()),
            None => self.threads.max(1),
        }
    }

    /// Run `body(worker_id, range)` over every morsel of `morsels` —
    /// the parallel-region primitive everything else builds on.
    /// Returns when all morsels are done (pipeline barrier).
    pub fn for_each_morsel(&self, morsels: Morsels, body: impl Fn(usize, Range<usize>) + Sync) {
        match self.run {
            Some(run) => run.run_task(morsels, self.threads, &body),
            None => scope_workers(self.threads, |w| {
                while let Some(r) = morsels.claim() {
                    body(w, r);
                }
            }),
        }
    }

    /// Morsel scan with per-worker state (build shards, pre-aggregation
    /// shards, vector scratch): `init(worker_id)` lazily creates the
    /// slot state on the first morsel a worker executes, `fold` absorbs
    /// one morsel into it. Returns the states of the workers that
    /// actually participated, in slot order.
    pub fn map_slots<T: Send>(
        &self,
        morsels: Morsels,
        init: impl Fn(usize) -> T + Sync,
        fold: impl Fn(&mut T, Range<usize>) + Sync,
    ) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..self.workers()).map(|_| Mutex::new(None)).collect();
        self.for_each_morsel(morsels, |w, r| {
            // Uncontended: slot `w` is only ever touched by worker `w`
            // (one thread), morsel-at-a-time; the lock is for safety,
            // not synchronization.
            let mut slot = slots[w].lock().expect("worker slot");
            fold(slot.get_or_insert_with(|| init(w)), r);
        });
        slots
            .into_iter()
            .filter_map(|s| s.into_inner().expect("worker slot"))
            .collect()
    }

    /// Run `f(part)` once for each of `parts` independent work items
    /// (unit morsels) and collect the results in part order — the
    /// exchange-union / partition-merge shape.
    pub fn map_parts<T: Send>(&self, parts: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        if self.run.is_none() && self.parallelism() >= parts {
            // Fallback with enough workers: one scoped thread per part
            // (exactly the old map_workers behavior).
            return map_workers(parts, &f);
        }
        let out: Vec<Mutex<Option<T>>> = (0..parts).map(|_| Mutex::new(None)).collect();
        self.for_each_morsel(Morsels::with_size(parts, 1), |_, r| {
            for p in r {
                *out[p].lock().expect("part slot") = Some(f(p));
            }
        });
        out.into_iter()
            .map(|s| s.into_inner().expect("part slot").expect("part produced a value"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Scheduler, DEFAULT_PRIORITY};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn coverage(exec: &ExecCtx, total: usize) {
        let seen: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        exec.for_each_morsel(Morsels::with_size(total, 100), |_, r| {
            for i in r {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn morsel_coverage_identical_across_modes() {
        coverage(&ExecCtx::inline(), 5000);
        coverage(&ExecCtx::spawn(4), 5000);
        let pool = Scheduler::new(4);
        let run = pool.begin_query(DEFAULT_PRIORITY);
        coverage(&ExecCtx::pooled(4, &run), 5000);
        coverage(&ExecCtx::pooled(16, &run), 5000);
    }

    #[test]
    fn map_slots_folds_to_the_same_total_in_all_modes() {
        let check = |exec: ExecCtx| {
            let locals = exec.map_slots(
                Morsels::with_size(10_000, 128),
                |_| 0u64,
                |acc, r| *acc += r.map(|i| i as u64).sum::<u64>(),
            );
            assert!(locals.len() <= exec.workers());
            assert_eq!(locals.iter().sum::<u64>(), 9_999 * 10_000 / 2);
        };
        check(ExecCtx::inline());
        check(ExecCtx::spawn(3));
        let pool = Scheduler::new(2);
        let run = pool.begin_query(DEFAULT_PRIORITY);
        check(ExecCtx::pooled(2, &run));
    }

    #[test]
    fn map_slots_empty_scan_yields_no_states() {
        let states = ExecCtx::spawn(4).map_slots(Morsels::new(0), |_| 1u32, |_, _| {});
        assert!(states.is_empty());
    }

    #[test]
    fn map_parts_preserves_part_order() {
        let check = |exec: ExecCtx| {
            assert_eq!(exec.map_parts(7, |p| p * p), vec![0, 1, 4, 9, 16, 25, 36]);
        };
        check(ExecCtx::inline());
        check(ExecCtx::spawn(3));
        let pool = Scheduler::new(3);
        let run = pool.begin_query(DEFAULT_PRIORITY);
        check(ExecCtx::pooled(3, &run));
    }

    #[test]
    fn parallelism_is_capped_by_pool_size() {
        let pool = Scheduler::new(2);
        let run = pool.begin_query(DEFAULT_PRIORITY);
        assert_eq!(ExecCtx::pooled(8, &run).parallelism(), 2);
        assert_eq!(ExecCtx::pooled(1, &run).parallelism(), 1);
        assert_eq!(ExecCtx::pooled(8, &run).workers(), 2);
        assert_eq!(ExecCtx::spawn(8).parallelism(), 8);
        assert_eq!(ExecCtx::spawn(0).parallelism(), 1);
    }
}
