//! Morsel-driven scheduling (§6.1), from single-query to multi-tenant.
//!
//! Both engines parallelize the HyPer way \[22\]: the table-scan loop of
//! every pipeline is replaced by workers repeatedly *claiming* fixed-size
//! tuple ranges ("morsels") from a shared dispenser, and pipeline
//! breakers synchronize phases with a barrier. This crate owns all three
//! layers of that story:
//!
//! * [`Morsels`] — the lock-free dispenser of tuple ranges.
//! * [`scope_workers`]/[`map_workers`] — the *spawn-per-query* fallback:
//!   scoped OS threads for one parallel region, as the original
//!   reproduction did for every pipeline of every query run.
//! * [`Scheduler`] — a **persistent worker pool plus morsel-level
//!   inter-query scheduler**: a fixed set of workers executes morsels
//!   from all concurrently running queries, interleaving them by
//!   weighted round-robin, with an admission gate bounding the number of
//!   in-flight queries. Worker count stays fixed regardless of client
//!   concurrency.
//! * [`ExecCtx`] — the handle execution code is written against; it
//!   routes a parallel region to the pool when one is attached and to
//!   the spawn fallback (or inline execution) otherwise.
//! * [`StageTrace`] — per-pipeline-stage wall-time counters that the
//!   adaptive engine driver attaches to instrumented runs.

pub mod exec;
pub mod morsel;
pub mod pool;
pub mod stage;

pub use exec::ExecCtx;
pub use morsel::{Morsels, MORSEL_TUPLES};
pub use pool::{QueryRun, RunStats, Scheduler, DEFAULT_PRIORITY, MAX_PRIORITY};
pub use stage::{StageKind, StageTimer, StageTrace};

/// Run `f(worker_id)` on `threads` scoped workers (spawn-per-query
/// fallback). With `threads <= 1` the closure runs inline on the caller
/// (no thread spawn), which keeps single-threaded measurements clean.
pub fn scope_workers(threads: usize, f: impl Fn(usize) + Sync) {
    if threads <= 1 {
        f(0);
        return;
    }
    std::thread::scope(|s| {
        for w in 0..threads {
            let f = &f;
            s.spawn(move || f(w));
        }
    });
}

/// Collect one value per scoped worker from a parallel region (used to
/// gather thread-local build shards / pre-aggregation shards in the
/// spawn-per-query fallback).
pub fn map_workers<T: Send>(threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..threads.max(1)).map(|_| None).collect();
    if threads <= 1 {
        out[0] = Some(f(0));
    } else {
        let cells: Vec<std::sync::Mutex<&mut Option<T>>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        std::thread::scope(|s| {
            for (w, cell) in cells.iter().enumerate() {
                let f = &f;
                s.spawn(move || {
                    let v = f(w);
                    **cell.lock().expect("worker cell") = Some(v);
                });
            }
        });
    }
    out.into_iter()
        .map(|v| v.expect("worker produced a value"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn morsels_parallel_sum() {
        // Sum 0..N via 8 workers claiming morsels; must equal closed form.
        let n = 1_000_000usize;
        let m = Morsels::new(n);
        let total = AtomicU64::new(0);
        scope_workers(8, |_| {
            let mut local = 0u64;
            while let Some(r) = m.claim() {
                for i in r {
                    local += i as u64;
                }
            }
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        scope_workers(1, |w| {
            assert_eq!(w, 0);
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn map_workers_collects_in_order() {
        let vals = map_workers(6, |w| w * w);
        assert_eq!(vals, vec![0, 1, 4, 9, 16, 25]);
        let single = map_workers(1, |w| w + 41);
        assert_eq!(single, vec![41]);
    }
}
