//! The lock-free morsel dispenser (§6.1).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in tuples. HyPer-style systems use 10k–100k;
/// 16 Ki keeps per-claim overhead negligible while load-balancing well.
pub const MORSEL_TUPLES: usize = 16 * 1024;

/// A lock-free dispenser of tuple ranges over `0..total`.
pub struct Morsels {
    next: AtomicUsize,
    total: usize,
    morsel: usize,
}

impl Morsels {
    pub fn new(total: usize) -> Self {
        Self::with_size(total, MORSEL_TUPLES)
    }

    /// Dispenser with an explicit morsel size. Degenerate sizes are
    /// normalized here — once, instead of at every call site: zero
    /// becomes one tuple, and a morsel larger than the relation is
    /// clamped to the relation (so the claim cursor advances by at most
    /// `total` per claim and repeated claims cannot overflow it even
    /// for `usize::MAX`-sized requests).
    pub fn with_size(total: usize, morsel: usize) -> Self {
        Morsels {
            next: AtomicUsize::new(0),
            total,
            morsel: morsel.clamp(1, total.max(1)),
        }
    }

    /// Claim the next morsel; `None` once the relation is exhausted.
    #[inline]
    pub fn claim(&self) -> Option<Range<usize>> {
        // ORDERING: Relaxed — the fetch_add's atomicity alone makes the
        // claimed ranges disjoint; the morsel data itself is published
        // by the scheduler's run/join edges, not by this cursor.
        let start = self.next.fetch_add(self.morsel, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.morsel).min(self.total))
    }

    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` once no future [`Morsels::claim`] can succeed (the cursor
    /// moved past the relation). Observational only — it does not
    /// consume a morsel.
    pub fn is_exhausted(&self) -> bool {
        // ORDERING: Relaxed — advisory snapshot; a stale read only
        // delays the caller by one wasted claim.
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// The (normalized) morsel size tuples are dispensed in.
    pub fn morsel_size(&self) -> usize {
        self.morsel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_exactly_once() {
        let m = Morsels::with_size(100_000, 1024);
        let mut seen = vec![false; 100_000];
        while let Some(r) = m.claim() {
            for i in r {
                assert!(!seen[i], "tuple {i} dispensed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "gap in coverage");
    }

    #[test]
    fn empty_relation() {
        let m = Morsels::new(0);
        assert!(m.claim().is_none());
    }

    #[test]
    fn oversized_morsel_clamps_to_relation() {
        // morsel > total: one claim hands out the whole relation, and
        // the cursor cannot overflow no matter how often it is bumped.
        let m = Morsels::with_size(10, usize::MAX);
        assert_eq!(m.morsel_size(), 10);
        assert_eq!(m.claim(), Some(0..10));
        for _ in 0..1000 {
            assert!(m.claim().is_none());
        }
    }

    #[test]
    fn zero_morsel_normalizes_to_one() {
        let m = Morsels::with_size(3, 0);
        assert_eq!(m.morsel_size(), 1);
        assert_eq!(m.claim(), Some(0..1));
        assert_eq!(m.claim(), Some(1..2));
        assert_eq!(m.claim(), Some(2..3));
        assert!(m.claim().is_none());
    }

    #[test]
    fn empty_relation_with_degenerate_size() {
        let m = Morsels::with_size(0, 0);
        assert_eq!(m.morsel_size(), 1);
        assert!(m.claim().is_none());
    }
}
