//! The shared morsel-driven query scheduler.
//!
//! A [`Scheduler`] owns a fixed set of persistent worker threads. Query
//! executions register through the admission gate
//! ([`Scheduler::begin_query`], bounding in-flight queries), then submit
//! each pipeline as a *task*: a [`Morsels`] dispenser plus a
//! `Fn(worker_id, range)` body. Workers pick runnable tasks by
//! **weighted round-robin across active queries** (a query with
//! priority *p* receives *p* picks per cycle), claim one morsel, execute
//! it, and move on — so morsels from concurrently running queries
//! interleave at morsel granularity and worker count stays fixed at the
//! pool size no matter how many clients submit.
//!
//! [`QueryRun::run_task`] is the pipeline barrier: it returns only after
//! every morsel of the task has been executed, which is also what makes
//! the lifetime-erased body sound (see the safety comment there).
//!
//! Built on std threads, atomics, mutexes and condvars only — the
//! workspace stays dependency-free.

use crate::morsel::Morsels;
use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Priority a query runs at when nothing else is requested.
pub const DEFAULT_PRIORITY: usize = 1;
/// Upper bound for the per-query priority knob (picks per round-robin
/// cycle); keeps the pick list small.
pub const MAX_PRIORITY: usize = 16;

/// Scheduler-side counters of one query execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Time spent blocked at the admission gate before the run started.
    pub admission_wait: Duration,
    /// Summed time from task submission to its first executed morsel.
    pub queue_wait: Duration,
    /// Pipelines submitted as pool tasks.
    pub tasks: u64,
    /// Morsels executed on pool workers.
    pub morsels: u64,
    /// Morsels a worker took from this query while previously serving a
    /// different query — cross-query task switches.
    pub steals: u64,
    /// Column-payload bytes the query's scans touched. Scans of encoded
    /// companions report the packed width, so this measures the actual
    /// bandwidth demand (Table 5 model), not the logical row count.
    pub bytes_scanned: u64,
}

impl RunStats {
    /// Morsels executed on pool workers (`morsels`, under the name the
    /// observability layer exports it as).
    pub fn morsels_executed(&self) -> u64 {
        self.morsels
    }

    /// [`RunStats::queue_wait`] in integer nanoseconds, the unit the
    /// query log and metrics registry record.
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait.as_nanos() as u64
    }

    /// [`RunStats::admission_wait`] in integer nanoseconds.
    pub fn admission_wait_ns(&self) -> u64 {
        self.admission_wait.as_nanos() as u64
    }
}

#[derive(Default)]
struct StatsCell {
    admission_wait_ns: AtomicU64,
    queue_wait_ns: AtomicU64,
    tasks: AtomicU64,
    morsels: AtomicU64,
    steals: AtomicU64,
    bytes_scanned: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> RunStats {
        RunStats {
            // ORDERING: Relaxed — monotonic stats counters; snapshots
            // are approximate by design and publish no data.
            admission_wait: Duration::from_nanos(self.admission_wait_ns.load(Ordering::Relaxed)),
            queue_wait: Duration::from_nanos(self.queue_wait_ns.load(Ordering::Relaxed)),
            tasks: self.tasks.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
        }
    }
}

/// Lifetime-erased task body. Soundness: [`QueryRun::run_task`] blocks
/// until every execution of the body has finished, so the erased borrow
/// outlives all uses.
struct RawBody(*const (dyn Fn(usize, Range<usize>) + Sync));
// SAFETY: the pointee is `Sync` (shared execution from many workers is
// its contract) and is only dereferenced while `run_task` keeps the
// original reference alive.
unsafe impl Send for RawBody {}
unsafe impl Sync for RawBody {}

struct TaskState {
    morsels: Morsels,
    body: RawBody,
    /// Cap on workers executing this task concurrently (the query's
    /// effective degree of parallelism).
    max_workers: usize,
    priority: usize,
    /// Identifies the owning query run (for the steal counter).
    run_seq: u64,
    stats: Arc<StatsCell>,
    submitted: Instant,
    // All fields below are only mutated with the pool state lock held;
    // atomics keep them shareable through the `Arc` without unsafe.
    running: AtomicUsize,
    exhausted: AtomicBool,
    completed: AtomicBool,
    first_claim: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct PoolState {
    /// Tasks that may still have morsels to hand out.
    tasks: Vec<Arc<TaskState>>,
    /// Weighted round-robin pick list: indices into `tasks`, each task
    /// appearing `priority` times. Rebuilt whenever `tasks` changes.
    picks: Vec<usize>,
    cursor: usize,
    inflight: usize,
    next_run_seq: u64,
    shutdown: bool,
}

impl PoolState {
    fn rebuild_picks(&mut self) {
        self.picks.clear();
        for (i, t) in self.tasks.iter().enumerate() {
            for _ in 0..t.priority {
                self.picks.push(i);
            }
        }
        if !self.picks.is_empty() {
            self.cursor %= self.picks.len();
        } else {
            self.cursor = 0;
        }
    }
}

struct PoolInner {
    workers: usize,
    max_inflight: usize,
    state: Mutex<PoolState>,
    /// Workers wait here for runnable tasks.
    work_cv: Condvar,
    /// Submitters wait here for task completion.
    done_cv: Condvar,
    /// Queries wait here for admission.
    admit_cv: Condvar,
    /// Live worker-thread count (observability / leak tests).
    live: Arc<AtomicUsize>,
}

/// A persistent work pool + inter-query morsel scheduler. See the
/// module docs for the scheduling model.
pub struct Scheduler {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Pool with `workers` persistent threads (`0` normalizes to `1` —
    /// the degenerate-config clamp lives here, not at call sites) and
    /// the default admission bound of `4 × workers` in-flight queries.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self::with_limits(workers, 4 * workers)
    }

    /// Pool with an explicit admission bound (`max_inflight` is the
    /// number of concurrently *running* queries; further
    /// [`Scheduler::begin_query`] calls block until a slot frees).
    pub fn with_limits(workers: usize, max_inflight: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            workers,
            max_inflight: max_inflight.max(1),
            state: Mutex::new(PoolState {
                tasks: Vec::new(),
                picks: Vec::new(),
                cursor: 0,
                inflight: 0,
                next_run_seq: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            admit_cv: Condvar::new(),
            live: Arc::new(AtomicUsize::new(0)),
        });
        let handles = (0..workers)
            .map(|w| {
                // Counted on the spawning side so `live_workers` equals
                // `workers` deterministically from construction on; each
                // worker decrements on exit.
                inner.live.fetch_add(1, Ordering::SeqCst);
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dbep-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Scheduler {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// Fixed worker-thread count of this pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Admission bound on concurrently running queries.
    pub fn max_inflight(&self) -> usize {
        self.inner.max_inflight
    }

    /// Worker threads currently alive (== [`Scheduler::workers`] while
    /// the pool is up, `0` once dropped).
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Shareable handle onto the live-worker counter, usable after the
    /// scheduler itself is gone (shutdown/leak tests).
    pub fn live_counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.inner.live)
    }

    /// Tasks (pipelines) currently queued or running on the pool — the
    /// instantaneous work-queue depth a metrics gauge samples.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("pool state").tasks.len()
    }

    /// Query runs currently holding an admission slot.
    pub fn inflight(&self) -> usize {
        self.inner.state.lock().expect("pool state").inflight
    }

    /// Enter the admission gate: blocks while [`Scheduler::max_inflight`]
    /// queries are in flight, then registers a query run at `priority`
    /// (clamped to `1..=`[`MAX_PRIORITY`]; higher = more round-robin
    /// picks). The slot is released when the returned [`QueryRun`]
    /// drops.
    pub fn begin_query(&self, priority: usize) -> QueryRun {
        let t0 = Instant::now();
        let mut st = self.inner.state.lock().expect("pool state");
        while st.inflight >= self.inner.max_inflight && !st.shutdown {
            st = self.inner.admit_cv.wait(st).expect("pool state");
        }
        let shutdown = st.shutdown;
        if !shutdown {
            st.inflight += 1;
        }
        let run_seq = st.next_run_seq;
        st.next_run_seq += 1;
        // Panic only after releasing the lock so the mutex is not
        // poisoned for other waiters.
        drop(st);
        assert!(!shutdown, "begin_query on a shut-down scheduler");
        let stats = Arc::new(StatsCell::default());
        // ORDERING: Relaxed — stats counter, written before the cell is
        // shared and read only through snapshots.
        stats
            .admission_wait_ns
            .store(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        QueryRun {
            inner: Arc::clone(&self.inner),
            priority: priority.clamp(1, MAX_PRIORITY),
            run_seq,
            stats,
        }
    }

    /// Non-blocking admission: like [`Scheduler::begin_query`] but
    /// returns `None` immediately when [`Scheduler::max_inflight`]
    /// queries already hold slots, instead of parking the caller.
    ///
    /// This is the serving front door's backpressure primitive: a
    /// network server calls it per request and turns `None` into an
    /// explicit RETRY frame, so saturation surfaces to the client as a
    /// protocol fact rather than as unbounded server-side queueing.
    pub fn try_begin_query(&self, priority: usize) -> Option<QueryRun> {
        let mut st = self.inner.state.lock().expect("pool state");
        let shutdown = st.shutdown;
        if !shutdown {
            if st.inflight >= self.inner.max_inflight {
                return None;
            }
            st.inflight += 1;
        }
        let run_seq = st.next_run_seq;
        st.next_run_seq += 1;
        // Panic only after releasing the lock so the mutex is not
        // poisoned for other waiters.
        drop(st);
        assert!(!shutdown, "try_begin_query on a shut-down scheduler");
        Some(QueryRun {
            inner: Arc::clone(&self.inner),
            priority: priority.clamp(1, MAX_PRIORITY),
            run_seq,
            // Admission never waited: the stats cell starts at zero.
            stats: Arc::new(StatsCell::default()),
        })
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock().expect("pool state");
            st.shutdown = true;
        }
        // Wake everything: workers re-check the exit condition, and
        // threads parked at the admission gate fail fast instead of
        // hanging on a pool that will never admit them.
        self.inner.work_cv.notify_all();
        self.inner.admit_cv.notify_all();
        for h in self.handles.lock().expect("pool handles").drain(..) {
            let _ = h.join();
        }
    }
}

/// One admitted query execution: the handle pipelines are submitted
/// through, carrier of the priority knob and the per-run [`RunStats`].
/// Dropping it releases the admission slot.
pub struct QueryRun {
    inner: Arc<PoolInner>,
    priority: usize,
    run_seq: u64,
    stats: Arc<StatsCell>,
}

impl QueryRun {
    /// Worker-thread count of the pool this run executes on (the number
    /// of per-worker state slots a task body may be invoked with).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The priority this run's tasks are scheduled at.
    pub fn priority(&self) -> usize {
        self.priority
    }

    /// Scheduler counters accumulated by this run so far.
    pub fn stats(&self) -> RunStats {
        self.stats.snapshot()
    }

    /// Record `n` column-payload bytes touched by a scan. Called from
    /// the engines' pacing hooks; cheap enough for per-morsel use.
    #[inline]
    pub fn add_bytes(&self, n: u64) {
        // ORDERING: Relaxed — monotonic stats counter.
        self.stats.bytes_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Execute one pipeline: every morsel of `morsels` runs through
    /// `body(worker_id, range)` on the pool, at most `max_workers`
    /// workers at a time (clamped to the pool size). Returns when the
    /// last morsel has finished — the pipeline barrier.
    pub fn run_task(
        &self,
        morsels: Morsels,
        max_workers: usize,
        body: &(dyn Fn(usize, Range<usize>) + Sync),
    ) {
        if morsels.total() == 0 {
            return;
        }
        // ORDERING: Relaxed — monotonic stats counter.
        self.stats.tasks.fetch_add(1, Ordering::Relaxed);
        // SAFETY: we erase the body's lifetime to move it into the
        // worker-shared task; `run_task` blocks below until the task is
        // complete (every body invocation returned), so the reference
        // outlives every dereference on the workers.
        let body: *const (dyn Fn(usize, Range<usize>) + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(usize, Range<usize>) + Sync)) };
        let task = Arc::new(TaskState {
            morsels,
            body: RawBody(body),
            max_workers: max_workers.clamp(1, self.inner.workers),
            priority: self.priority,
            run_seq: self.run_seq,
            stats: Arc::clone(&self.stats),
            submitted: Instant::now(),
            running: AtomicUsize::new(0),
            exhausted: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            first_claim: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.inner.state.lock().expect("pool state");
            // After shutdown the workers are (being) joined; enqueueing
            // would hang the barrier forever. Panic with the lock
            // released instead (no poisoning).
            let shutdown = st.shutdown;
            if !shutdown {
                st.tasks.push(Arc::clone(&task));
                st.rebuild_picks();
            }
            drop(st);
            assert!(!shutdown, "run_task on a shut-down scheduler");
        }
        self.inner.work_cv.notify_all();
        let mut st = self.inner.state.lock().expect("pool state");
        // ORDERING: Relaxed — `completed` is only ever set with the
        // state lock held (which we hold here); the mutex is the
        // happens-before edge for everything the task wrote.
        while !task.completed.load(Ordering::Relaxed) {
            st = self.inner.done_cv.wait(st).expect("pool state");
        }
        drop(st);
        let payload = task.panic.lock().expect("task panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for QueryRun {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("pool state");
        st.inflight -= 1;
        drop(st);
        self.inner.admit_cv.notify_one();
    }
}

/// Pick a runnable task and claim one of its morsels. Runs with the
/// state lock held. Weighted round-robin: the cursor walks the pick
/// list; tasks at their `max_workers` cap are skipped; an exhausted
/// task is retired from the claimable set (and completed here if no
/// morsel of it is still running).
fn claim_next(inner: &PoolInner, st: &mut PoolState) -> Option<(Arc<TaskState>, Range<usize>)> {
    'rescan: loop {
        let n = st.picks.len();
        for k in 0..n {
            let pi = (st.cursor + k) % n;
            let task = &st.tasks[st.picks[pi]];
            // ORDERING: Relaxed everywhere in claim_next — the
            // TaskState flag/count atomics are read and written only
            // with the state lock held (we hold it), so the mutex
            // orders them; queue_wait_ns is a stats counter.
            if task.running.load(Ordering::Relaxed) >= task.max_workers {
                continue;
            }
            match task.morsels.claim() {
                Some(r) => {
                    st.cursor = (pi + 1) % n;
                    let task = Arc::clone(task);
                    // ORDERING: as above — state lock held.
                    task.running.fetch_add(1, Ordering::Relaxed);
                    if !task.first_claim.swap(true, Ordering::Relaxed) {
                        task.stats
                            .queue_wait_ns
                            .fetch_add(task.submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    return Some((task, r));
                }
                None => {
                    // Retire the exhausted task; if nothing is mid-morsel
                    // it is already complete.
                    // ORDERING: as above — state lock held.
                    task.exhausted.store(true, Ordering::Relaxed);
                    let task = Arc::clone(task);
                    st.tasks.retain(|t| !Arc::ptr_eq(t, &task));
                    st.rebuild_picks();
                    // ORDERING: as above — state lock held.
                    if task.running.load(Ordering::Relaxed) == 0
                        && !task.completed.swap(true, Ordering::Relaxed)
                    {
                        inner.done_cv.notify_all();
                    }
                    if st.shutdown {
                        // Parked workers must re-check the (shutdown,
                        // tasks-empty) exit condition now that the
                        // claimable set shrank.
                        inner.work_cv.notify_all();
                    }
                    continue 'rescan;
                }
            }
        }
        return None;
    }
}

fn worker_loop(inner: &PoolInner, worker_id: usize) {
    // Last query run this worker executed a morsel for — switching away
    // from it counts as a steal on the query being switched to.
    let mut last_seq: Option<u64> = None;
    let mut st = inner.state.lock().expect("pool state");
    loop {
        match claim_next(inner, &mut st) {
            Some((task, range)) => {
                if last_seq.is_some_and(|s| s != task.run_seq) {
                    // ORDERING: Relaxed — monotonic stats counter.
                    task.stats.steals.fetch_add(1, Ordering::Relaxed);
                }
                last_seq = Some(task.run_seq);
                // ORDERING: Relaxed — monotonic stats counter.
                task.stats.morsels.fetch_add(1, Ordering::Relaxed);
                drop(st);
                // SAFETY: the submitter blocks in `run_task` until this
                // task completes, keeping the erased body alive.
                let body = unsafe { &*task.body.0 };
                let result = catch_unwind(AssertUnwindSafe(|| body(worker_id, range)));
                st = inner.state.lock().expect("pool state");
                // ORDERING: Relaxed for every TaskState flag/count
                // atomic in this block — they are read and written only
                // with the state lock held (reacquired above), so the
                // mutex is the happens-before edge.
                let was_exhausted = task.exhausted.load(Ordering::Relaxed);
                if let Err(payload) = result {
                    *task.panic.lock().expect("task panic slot") = Some(payload);
                    // Poisoned task: stop handing out its morsels.
                    // ORDERING: as above — state lock held.
                    task.exhausted.store(true, Ordering::Relaxed);
                    st.tasks.retain(|t| !Arc::ptr_eq(t, &task));
                    st.rebuild_picks();
                } else if !was_exhausted && task.morsels.is_exhausted() {
                    // Eager barrier release: the dispenser drained while
                    // we ran its last claimed morsel. Retire the task now
                    // instead of waiting for a future pick-walk to visit
                    // it — otherwise the submitter could stay blocked
                    // behind other queries' long morsels with all of its
                    // own work already finished.
                    // ORDERING: as above — state lock held.
                    task.exhausted.store(true, Ordering::Relaxed);
                    st.tasks.retain(|t| !Arc::ptr_eq(t, &task));
                    st.rebuild_picks();
                }
                // ORDERING: as above — state lock held.
                let prev = task.running.fetch_sub(1, Ordering::Relaxed);
                if task.exhausted.load(Ordering::Relaxed) {
                    if prev == 1 && !task.completed.swap(true, Ordering::Relaxed) {
                        inner.done_cv.notify_all();
                    }
                    if st.shutdown {
                        // Parked workers re-check the exit condition
                        // (the claimable set may just have emptied).
                        inner.work_cv.notify_all();
                    }
                } else {
                    // This task dropped below its worker cap — another
                    // waiter may be able to pick it up now.
                    inner.work_cv.notify_one();
                }
            }
            None => {
                if st.shutdown && st.tasks.is_empty() {
                    break;
                }
                st = inner.work_cv.wait(st).expect("pool state");
            }
        }
    }
    drop(st);
    inner.live.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;
    use std::sync::Barrier;

    #[test]
    fn zero_workers_clamps_to_one() {
        let s = Scheduler::new(0);
        assert_eq!(s.workers(), 1);
        assert_eq!(s.live_workers(), 1);
    }

    #[test]
    fn pool_executes_every_morsel_exactly_once() {
        let s = Scheduler::new(4);
        let run = s.begin_query(DEFAULT_PRIORITY);
        let seen: Vec<AtomicUsize> = (0..100_000).map(|_| AtomicUsize::new(0)).collect();
        run.run_task(Morsels::with_size(100_000, 1024), 4, &|_, r| {
            for i in r {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "tuple {i}");
        }
        let stats = run.stats();
        assert_eq!(stats.tasks, 1);
        assert_eq!(stats.morsels, 100_000usize.div_ceil(1024) as u64);
    }

    #[test]
    fn try_begin_query_refuses_when_saturated() {
        let s = Scheduler::with_limits(1, 2);
        let a = s.try_begin_query(DEFAULT_PRIORITY).expect("slot 1 free");
        let b = s.try_begin_query(DEFAULT_PRIORITY).expect("slot 2 free");
        assert_eq!(s.inflight(), 2);
        assert!(
            s.try_begin_query(DEFAULT_PRIORITY).is_none(),
            "gate is full: non-blocking admission must refuse"
        );
        drop(a);
        let c = s.try_begin_query(DEFAULT_PRIORITY).expect("slot freed by drop");
        assert_eq!(s.inflight(), 2);
        // Admitted runs execute exactly like blocking admissions.
        let hits = AtomicUsize::new(0);
        c.run_task(Morsels::with_size(100, 10), 1, &|_, r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(c.stats().admission_wait_ns(), 0, "try admission never waits");
        drop((b, c));
        assert_eq!(s.inflight(), 0);
    }

    #[test]
    fn empty_task_returns_immediately() {
        let s = Scheduler::new(1);
        let run = s.begin_query(DEFAULT_PRIORITY);
        run.run_task(Morsels::new(0), 8, &|_, _| panic!("no morsels to run"));
        assert_eq!(run.stats().tasks, 0);
    }

    #[test]
    fn max_workers_bounds_task_concurrency() {
        let s = Scheduler::new(8);
        let run = s.begin_query(DEFAULT_PRIORITY);
        let active = AtomicI64::new(0);
        let peak = AtomicI64::new(0);
        run.run_task(Morsels::with_size(256, 1), 2, &|_, _| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(200));
            active.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn concurrent_queries_interleave_on_one_worker() {
        // One worker, two queries whose execution windows must overlap:
        // with morsel-level round-robin the single worker switches
        // between the tasks instead of draining one first.
        let s = Arc::new(Scheduler::new(1));
        let barrier = Arc::new(Barrier::new(2));
        let order = Arc::new(Mutex::new(Vec::<usize>::new()));
        let mut joins = Vec::new();
        for q in 0..2usize {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            let order = Arc::clone(&order);
            joins.push(std::thread::spawn(move || {
                let run = s.begin_query(DEFAULT_PRIORITY);
                barrier.wait();
                run.run_task(Morsels::with_size(40, 1), 1, &|_, _| {
                    order.lock().unwrap().push(q);
                    std::thread::sleep(Duration::from_millis(1));
                });
                run.stats()
            }));
        }
        let stats: Vec<RunStats> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 80);
        let first_1 = order.iter().position(|&q| q == 1).unwrap();
        let last_0 = order.iter().rposition(|&q| q == 0).unwrap();
        let first_0 = order.iter().position(|&q| q == 0).unwrap();
        let last_1 = order.iter().rposition(|&q| q == 1).unwrap();
        assert!(
            first_1 < last_0 && first_0 < last_1,
            "queries did not interleave: {order:?}"
        );
        // The worker switched between queries, so steals were recorded.
        assert!(stats.iter().map(|s| s.steals).sum::<u64>() > 0);
        assert_eq!(stats.iter().map(|s| s.morsels).sum::<u64>(), 80);
    }

    #[test]
    fn priority_weights_round_robin() {
        // Equal-length queries on one worker: the priority-4 query gets
        // 4 picks per cycle and must finish well before the priority-1
        // query that started alongside it.
        let s = Arc::new(Scheduler::new(1));
        let started_high = Arc::new(AtomicBool::new(false));
        let done = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let mut joins = Vec::new();
        {
            let (s, started, done) = (Arc::clone(&s), Arc::clone(&started_high), Arc::clone(&done));
            joins.push(std::thread::spawn(move || {
                let run = s.begin_query(4);
                run.run_task(Morsels::with_size(60, 1), 1, &|_, _| {
                    started.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(500));
                });
                done.lock().unwrap().push("high");
            }));
        }
        {
            let (s, started, done) = (Arc::clone(&s), started_high, Arc::clone(&done));
            joins.push(std::thread::spawn(move || {
                // Submit only once the high-priority task is running, so
                // both are concurrently schedulable from then on.
                while !started.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                let run = s.begin_query(1);
                run.run_task(Morsels::with_size(60, 1), 1, &|_, _| {
                    std::thread::sleep(Duration::from_micros(500));
                });
                done.lock().unwrap().push("low");
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*done.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn admission_gate_bounds_inflight_queries() {
        let s = Arc::new(Scheduler::with_limits(1, 1));
        let first = s.begin_query(DEFAULT_PRIORITY);
        let admitted = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (s, admitted) = (Arc::clone(&s), Arc::clone(&admitted));
            std::thread::spawn(move || {
                let run = s.begin_query(DEFAULT_PRIORITY);
                admitted.store(true, Ordering::SeqCst);
                assert!(run.stats().admission_wait > Duration::ZERO);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !admitted.load(Ordering::SeqCst),
            "second query admitted past the gate"
        );
        drop(first);
        waiter.join().unwrap();
        assert!(admitted.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_while_task_in_flight_drains_and_joins() {
        // Regression: a worker parked on work_cv during shutdown must be
        // re-woken when the busy worker completes the final task, or
        // Scheduler::drop joins forever. The QueryRun deliberately only
        // holds Arc<PoolInner>, so dropping the Scheduler mid-run is
        // possible; the run must still complete.
        let s = Scheduler::new(2);
        let live = s.live_counter();
        let run = s.begin_query(DEFAULT_PRIORITY);
        let executed = Arc::new(AtomicUsize::new(0));
        let submitter = {
            let executed = Arc::clone(&executed);
            std::thread::spawn(move || {
                // max_workers = 1 keeps the second worker idle (parked).
                run.run_task(Morsels::with_size(6, 1), 1, &|_, _| {
                    std::thread::sleep(Duration::from_millis(10));
                    executed.fetch_add(1, Ordering::SeqCst);
                });
            })
        };
        std::thread::sleep(Duration::from_millis(15)); // task is mid-flight
        drop(s); // must drain the task, wake the parked worker, and join
        submitter.join().unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), 6);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn run_task_after_scheduler_drop_panics_cleanly() {
        // A QueryRun holds Arc<PoolInner>, not the Scheduler itself, so
        // it can outlive the pool. Submitting to the shut-down pool must
        // fail loudly (the workers are gone — the barrier would hang
        // forever) without poisoning the state mutex.
        let s = Scheduler::new(1);
        let run = s.begin_query(DEFAULT_PRIORITY);
        drop(s);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run.run_task(Morsels::with_size(4, 1), 1, &|_, _| {});
        }));
        assert!(result.is_err(), "run_task on a dead pool must panic, not hang");
        // The mutex must not be poisoned: releasing the admission slot
        // (QueryRun::drop) still works.
        drop(run);
    }

    #[test]
    fn drained_task_releases_its_barrier_before_other_queries_finish() {
        // Regression: query A's barrier must release as soon as A's last
        // morsel finishes, even while query B still has long morsels
        // queued — not when a later pick-walk happens to revisit A.
        let s = Arc::new(Scheduler::new(1));
        let b_started = Arc::new(AtomicBool::new(false));
        let b = {
            let (s, b_started) = (Arc::clone(&s), Arc::clone(&b_started));
            std::thread::spawn(move || {
                let run = s.begin_query(DEFAULT_PRIORITY);
                run.run_task(Morsels::with_size(5, 1), 1, &|_, _| {
                    b_started.store(true, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(100));
                });
            })
        };
        while !b_started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // B occupies the only worker; A's single tiny morsel runs in one
        // of the round-robin gaps and must return right after it.
        let run = s.begin_query(DEFAULT_PRIORITY);
        let t0 = Instant::now();
        run.run_task(Morsels::with_size(1, 1), 1, &|_, _| {});
        let a_elapsed = t0.elapsed();
        assert!(
            a_elapsed < Duration::from_millis(300),
            "A waited {a_elapsed:?} — barrier held hostage by B's morsels"
        );
        b.join().unwrap();
    }

    #[test]
    fn workers_join_on_drop() {
        let s = Scheduler::new(3);
        let live = s.live_counter();
        assert_eq!(live.load(Ordering::SeqCst), 3);
        let run = s.begin_query(DEFAULT_PRIORITY);
        let sum = AtomicI64::new(0);
        run.run_task(Morsels::with_size(10_000, 64), 3, &|_, r| {
            sum.fetch_add(r.len() as i64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000);
        drop(run);
        drop(s);
        assert_eq!(live.load(Ordering::SeqCst), 0, "worker threads leaked past drop");
    }

    #[test]
    fn body_panic_propagates_to_submitter() {
        let s = Scheduler::new(2);
        let run = s.begin_query(DEFAULT_PRIORITY);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run.run_task(Morsels::with_size(8, 1), 2, &|_, r| {
                if r.start == 3 {
                    panic!("boom at morsel 3");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must surface at the barrier");
        // The pool survives and runs subsequent tasks.
        let count = AtomicI64::new(0);
        run.run_task(Morsels::with_size(4, 1), 2, &|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
