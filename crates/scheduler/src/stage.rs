//! Per-stage counter plumbing for adaptive (per-pipeline) execution.
//!
//! A query plan is a sequence of pipelines separated by breakers (hash
//! table builds, aggregation merges). The adaptive driver in
//! `dbep_core` needs to know how long *each* pipeline took under each
//! engine, not just the end-to-end time [`crate::pool::RunStats`] reports —
//! so execution code brackets every pipeline with a [`StageTrace`]
//! recording, and the driver compares traces across engines to pick a
//! winner per stage.
//!
//! Recording is atomic-add only: workers of a morsel-driven pipeline
//! may finish on different OS threads, and the spawn-per-query fallback
//! records from inside scoped threads. A trace is attached per *run*
//! (not shared across runs), so all adds for one stage index belong to
//! one (query, engine) execution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a pipeline stage predominantly does — the coarse shape the
/// paper's analysis (§4) ties engine preference to: compiled (Typer)
/// engines win fused scan/filter/aggregate computation, vectorized
/// (Tectorwise) engines win cache-miss-bound hash-table probes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Selection-dominated table scan (may feed a small aggregate).
    ScanFilter,
    /// Scan feeding a hash-table build (pipeline breaker).
    JoinBuild,
    /// Scan probing one or more hash tables.
    JoinProbe,
    /// Aggregation-dominated pipeline (group-by sink).
    Aggregate,
}

impl StageKind {
    /// Short lowercase label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::ScanFilter => "scan-filter",
            StageKind::JoinBuild => "join-build",
            StageKind::JoinProbe => "join-probe",
            StageKind::Aggregate => "aggregate",
        }
    }
}

/// Per-stage wall-time accumulator for one query execution.
///
/// One slot per declared pipeline stage; execution code obtains a
/// [`StageTimer`] per stage and the elapsed nanoseconds are added on
/// drop. Slots accumulate (a stage re-entered by several workers sums
/// their spans), and a fresh trace is attached per run, so a slot is
/// the total wall time attributable to that stage in that run.
#[derive(Debug)]
pub struct StageTrace {
    ns: Vec<AtomicU64>,
}

impl StageTrace {
    /// Trace with `stages` zeroed slots.
    pub fn new(stages: usize) -> Self {
        StageTrace {
            ns: (0..stages).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn stages(&self) -> usize {
        self.ns.len()
    }

    /// Add `ns` nanoseconds to stage `idx`. Out-of-range indices are
    /// ignored (a plan/trace mismatch must not corrupt neighbours).
    pub fn record_ns(&self, idx: usize, ns: u64) {
        if let Some(slot) = self.ns.get(idx) {
            // ORDERING: Relaxed — monotonic timing counter; totals are
            // read after the query joins, never to synchronize.
            slot.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Start timing stage `idx`; elapsed time is recorded when the
    /// returned guard drops.
    pub fn start(&self, idx: usize) -> StageTimer<'_> {
        StageTimer {
            trace: self,
            idx,
            t0: Instant::now(),
        }
    }

    /// Snapshot of accumulated nanoseconds per stage.
    pub fn snapshot(&self) -> Vec<u64> {
        // ORDERING: Relaxed — see [`StageTrace::record_ns`]; the
        // query's join edge orders writes before this read.
        self.ns.iter().map(|s| s.load(Ordering::Relaxed)).collect()
    }
}

/// RAII timer for one stage of a [`StageTrace`]; records on drop.
#[derive(Debug)]
pub struct StageTimer<'a> {
    trace: &'a StageTrace,
    idx: usize,
    t0: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.trace
            .record_ns(self.idx, self.t0.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let t = StageTrace::new(3);
        t.record_ns(0, 5);
        t.record_ns(0, 7);
        t.record_ns(2, 100);
        assert_eq!(t.snapshot(), vec![12, 0, 100]);
        assert_eq!(t.stages(), 3);
    }

    #[test]
    fn out_of_range_is_ignored() {
        let t = StageTrace::new(1);
        t.record_ns(5, 99);
        assert_eq!(t.snapshot(), vec![0]);
    }

    #[test]
    fn timer_records_on_drop() {
        let t = StageTrace::new(2);
        {
            let _g = t.start(1);
            std::hint::black_box(0u64);
        }
        let snap = t.snapshot();
        assert_eq!(snap[0], 0);
        assert!(snap[1] > 0, "drop must record elapsed time");
    }

    #[test]
    fn concurrent_adds_sum() {
        let t = StageTrace::new(1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.record_ns(0, 1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot(), vec![8000]);
    }

    #[test]
    fn kind_names() {
        assert_eq!(StageKind::ScanFilter.name(), "scan-filter");
        assert_eq!(StageKind::JoinBuild.name(), "join-build");
        assert_eq!(StageKind::JoinProbe.name(), "join-probe");
        assert_eq!(StageKind::Aggregate.name(), "aggregate");
    }
}
