//! Column representations.
//!
//! Columns are plain contiguous arrays — exactly what both execution
//! paradigms in the paper scan. Accessors return slices so hot loops work
//! on `&[T]` with no indirection.

use crate::types::Date;

/// Variable-length string column: one contiguous byte buffer plus
/// `len + 1` offsets. Equivalent to the paper's test-system string
/// columns; no per-string allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrColumn {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl StrColumn {
    pub fn new() -> Self {
        StrColumn {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        StrColumn {
            offsets,
            bytes: Vec::with_capacity(bytes),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push(&mut self, s: &str) {
        let end = Self::offset_after(self.bytes.len(), s.len());
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(end);
    }

    /// Offset after appending `add` bytes to a buffer of `cur` bytes.
    /// A real check, not a `debug_assert!`: a silent `u32` wrap past
    /// 4 GiB would corrupt every later offset in a release build.
    fn offset_after(cur: usize, add: usize) -> u32 {
        match cur.checked_add(add).and_then(|n| u32::try_from(n).ok()) {
            Some(n) => n,
            None => panic!("StrColumn overflow: {cur} + {add} bytes exceeds u32 offset range"),
        }
    }

    /// Byte slice of row `i` (strings are ASCII in TPC-H/SSB).
    #[inline]
    pub fn get_bytes(&self, i: usize) -> &[u8] {
        &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    #[inline]
    pub fn get(&self, i: usize) -> &str {
        // Generators only ever push &str, so the bytes are valid UTF-8.
        std::str::from_utf8(self.get_bytes(i)).expect("StrColumn holds UTF-8")
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total payload bytes (used by the Table 5 bandwidth model).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.bytes.len() + self.offsets.len() * 4
    }
}

impl<'a> FromIterator<&'a str> for StrColumn {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        let mut c = StrColumn::new();
        for s in iter {
            c.push(s);
        }
        c
    }
}

/// A typed column. The engines match on this once per query (plan
/// construction), never per tuple.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    I32(Vec<i32>),
    I64(Vec<i64>),
    /// Days since epoch.
    Date(Vec<Date>),
    /// Single-character codes such as `l_returnflag`.
    Char(Vec<u8>),
    Str(StrColumn),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Char(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes occupied by the column payload (Table 5 bandwidth model).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::I32(v) => v.len() * 4,
            ColumnData::I64(v) => v.len() * 8,
            ColumnData::Date(v) => v.len() * 4,
            ColumnData::Char(v) => v.len(),
            ColumnData::Str(v) => v.byte_size(),
        }
    }

    #[inline]
    pub fn i32s(&self) -> &[i32] {
        match self {
            ColumnData::I32(v) => v,
            other => panic!("expected I32 column, found {}", other.type_name()),
        }
    }

    #[inline]
    pub fn i64s(&self) -> &[i64] {
        match self {
            ColumnData::I64(v) => v,
            other => panic!("expected I64 column, found {}", other.type_name()),
        }
    }

    #[inline]
    pub fn dates(&self) -> &[Date] {
        match self {
            ColumnData::Date(v) => v,
            other => panic!("expected Date column, found {}", other.type_name()),
        }
    }

    #[inline]
    pub fn chars(&self) -> &[u8] {
        match self {
            ColumnData::Char(v) => v,
            other => panic!("expected Char column, found {}", other.type_name()),
        }
    }

    #[inline]
    pub fn strs(&self) -> &StrColumn {
        match self {
            ColumnData::Str(v) => v,
            other => panic!("expected Str column, found {}", other.type_name()),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            ColumnData::I32(_) => "i32",
            ColumnData::I64(_) => "i64",
            ColumnData::Date(_) => "date",
            ColumnData::Char(_) => "char",
            ColumnData::Str(_) => "str",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_column_roundtrip() {
        let mut c = StrColumn::new();
        c.push("BUILDING");
        c.push("");
        c.push("green almond antique");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), "BUILDING");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "green almond antique");
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec!["BUILDING", "", "green almond antique"]
        );
    }

    #[test]
    fn str_column_from_iter() {
        let c: StrColumn = ["a", "bb", "ccc"].into_iter().collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), "ccc");
        assert_eq!(c.byte_size(), 6 + 4 * 4);
    }

    #[test]
    fn offset_after_checks_u32_range() {
        assert_eq!(StrColumn::offset_after(0, 5), 5);
        assert_eq!(StrColumn::offset_after(u32::MAX as usize - 1, 1), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "StrColumn overflow")]
    fn offset_after_panics_past_u32() {
        StrColumn::offset_after(u32::MAX as usize, 1);
    }

    #[test]
    #[should_panic(expected = "StrColumn overflow")]
    fn offset_after_panics_on_usize_wrap() {
        StrColumn::offset_after(usize::MAX, 1);
    }

    #[test]
    fn typed_accessors() {
        let c = ColumnData::I32(vec![1, 2, 3]);
        assert_eq!(c.i32s(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.byte_size(), 12);
    }

    #[test]
    #[should_panic(expected = "expected I64 column")]
    fn wrong_accessor_panics() {
        ColumnData::I32(vec![1]).i64s();
    }
}
