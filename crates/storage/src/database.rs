//! The database catalog: a named set of tables.

use crate::table::Table;
use std::collections::HashMap;

/// A database: the unit both benchmark generators produce and all engines
/// consume.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    pub fn add(&mut self, table: Table) -> &mut Self {
        self.tables.insert(table.name().to_string(), table);
        self
    }

    /// Table by name; panics with the name on a miss (plan-construction
    /// error).
    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("database has no table {name}"))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> + '_ {
        self.tables.values()
    }

    /// Total payload bytes (used to report working-set sizes).
    pub fn byte_size(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }

    /// Build compressed companions for every encodable column of every
    /// table, sharing one allocation arena across the pass.
    pub fn encode_all(&mut self) {
        let arena = crate::encoded::Arena::new();
        for table in self.tables.values_mut() {
            table.encode_all(&arena);
        }
    }

    /// True once [`Database::encode_all`] (or a per-table equivalent)
    /// has built at least one compressed companion.
    pub fn is_encoded(&self) -> bool {
        self.tables.values().any(|t| t.encoded_byte_size() > 0)
    }

    /// Encoded payload bytes across all tables.
    pub fn encoded_byte_size(&self) -> usize {
        self.tables.values().map(|t| t.encoded_byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    #[test]
    fn add_and_lookup() {
        let mut db = Database::new();
        let mut t = Table::new("nation");
        t.add_column("n_nationkey", ColumnData::I32(vec![0, 1]));
        db.add(t);
        assert!(db.has_table("nation"));
        assert_eq!(db.table("nation").len(), 2);
        assert_eq!(db.tables().count(), 1);
        assert_eq!(db.byte_size(), 8);
    }

    #[test]
    #[should_panic(expected = "no table")]
    fn missing_table_panics() {
        Database::new().table("lineitem");
    }
}
