//! Compressed column representations (ROADMAP item 3).
//!
//! The paper's Table 5 experiments show Q1/Q6-style scans are bound by
//! bytes moved, not instructions retired. This module shrinks the stored
//! form so fused scan kernels (see `dbep-vectorized::sel` and
//! `dbep-compiled::packed`) touch fewer bytes without a separate
//! decompression pass:
//!
//! * [`PackedInts`] — frame-of-reference bit-packing for `i32`/`i64`/date
//!   columns. The per-column bit width is chosen at load time from the
//!   observed min/max: `width = bits(max - min)`, `0` for all-equal
//!   columns, and a raw 64-bit fallback when the range needs more than
//!   57 bits (the widest value a byte-aligned 64-bit SIMD extraction can
//!   decode, see below).
//! * [`DictStrColumn`] — dictionary coding for low-cardinality string
//!   columns: a `u8` code per row plus a sorted [`StrColumn`] dictionary
//!   kept as the decode target. Columns with more than 256 distinct
//!   values stay flat.
//!
//! All payloads live in 64-byte-aligned [`AlignedBuf`] allocations handed
//! out by a reusable [`Arena`], so scans start cache-line-aligned and
//! reload cycles recycle buffers instead of churning the allocator.
//!
//! Bit layout: value `i` of a width-`w` column occupies bits
//! `[i*w, i*w + w)` of the little-endian `u64` word stream. Every buffer
//! carries at least one trailing padding word so SIMD kernels may gather
//! a full 8-byte window at byte offset `(i*w) >> 3` for any valid row —
//! that window covers widths up to `64 - 7 = 57` bits after the
//! sub-byte shift, which is why wider ranges fall back to raw storage.

use crate::column::{ColumnData, StrColumn};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::Deref;
use std::ptr::NonNull;

/// Widest bit width the fused SIMD kernels can decode (byte-aligned
/// 8-byte gather + sub-byte shift leaves 57 usable bits).
pub const MAX_PACKED_WIDTH: u32 = 57;

const ALIGN: usize = 64;

/// A 64-byte-aligned, zero-initialised `u64` buffer.
///
/// Plain `Vec<u64>` only guarantees 8-byte alignment; the fused scan
/// kernels want cache-line-aligned starts (SNIPPETS.md Snippet 1 makes
/// the same demand of its column allocations).
pub struct AlignedBuf {
    ptr: NonNull<u64>,
    words: usize,
    cap: usize,
}

// SAFETY: the buffer is an owned, uniquely-allocated memory region; the
// raw pointer is only an artifact of manual alignment.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(cap * 8, ALIGN).expect("AlignedBuf layout")
    }

    /// Allocate `words` zeroed `u64`s (at least one, so the pointer is
    /// always dereferenceable).
    pub fn new_zeroed(words: usize) -> Self {
        let cap = words.max(1);
        let layout = Self::layout(cap);
        // SAFETY: layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw as *mut u64) else {
            handle_alloc_error(layout)
        };
        AlignedBuf { ptr, words, cap }
    }

    /// Logical length in `u64` words.
    pub fn len(&self) -> usize {
        self.words
    }

    pub fn is_empty(&self) -> bool {
        self.words == 0
    }

    /// Allocated capacity in `u64` words.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        // SAFETY: `words <= cap` and the allocation is initialised.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.words) }
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        // SAFETY: as above, and `&mut self` gives unique access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.words) }
    }

    /// Byte view of the first `len` bytes (`len <= 8 * capacity`).
    #[inline]
    pub fn as_bytes(&self, len: usize) -> &[u8] {
        assert!(len <= self.cap * 8, "byte view exceeds allocation");
        // SAFETY: in-bounds per the assert; u8 has no validity invariant.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr() as *const u8, len) }
    }

    /// Shrink-to-fit reuse: rezero and set the logical length. Panics if
    /// `words` exceeds capacity (arena reuse picks a large-enough buffer).
    fn reset(&mut self, words: usize) {
        assert!(words <= self.cap, "AlignedBuf reset beyond capacity");
        self.words = words;
        // SAFETY: zeroing the full capacity is in-bounds.
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, self.cap) };
    }
}

impl Deref for AlignedBuf {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: allocated with the identical layout in `new_zeroed`.
        unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        let mut copy = AlignedBuf::new_zeroed(self.words);
        copy.as_mut_slice().copy_from_slice(self.as_slice());
        copy
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf({} words)", self.words)
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A free-list of [`AlignedBuf`]s so reload cycles (parameter sweeps,
/// repeated `generate_encoded` calls) reuse allocations instead of
/// round-tripping the system allocator for every column.
#[derive(Default)]
pub struct Arena {
    free: RefCell<Vec<AlignedBuf>>,
}

impl Arena {
    pub fn new() -> Self {
        Arena::default()
    }

    /// Hand out a zeroed buffer of at least `words` words, reusing a
    /// recycled one when a large-enough allocation is available.
    pub fn alloc(&self, words: usize) -> AlignedBuf {
        let mut free = self.free.borrow_mut();
        if let Some(pos) = free.iter().position(|b| b.capacity() >= words.max(1)) {
            let mut buf = free.swap_remove(pos);
            buf.reset(words);
            return buf;
        }
        AlignedBuf::new_zeroed(words)
    }

    /// Return a buffer to the free list for later reuse.
    pub fn recycle(&self, buf: AlignedBuf) {
        self.free.borrow_mut().push(buf);
    }

    /// Buffers currently waiting on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.borrow().len()
    }
}

/// Frame-of-reference bit-packed integers: `stored(i) = value(i) - min`,
/// packed at a fixed per-column bit width.
#[derive(Clone, Debug, PartialEq)]
pub struct PackedInts {
    words: AlignedBuf,
    len: usize,
    width: u32,
    min: i64,
}

impl PackedInts {
    /// Encode a slice, choosing the width from the observed min/max.
    pub fn encode<T: Copy + Into<i64>>(vals: &[T], arena: &Arena) -> PackedInts {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for &v in vals {
            let v: i64 = v.into();
            min = min.min(v);
            max = max.max(v);
        }
        if vals.is_empty() {
            return PackedInts {
                words: arena.alloc(0),
                len: 0,
                width: 0,
                min: 0,
            };
        }
        let range = max as i128 - min as i128;
        let width = if range == 0 {
            0
        } else if range >= 1i128 << MAX_PACKED_WIDTH {
            64 // raw fallback: range wider than a fused kernel can decode
        } else {
            64 - (range as u64).leading_zeros()
        };
        match width {
            0 => PackedInts {
                words: arena.alloc(0),
                len: vals.len(),
                width: 0,
                min,
            },
            64 => {
                let mut words = arena.alloc(vals.len());
                for (w, &v) in words.as_mut_slice().iter_mut().zip(vals) {
                    *w = Into::<i64>::into(v) as u64;
                }
                PackedInts {
                    words,
                    len: vals.len(),
                    width: 64,
                    min: 0,
                }
            }
            w => {
                // +1 trailing pad word: SIMD kernels gather 8 bytes at
                // byte offset (i*w)>>3, which may run past the last
                // payload byte by up to 7 + ceil(w/8) bytes.
                let payload = (vals.len() * w as usize).div_ceil(64);
                let mut words = arena.alloc(payload + 1);
                let slice = words.as_mut_slice();
                for (i, &v) in vals.iter().enumerate() {
                    let delta = (Into::<i64>::into(v).wrapping_sub(min)) as u64;
                    let bit = i * w as usize;
                    let word = bit >> 6;
                    let sh = bit & 63;
                    slice[word] |= delta << sh;
                    if sh + w as usize > 64 {
                        slice[word + 1] |= delta >> (64 - sh);
                    }
                }
                PackedInts {
                    words,
                    len: vals.len(),
                    width: w,
                    min,
                }
            }
        }
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per stored value (0 for all-equal columns, 64 for the raw
    /// fallback, otherwise `<= MAX_PACKED_WIDTH`).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame of reference subtracted before packing.
    #[inline]
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Mask selecting the low `width` bits of an extracted window.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Raw packed word stream (includes the trailing pad word). SIMD
    /// kernels index this as bytes; the pad word keeps every in-range
    /// 8-byte gather inside the allocation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Decode one value (scalar path; hot loops use the fused kernels).
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len);
        match self.width {
            0 => self.min,
            64 => self.words[i] as i64,
            w => {
                let bit = i * w as usize;
                let word = bit >> 6;
                let sh = (bit & 63) as u32;
                let mut v = self.words[word] >> sh;
                if sh + w > 64 {
                    v |= self.words[word + 1] << (64 - sh);
                }
                self.min.wrapping_add((v & self.mask()) as i64)
            }
        }
    }

    /// Decode everything into `out` (test oracle / fallback path).
    pub fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.get(i));
        }
    }

    /// Allocated payload bytes (what a full scan actually touches).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// Dictionary-coded string column: one `u8` code per row plus a sorted
/// dictionary kept as a [`StrColumn`] decode target.
#[derive(Clone, Debug, PartialEq)]
pub struct DictStrColumn {
    codes: AlignedBuf,
    len: usize,
    dict: StrColumn,
}

impl DictStrColumn {
    /// Encode a string column; `None` if it has more than 256 distinct
    /// values (the column stays flat).
    pub fn encode(col: &StrColumn, arena: &Arena) -> Option<DictStrColumn> {
        let mut ids: BTreeMap<&[u8], u8> = BTreeMap::new();
        for i in 0..col.len() {
            let bytes = col.get_bytes(i);
            if !ids.contains_key(bytes) {
                if ids.len() > u8::MAX as usize {
                    return None;
                }
                let n = ids.len() as u8;
                ids.insert(bytes, n);
            }
        }
        // BTreeMap iteration is sorted; renumber so codes follow the
        // dictionary's sort order (deterministic across loads).
        let mut dict = StrColumn::new();
        let mut remap = vec![0u8; ids.len()];
        for (sorted, (bytes, id)) in ids.iter().enumerate() {
            remap[*id as usize] = sorted as u8;
            dict.push(std::str::from_utf8(bytes).expect("StrColumn holds UTF-8"));
        }
        let mut codes = arena.alloc(col.len().div_ceil(8));
        {
            // SAFETY: the buffer holds >= len bytes; u8 writes need no
            // further invariant.
            let bytes = unsafe {
                std::slice::from_raw_parts_mut(codes.as_mut_slice().as_mut_ptr() as *mut u8, col.len())
            };
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = remap[ids[col.get_bytes(i)] as usize];
            }
        }
        Some(DictStrColumn {
            codes,
            len: col.len(),
            dict,
        })
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-row codes; indexes into [`DictStrColumn::dict`].
    #[inline]
    pub fn codes(&self) -> &[u8] {
        self.codes.as_bytes(self.len)
    }

    /// The sorted dictionary (decode target).
    #[inline]
    pub fn dict(&self) -> &StrColumn {
        &self.dict
    }

    /// Code for `s`, if the dictionary contains it. Query predicates
    /// translate their string constant once per query, then compare
    /// codes in the scan.
    pub fn code_of(&self, s: &str) -> Option<u8> {
        (0..self.dict.len())
            .find(|&c| self.dict.get(c) == s)
            .map(|c| c as u8)
    }

    #[inline]
    pub fn get(&self, i: usize) -> &str {
        self.dict.get(self.codes()[i] as usize)
    }

    /// Rebuild the flat column (test oracle / fallback path).
    pub fn decode(&self) -> StrColumn {
        let mut out = StrColumn::new();
        for i in 0..self.len {
            out.push(self.get(i));
        }
        out
    }

    /// Bytes a full scan touches: the code array (the dictionary is
    /// cache-resident and amortised across the scan).
    pub fn byte_size(&self) -> usize {
        self.len
    }
}

/// A compressed companion representation of one [`ColumnData`].
#[derive(Clone, Debug, PartialEq)]
pub enum EncodedColumn {
    PackedI32(PackedInts),
    PackedI64(PackedInts),
    PackedDate(PackedInts),
    DictStr(DictStrColumn),
}

impl EncodedColumn {
    /// Encode a flat column, or `None` when no encoding applies
    /// (`Char` columns are already one byte/row; high-cardinality
    /// strings stay flat).
    pub fn from_column(col: &ColumnData, arena: &Arena) -> Option<EncodedColumn> {
        match col {
            ColumnData::I32(v) => Some(EncodedColumn::PackedI32(PackedInts::encode(v, arena))),
            ColumnData::I64(v) => Some(EncodedColumn::PackedI64(PackedInts::encode(v, arena))),
            ColumnData::Date(v) => Some(EncodedColumn::PackedDate(PackedInts::encode(v, arena))),
            ColumnData::Char(_) => None,
            ColumnData::Str(v) => DictStrColumn::encode(v, arena).map(EncodedColumn::DictStr),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::PackedI32(p) | EncodedColumn::PackedI64(p) | EncodedColumn::PackedDate(p) => {
                p.len()
            }
            EncodedColumn::DictStr(d) => d.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per row a scan of this representation touches.
    pub fn bits_per_value(&self) -> usize {
        match self {
            EncodedColumn::PackedI32(p) | EncodedColumn::PackedI64(p) | EncodedColumn::PackedDate(p) => {
                p.width() as usize
            }
            EncodedColumn::DictStr(_) => 8,
        }
    }

    /// Payload bytes of the encoded form.
    pub fn byte_size(&self) -> usize {
        match self {
            EncodedColumn::PackedI32(p) | EncodedColumn::PackedI64(p) | EncodedColumn::PackedDate(p) => {
                p.byte_size()
            }
            EncodedColumn::DictStr(d) => d.byte_size(),
        }
    }

    /// The packed-integer payload; panics on a dictionary column
    /// (plan-construction error, mirrors [`ColumnData`] accessors).
    #[inline]
    pub fn packed(&self) -> &PackedInts {
        match self {
            EncodedColumn::PackedI32(p) | EncodedColumn::PackedI64(p) | EncodedColumn::PackedDate(p) => p,
            EncodedColumn::DictStr(_) => panic!("expected packed column, found dict"),
        }
    }

    /// The dictionary payload; panics on a packed column.
    #[inline]
    pub fn dict_str(&self) -> &DictStrColumn {
        match self {
            EncodedColumn::DictStr(d) => d,
            other => panic!("expected dict column, found {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> Arena {
        Arena::new()
    }

    #[test]
    fn packed_roundtrip_basic() {
        let a = arena();
        let vals: Vec<i32> = vec![7, 3, 12, 7, 0, 255, 19];
        let p = PackedInts::encode(&vals, &a);
        assert_eq!(p.len(), vals.len());
        assert_eq!(p.min(), 0);
        assert_eq!(p.width(), 8);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v as i64);
        }
    }

    #[test]
    fn packed_frame_of_reference() {
        let a = arena();
        let vals: Vec<i64> = vec![1_000_000, 1_000_003, 1_000_001];
        let p = PackedInts::encode(&vals, &a);
        assert_eq!(p.min(), 1_000_000);
        assert_eq!(p.width(), 2);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn packed_all_equal_is_width_zero() {
        let a = arena();
        let p = PackedInts::encode(&vec![42i32; 1000], &a);
        assert_eq!(p.width(), 0);
        assert_eq!(p.byte_size(), 0);
        assert_eq!(p.get(999), 42);
    }

    #[test]
    fn packed_single_row_and_empty() {
        let a = arena();
        let one = PackedInts::encode(&[-7i64], &a);
        assert_eq!(one.width(), 0);
        assert_eq!(one.get(0), -7);
        let none = PackedInts::encode::<i32>(&[], &a);
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn packed_raw_fallback_for_huge_range() {
        let a = arena();
        let vals = vec![i64::MIN, 0, i64::MAX];
        let p = PackedInts::encode(&vals, &a);
        assert_eq!(p.width(), 64);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn packed_negative_frame() {
        let a = arena();
        let vals: Vec<i32> = vec![-50, -20, -50, -21];
        let p = PackedInts::encode(&vals, &a);
        assert_eq!(p.min(), -50);
        assert_eq!(p.width(), 5);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vec![-50, -20, -50, -21]);
    }

    #[test]
    fn aligned_buf_is_cache_line_aligned() {
        let b = AlignedBuf::new_zeroed(3);
        assert_eq!(b.as_slice().as_ptr() as usize % 64, 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.as_slice(), &[0, 0, 0]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn arena_recycles_buffers() {
        let a = arena();
        let p = PackedInts::encode(&[1i32, 2, 3, 4], &a);
        let words_before = p.words.capacity();
        a.recycle(p.words);
        assert_eq!(a.free_buffers(), 1);
        let reused = a.alloc(1);
        assert!(reused.capacity() >= words_before.min(1));
        assert_eq!(a.free_buffers(), 0);
        assert!(
            reused.as_slice().iter().all(|&w| w == 0),
            "reused buffer rezeroed"
        );
    }

    #[test]
    fn dict_roundtrip_and_codes() {
        let a = arena();
        let col: StrColumn = ["MAIL", "AIR", "SHIP", "AIR", "MAIL"].into_iter().collect();
        let d = DictStrColumn::encode(&col, &a).expect("low cardinality");
        assert_eq!(d.len(), 5);
        assert_eq!(d.dict().len(), 3);
        // Sorted dictionary: AIR < MAIL < SHIP.
        assert_eq!(d.code_of("AIR"), Some(0));
        assert_eq!(d.code_of("MAIL"), Some(1));
        assert_eq!(d.code_of("SHIP"), Some(2));
        assert_eq!(d.code_of("TRUCK"), None);
        assert_eq!(d.codes(), &[1, 0, 2, 0, 1]);
        assert_eq!(d.decode(), col);
    }

    #[test]
    fn dict_rejects_high_cardinality() {
        let a = arena();
        let col: StrColumn = (0..300)
            .map(|i| format!("s{i}"))
            .collect::<Vec<_>>()
            .iter()
            .map(|s| s.as_str())
            .collect();
        assert!(DictStrColumn::encode(&col, &a).is_none());
    }

    #[test]
    fn dict_exactly_256_values_fits() {
        let a = arena();
        let strings: Vec<String> = (0..256).map(|i| format!("v{i:03}")).collect();
        let col: StrColumn = strings.iter().map(|s| s.as_str()).collect();
        let d = DictStrColumn::encode(&col, &a).expect("256 fits u8");
        assert_eq!(d.dict().len(), 256);
        assert_eq!(d.decode(), col);
    }

    #[test]
    fn from_column_dispatch() {
        let a = arena();
        assert!(matches!(
            EncodedColumn::from_column(&ColumnData::I32(vec![1, 2]), &a),
            Some(EncodedColumn::PackedI32(_))
        ));
        assert!(matches!(
            EncodedColumn::from_column(&ColumnData::Date(vec![100, 200]), &a),
            Some(EncodedColumn::PackedDate(_))
        ));
        assert!(EncodedColumn::from_column(&ColumnData::Char(vec![b'A']), &a).is_none());
        let enc = EncodedColumn::from_column(&ColumnData::I64(vec![500, 510]), &a).unwrap();
        assert_eq!(enc.bits_per_value(), 4);
        assert_eq!(enc.packed().min(), 500);
    }
}
