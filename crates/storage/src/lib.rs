//! Columnar in-memory storage substrate.
//!
//! Both engines of the paper operate over the same physical data: typed,
//! contiguous column arrays grouped into [`Table`]s and a [`Database`]
//! catalog. The representation mirrors the paper's test system:
//!
//! * integers are `i32`/`i64`,
//! * money values are 64-bit fixed-point decimals with scale 2
//!   ([`types::dec`]),
//! * dates are days since the Unix epoch ([`types::Date`]),
//! * single-character codes (`l_returnflag`, …) are raw `u8` columns,
//! * variable-length strings are offset+bytes columns ([`column::StrColumn`]).
//!
//! [`throttle::Throttle`] provides the bandwidth-limited scan substrate
//! used to emulate the paper's out-of-memory SSD experiment (Table 5).
//!
//! [`encoded`] adds compressed companion representations (bit-packed
//! frame-of-reference integers, dictionary-coded strings) that the fused
//! decompress-and-select scan kernels consume.

pub mod column;
pub mod database;
pub mod encoded;
pub mod table;
pub mod throttle;
pub mod types;

pub use column::{ColumnData, StrColumn};
pub use database::Database;
pub use encoded::{AlignedBuf, Arena, DictStrColumn, EncodedColumn, PackedInts};
pub use table::Table;
pub use types::{date, dec, Date, Value};
