//! Tables: named collections of equal-length columns.

use crate::column::ColumnData;
use std::collections::HashMap;

/// An in-memory columnar table.
///
/// Lookup by column name happens once per query during plan construction;
/// execution holds on to the column slices directly.
#[derive(Clone, Debug, Default)]
pub struct Table {
    name: String,
    len: usize,
    columns: Vec<(String, ColumnData)>,
    by_name: HashMap<String, usize>,
}

impl Table {
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            len: 0,
            columns: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a column. Panics if the length disagrees with existing columns
    /// or the name is duplicated — both are construction-time programmer
    /// errors, not runtime conditions.
    pub fn add_column(&mut self, name: impl Into<String>, data: ColumnData) -> &mut Self {
        let name = name.into();
        assert!(
            self.columns.is_empty() || data.len() == self.len,
            "column {} has {} rows, table {} has {}",
            name,
            data.len(),
            self.name,
            self.len
        );
        assert!(!self.by_name.contains_key(&name), "duplicate column {name}");
        self.len = data.len();
        self.by_name.insert(name.clone(), self.columns.len());
        self.columns.push((name, data));
        self
    }

    /// Column by name; panics with the table/column name on a miss
    /// (plan-construction error).
    pub fn col(&self, name: &str) -> &ColumnData {
        match self.by_name.get(name) {
            Some(&i) => &self.columns[i].1,
            None => panic!("table {} has no column {name}", self.name),
        }
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    pub fn column_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    pub fn columns(&self) -> impl Iterator<Item = (&str, &ColumnData)> + '_ {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Total payload bytes across all columns (Table 5 bandwidth model).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut t = Table::new("part");
        t.add_column("p_partkey", ColumnData::I32(vec![1, 2, 3]))
            .add_column("p_size", ColumnData::I32(vec![10, 20, 30]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.col("p_size").i32s(), &[10, 20, 30]);
        assert!(t.has_column("p_partkey"));
        assert!(!t.has_column("p_name"));
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["p_partkey", "p_size"]);
        assert_eq!(t.byte_size(), 24);
    }

    #[test]
    #[should_panic(expected = "has no column")]
    fn missing_column_panics() {
        Table::new("t").col("nope");
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn length_mismatch_panics() {
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1, 2]));
        t.add_column("b", ColumnData::I32(vec![1]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1]));
        t.add_column("a", ColumnData::I32(vec![2]));
    }
}
