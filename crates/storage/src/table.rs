//! Tables: named collections of equal-length columns.

use crate::column::ColumnData;
use crate::encoded::{Arena, EncodedColumn};
use std::collections::HashMap;

/// An in-memory columnar table.
///
/// Lookup by column name happens once per query during plan construction;
/// execution holds on to the column slices directly.
#[derive(Clone, Debug, Default)]
pub struct Table {
    name: String,
    len: usize,
    columns: Vec<(String, ColumnData)>,
    by_name: HashMap<String, usize>,
    /// Compressed companions (ROADMAP item 3): the flat column stays the
    /// canonical form; plans that know the fused kernels scan these.
    encoded: HashMap<String, EncodedColumn>,
}

impl Table {
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            len: 0,
            columns: Vec::new(),
            by_name: HashMap::new(),
            encoded: HashMap::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add a column. Panics if the length disagrees with existing columns
    /// or the name is duplicated — both are construction-time programmer
    /// errors, not runtime conditions.
    pub fn add_column(&mut self, name: impl Into<String>, data: ColumnData) -> &mut Self {
        let name = name.into();
        assert!(
            self.columns.is_empty() || data.len() == self.len,
            "column {} has {} rows, table {} has {}",
            name,
            data.len(),
            self.name,
            self.len
        );
        assert!(!self.by_name.contains_key(&name), "duplicate column {name}");
        self.len = data.len();
        self.by_name.insert(name.clone(), self.columns.len());
        self.columns.push((name, data));
        self
    }

    /// Column by name; panics with the table/column name on a miss
    /// (plan-construction error).
    pub fn col(&self, name: &str) -> &ColumnData {
        match self.by_name.get(name) {
            Some(&i) => &self.columns[i].1,
            None => panic!("table {} has no column {name}", self.name),
        }
    }

    pub fn has_column(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    pub fn column_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    pub fn columns(&self) -> impl Iterator<Item = (&str, &ColumnData)> + '_ {
        self.columns.iter().map(|(n, c)| (n.as_str(), c))
    }

    /// Total payload bytes across all columns (Table 5 bandwidth model).
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.byte_size()).sum()
    }

    /// Build the compressed companion for one column. Returns whether an
    /// encoding applied (`Char` and high-cardinality string columns stay
    /// flat-only).
    pub fn encode_column(&mut self, name: &str, arena: &Arena) -> bool {
        match EncodedColumn::from_column(self.col(name), arena) {
            Some(enc) => {
                self.encoded.insert(name.to_string(), enc);
                true
            }
            None => false,
        }
    }

    /// Build compressed companions for every column that supports one.
    pub fn encode_all(&mut self, arena: &Arena) {
        let names: Vec<String> = self.column_names().map(str::to_string).collect();
        for name in names {
            self.encode_column(&name, arena);
        }
    }

    /// Compressed companion of a column, if one was built.
    pub fn encoded(&self, name: &str) -> Option<&EncodedColumn> {
        self.encoded.get(name)
    }

    /// Bits one row contributes to a scan over the named columns:
    /// the encoded width where a companion exists, otherwise the flat
    /// width. Feeds the `bytes_scanned` accounting and the bandwidth
    /// throttle.
    pub fn row_bits(&self, cols: &[&str]) -> usize {
        if self.len == 0 {
            return 0;
        }
        cols.iter()
            .map(|name| match self.encoded(name) {
                Some(enc) => enc.bits_per_value(),
                None => self.col(name).byte_size() * 8 / self.len,
            })
            .sum()
    }

    /// Encoded payload bytes across all companions.
    pub fn encoded_byte_size(&self) -> usize {
        self.encoded.values().map(|e| e.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let mut t = Table::new("part");
        t.add_column("p_partkey", ColumnData::I32(vec![1, 2, 3]))
            .add_column("p_size", ColumnData::I32(vec![10, 20, 30]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.col("p_size").i32s(), &[10, 20, 30]);
        assert!(t.has_column("p_partkey"));
        assert!(!t.has_column("p_name"));
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["p_partkey", "p_size"]);
        assert_eq!(t.byte_size(), 24);
    }

    #[test]
    fn companion_encoding_and_row_bits() {
        use crate::encoded::Arena;
        let mut t = Table::new("li");
        t.add_column("qty", ColumnData::I32(vec![1, 7, 3, 7]))
            .add_column("price", ColumnData::I64(vec![100, 200, 150, 175]))
            .add_column("flag", ColumnData::Char(vec![b'A', b'N', b'A', b'N']));
        let arena = Arena::new();
        t.encode_all(&arena);
        // qty: range 6 -> 3 bits; price: range 100 -> 7 bits; flag: no companion.
        assert_eq!(t.encoded("qty").unwrap().bits_per_value(), 3);
        assert_eq!(t.encoded("price").unwrap().bits_per_value(), 7);
        assert!(t.encoded("flag").is_none());
        assert_eq!(t.row_bits(&["qty", "price", "flag"]), 3 + 7 + 8);
        assert!(t.encoded_byte_size() > 0);
        // Flat-only table reports flat widths.
        let mut flat = Table::new("flat");
        flat.add_column("qty", ColumnData::I32(vec![1, 2]));
        assert_eq!(flat.row_bits(&["qty"]), 32);
    }

    #[test]
    #[should_panic(expected = "has no column")]
    fn missing_column_panics() {
        Table::new("t").col("nope");
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn length_mismatch_panics() {
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1, 2]));
        t.add_column("b", ColumnData::I32(vec![1]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        let mut t = Table::new("t");
        t.add_column("a", ColumnData::I32(vec![1]));
        t.add_column("a", ColumnData::I32(vec![2]));
    }
}
