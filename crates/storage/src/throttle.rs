//! Bandwidth throttle emulating a secondary-storage device.
//!
//! The paper's Table 5 reads table data from a RAID-5 of SATA SSDs with
//! ~1.4 GB/s aggregate read bandwidth instead of ~55 GB/s main memory.
//! We do not have that hardware, so scans can be paced through a shared
//! [`Throttle`] that models a device with a fixed byte/s budget: every
//! morsel "reads" its bytes from the device before processing, and the
//! device is shared across all worker threads — exactly the contention
//! profile of the paper's setup (DESIGN.md substitution 4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A shared, thread-safe bandwidth limiter.
pub struct Throttle {
    bytes_per_sec: f64,
    start: Instant,
    consumed: AtomicU64,
}

impl Throttle {
    /// A device delivering at most `bytes_per_sec` (must be > 0).
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Throttle {
            bytes_per_sec,
            start: Instant::now(),
            consumed: AtomicU64::new(0),
        }
    }

    /// The paper's SSD array: 1.4 GB/s.
    pub fn paper_ssd() -> Self {
        Throttle::new(1.4e9)
    }

    /// Account for `bytes` read and block until the device could have
    /// delivered them. Callers from any thread share the budget.
    pub fn consume(&self, bytes: usize) {
        // ORDERING: Relaxed — only the atomically-updated running total
        // matters for pacing; no other data rides on this counter.
        let total = self.consumed.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        let target = Duration::from_secs_f64(total as f64 / self.bytes_per_sec);
        let elapsed = self.start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
    }

    /// Bytes consumed so far.
    pub fn total_consumed(&self) -> u64 {
        // ORDERING: Relaxed — advisory stats read.
        self.consumed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_to_bandwidth() {
        // 10 MB at 100 MB/s must take >= ~100 ms.
        let t = Throttle::new(100.0e6);
        let start = Instant::now();
        for _ in 0..10 {
            t.consume(1_000_000);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(90),
            "finished too fast: {elapsed:?}"
        );
        assert_eq!(t.total_consumed(), 10_000_000);
    }

    #[test]
    fn shared_across_threads() {
        // Two threads share one device: combined 8 MB at 200 MB/s >= ~40 ms.
        let t = Throttle::new(200.0e6);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..4 {
                        t.consume(1_000_000);
                    }
                });
            }
        });
        assert!(start.elapsed() >= Duration::from_millis(35));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Throttle::new(0.0);
    }
}
