//! Scalar value types shared by all engines.
//!
//! The prototypes in the paper use plain machine types: 64-bit fixed-point
//! arithmetic for money (no overflow checking, §3.2) and 32-bit
//! days-since-epoch dates. [`Value`] is only used at the query *result*
//! boundary — execution never touches it.

use std::fmt;

/// Days since 1970-01-01 (can be negative).
pub type Date = i32;

/// Fixed-point decimal helper: `dec(7, 25)` is the scale-2 value `7.25`.
#[inline]
pub const fn dec(units: i64, cents: i64) -> i64 {
    units * 100 + cents
}

/// Convert a Gregorian calendar date to days since the Unix epoch.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm; valid for all dates
/// the TPC-H/SSB generators produce (1992–1998).
pub const fn date(y: i32, m: u32, d: u32) -> Date {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Convert days since the Unix epoch back to `(year, month, day)`.
pub const fn civil(days: Date) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Extract the year of a [`Date`] (used by Q9's `extract(year from ...)`).
#[inline]
pub const fn year_of(d: Date) -> i32 {
    civil(d).0
}

/// Parse `"YYYY-MM-DD"`.
pub fn parse_date(s: &str) -> Option<Date> {
    let b = s.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    let y: i32 = s[0..4].parse().ok()?;
    let m: u32 = s[5..7].parse().ok()?;
    let d: u32 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(date(y, m, d))
}

/// Format a [`Date`] as `YYYY-MM-DD`.
pub fn format_date(d: Date) -> String {
    let (y, m, dd) = civil(d);
    format!("{y:04}-{m:02}-{dd:02}")
}

/// A scalar value at the query-result boundary.
///
/// Execution never allocates `Value`s; they exist so results of all three
/// engines can be compared field-by-field and printed.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    I32(i32),
    I64(i64),
    /// Fixed-point decimal: `digits / 10^scale`.
    Dec {
        digits: i128,
        scale: u8,
    },
    Date(Date),
    Str(String),
}

impl Value {
    /// Scale-2 decimal from a raw fixed-point i64.
    pub fn dec2(v: i64) -> Self {
        Value::Dec {
            digits: v as i128,
            scale: 2,
        }
    }
    pub fn dec4(v: i128) -> Self {
        Value::Dec { digits: v, scale: 4 }
    }
    pub fn dec6(v: i128) -> Self {
        Value::Dec { digits: v, scale: 6 }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Dec { digits, scale } => {
                let pow = 10i128.pow(*scale as u32);
                let (sign, abs) = if *digits < 0 {
                    ("-", -digits)
                } else {
                    ("", *digits)
                };
                write!(
                    f,
                    "{sign}{}.{:0width$}",
                    abs / pow,
                    abs % pow,
                    width = *scale as usize
                )
            }
            Value::Date(d) => write!(f, "{}", format_date(*d)),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(civil(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H boundary dates used by the studied queries.
        assert_eq!(format_date(date(1998, 9, 2)), "1998-09-02");
        assert_eq!(format_date(date(1995, 3, 15)), "1995-03-15");
        assert!(date(1994, 1, 1) < date(1995, 1, 1));
        // Leap years.
        assert_eq!(date(1996, 2, 29) + 1, date(1996, 3, 1));
        assert_eq!(date(1900, 2, 28) + 1, date(1900, 3, 1)); // 1900 not a leap year
        assert_eq!(date(2000, 2, 29) + 1, date(2000, 3, 1)); // 2000 is
    }

    #[test]
    fn roundtrip_range() {
        // Every day in the TPC-H date range survives a round trip.
        let lo = date(1992, 1, 1);
        let hi = date(1998, 12, 31);
        for d in lo..=hi {
            let (y, m, dd) = civil(d);
            assert_eq!(date(y, m, dd), d);
        }
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of(date(1995, 6, 17)), 1995);
        assert_eq!(year_of(date(1992, 1, 1)), 1992);
        assert_eq!(year_of(date(1998, 12, 31)), 1998);
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("1997-04-09"), Some(date(1997, 4, 9)));
        assert_eq!(parse_date("1997-13-09"), None);
        assert_eq!(parse_date("97-04-09"), None);
        assert_eq!(format_date(parse_date("1992-02-29").unwrap()), "1992-02-29");
    }

    #[test]
    fn dec_helper() {
        assert_eq!(dec(7, 25), 725);
        assert_eq!(dec(0, 5), 5);
        assert_eq!(Value::dec2(725).to_string(), "7.25");
        assert_eq!(Value::dec2(-725).to_string(), "-7.25");
        assert_eq!(Value::dec4(10000).to_string(), "1.0000");
        assert_eq!(Value::dec6(1).to_string(), "0.000001");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::I32(42).to_string(), "42");
        assert_eq!(Value::Date(date(1998, 9, 2)).to_string(), "1998-09-02");
        assert_eq!(Value::Str("BUILDING".into()).to_string(), "BUILDING");
    }
}
