//! Randomized round-trip properties for the compressed column layer:
//! encode → decode must be the identity for bit-packed, frame-of-
//! reference, and dictionary columns across randomized widths, ranges,
//! lengths, and the all-equal / single-row edge cases.

use dbep_storage::{Arena, ColumnData, DictStrColumn, EncodedColumn, PackedInts, StrColumn};

/// Minimal xorshift64* generator — the storage crate is intentionally
/// dependency-free, so the property tests carry their own RNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn packed_roundtrip_randomized_widths() {
    let arena = Arena::new();
    let mut rng = Rng::new(0x5eed_0001);
    // Sweep target widths 1..=57 plus the raw-fallback territory.
    for width in 1..=60u32 {
        let len = 1 + rng.below(2000) as usize;
        let min = rng.next() as i64 % 1_000_000_007;
        let span = if width >= 58 {
            // Force the >57-bit range so the raw fallback engages.
            (1u64 << 60) + rng.below(1 << 40)
        } else {
            (1u64 << (width - 1)) + rng.below(1u64 << (width - 1)).max(1)
        };
        let vals: Vec<i64> = (0..len)
            .map(|_| min.wrapping_add(rng.below(span.max(1)) as i64))
            .collect();
        let p = PackedInts::encode(&vals, &arena);
        assert!(
            p.width() <= 57 || p.width() == 64,
            "width {} must be SIMD-decodable or raw",
            p.width()
        );
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vals, "roundtrip failed at target width {width}");
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }
}

#[test]
fn packed_roundtrip_i32_full_range() {
    let arena = Arena::new();
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..32 {
        let len = 1 + rng.below(500) as usize;
        let vals: Vec<i32> = (0..len).map(|_| rng.next() as i32).collect();
        let p = PackedInts::encode(&vals, &arena);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vals.iter().map(|&v| v as i64).collect::<Vec<_>>());
    }
}

#[test]
fn packed_roundtrip_edge_cases() {
    let arena = Arena::new();
    // All-equal at several lengths, including a length crossing many words.
    for len in [1usize, 2, 63, 64, 65, 1000] {
        let vals = vec![-123_456_789i64; len];
        let p = PackedInts::encode(&vals, &arena);
        assert_eq!(p.width(), 0);
        let mut out = Vec::new();
        p.decode_into(&mut out);
        assert_eq!(out, vals);
    }
    // Single row of extreme values.
    for v in [i64::MIN, -1, 0, 1, i64::MAX] {
        let p = PackedInts::encode(&[v], &arena);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(0), v);
    }
    // Two-row extremes exercise the raw fallback.
    let p = PackedInts::encode(&[i64::MIN, i64::MAX], &arena);
    assert_eq!(p.width(), 64);
    assert_eq!(p.get(0), i64::MIN);
    assert_eq!(p.get(1), i64::MAX);
}

#[test]
fn packed_arena_reuse_preserves_roundtrip() {
    let arena = Arena::new();
    let mut rng = Rng::new(0x5eed_0003);
    // Encode, recycle via a fresh encode of a different shape, re-check:
    // the arena must rezero reused buffers.
    for round in 0..20 {
        let len = 1 + rng.below(800) as usize;
        let vals: Vec<i64> = (0..len)
            .map(|_| rng.below(1 << (1 + round % 40)) as i64)
            .collect();
        let col = ColumnData::I64(vals.clone());
        let enc = EncodedColumn::from_column(&col, &arena).expect("i64 encodes");
        let mut out = Vec::new();
        enc.packed().decode_into(&mut out);
        assert_eq!(out, vals);
    }
}

#[test]
fn dict_roundtrip_randomized() {
    let arena = Arena::new();
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..24 {
        let cardinality = 1 + rng.below(256) as usize;
        let pool: Vec<String> = (0..cardinality)
            .map(|i| format!("value-{:04}-{}", i, rng.below(1000)))
            .collect();
        let len = 1 + rng.below(3000) as usize;
        let rows: Vec<&str> = (0..len)
            .map(|_| pool[rng.below(cardinality as u64) as usize].as_str())
            .collect();
        let col: StrColumn = rows.iter().copied().collect();
        let d = DictStrColumn::encode(&col, &arena).expect("cardinality <= 256");
        assert_eq!(d.decode(), col);
        // code_of must agree with the stored codes for every row.
        for (i, &s) in rows.iter().enumerate() {
            assert_eq!(d.code_of(s), Some(d.codes()[i]));
            assert_eq!(d.get(i), s);
        }
    }
}

#[test]
fn dict_edge_cases() {
    let arena = Arena::new();
    // Single row.
    let col: StrColumn = ["only"].into_iter().collect();
    let d = DictStrColumn::encode(&col, &arena).unwrap();
    assert_eq!(d.len(), 1);
    assert_eq!(d.get(0), "only");
    // All-equal rows collapse to one dictionary entry.
    let col: StrColumn = std::iter::repeat_n("same", 500).collect();
    let d = DictStrColumn::encode(&col, &arena).unwrap();
    assert_eq!(d.dict().len(), 1);
    assert_eq!(d.decode(), col);
    // Empty strings are legal dictionary entries.
    let col: StrColumn = ["", "a", "", "b"].into_iter().collect();
    let d = DictStrColumn::encode(&col, &arena).unwrap();
    assert_eq!(d.decode(), col);
}

#[test]
fn date_column_companions_roundtrip() {
    let arena = Arena::new();
    let mut rng = Rng::new(0x5eed_0005);
    let dates: Vec<i32> = (0..2000).map(|_| 8766 + rng.below(2557) as i32).collect();
    let enc = EncodedColumn::from_column(&ColumnData::Date(dates.clone()), &arena).unwrap();
    assert!(matches!(enc, EncodedColumn::PackedDate(_)));
    // TPC-H date ranges (~2557 distinct days) need at most 12 bits.
    assert!(enc.bits_per_value() <= 12, "got {}", enc.bits_per_value());
    let mut out = Vec::new();
    enc.packed().decode_into(&mut out);
    assert_eq!(out, dates.iter().map(|&d| d as i64).collect::<Vec<_>>());
}
